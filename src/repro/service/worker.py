"""Scheduler and worker pool: drains the job store.

Three kinds of threads cooperate:

- the **scheduler** claims runnable jobs from the store (crash-expired
  leases first, then queue order) into a small in-memory hand-off
  queue, and periodically prunes the result cache;
- **workers** take claimed jobs off the hand-off queue and execute
  them through :meth:`repro.service.jobs.JobSpec.execute` (the shared
  entrypoint, so results match the CLI byte for byte);
- a **heartbeat** renews the leases of every in-flight job, so a
  healthy worker can run a job far longer than one lease while a
  killed process stops renewing and its jobs become claimable again.

Shutdown is graceful and lossless: the scheduler stops claiming,
claimed-but-unstarted jobs are released back to the queue (their
attempt refunded), and workers finish the jobs they already started
("drain the running cells") before the pool joins them.
"""

from __future__ import annotations

import queue
import threading
import time
import traceback
from typing import Callable, Dict, Optional

from repro.experiments.parallel import ExecutorMetrics, ResultCache
from repro.obs import counters as obs_counters
from repro.service.jobs import JobSpec, ValidationError
from repro.service.store import JobRecord, JobStore


class WorkerPool:
    """Runs jobs claimed from a :class:`JobStore`.

    ``workers=0`` is a valid paused pool (jobs queue up but never
    run — used by tests and by operators staging work).  *cache* and
    *prune_max_bytes* wire the periodic cache pruning; *on_idle* is an
    optional test hook called when the scheduler finds nothing to
    claim.
    """

    def __init__(
        self,
        store: JobStore,
        *,
        workers: int = 1,
        lease_s: float = 60.0,
        poll_interval_s: float = 0.05,
        metrics: Optional[ExecutorMetrics] = None,
        cache: Optional[ResultCache] = None,
        prune_max_bytes: Optional[int] = None,
        prune_interval_s: float = 300.0,
        on_idle: Optional[Callable[[], None]] = None,
    ) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.store = store
        self.workers = workers
        self.lease_s = lease_s
        self.poll_interval_s = poll_interval_s
        self.metrics = metrics if metrics is not None else ExecutorMetrics()
        self.cache = cache
        self.prune_max_bytes = prune_max_bytes
        self.prune_interval_s = prune_interval_s
        self.on_idle = on_idle
        self._handoff: "queue.Queue[JobRecord]" = queue.Queue(
            maxsize=max(workers, 1)
        )
        self._inflight: Dict[str, str] = {}
        self._inflight_lock = threading.Lock()
        self._stop = threading.Event()
        self._threads: list = []
        self._prune_due = threading.Event()

    # ------------------------------------------------------------------

    def start(self) -> None:
        """Launch scheduler, workers, and heartbeat threads."""
        if self._threads:
            raise RuntimeError("pool already started")
        self._stop.clear()
        if self.workers > 0:
            self._threads.append(
                threading.Thread(
                    target=self._scheduler_loop, name="repro-scheduler", daemon=True
                )
            )
            for index in range(self.workers):
                self._threads.append(
                    threading.Thread(
                        target=self._worker_loop,
                        args=(f"worker-{index}",),
                        name=f"repro-worker-{index}",
                        daemon=True,
                    )
                )
            self._threads.append(
                threading.Thread(
                    target=self._heartbeat_loop, name="repro-heartbeat", daemon=True
                )
            )
        for thread in self._threads:
            thread.start()

    def shutdown(self, timeout: Optional[float] = None) -> None:
        """Stop claiming, requeue unstarted claims, drain running jobs.

        Blocks until every thread has joined (up to *timeout* per
        thread).  No accepted job is lost: anything not finished is
        back in (or still in) the queue afterwards.
        """
        self._stop.set()
        self._drain_handoff()
        for thread in self._threads:
            thread.join(timeout=timeout)
        # The scheduler may have claimed one last job after the first
        # drain; sweep again now that every thread is gone.
        self._drain_handoff()
        self._threads = []

    def _drain_handoff(self) -> None:
        """Requeue jobs that were claimed but never handed to a worker."""
        while True:
            try:
                record = self._handoff.get_nowait()
            except queue.Empty:
                return
            self.store.release(record.id, "scheduler")

    def inflight(self) -> Dict[str, str]:
        """Snapshot of running jobs: ``{job_id: worker_name}``."""
        with self._inflight_lock:
            return dict(self._inflight)

    def prune_now(self) -> None:
        """Ask the scheduler to prune the cache on its next tick."""
        self._prune_due.set()

    # ------------------------------------------------------------------
    # Thread bodies
    # ------------------------------------------------------------------

    def _scheduler_loop(self) -> None:
        last_prune = time.monotonic()
        while not self._stop.is_set():
            claimed = None
            if self._handoff.qsize() < self._handoff.maxsize:
                claimed = self.store.claim("scheduler", self.lease_s)
            if claimed is not None:
                try:
                    self._handoff.put(claimed, timeout=self.poll_interval_s)
                except queue.Full:
                    self.store.release(claimed.id, "scheduler")
            else:
                if self.on_idle is not None:
                    self.on_idle()
                self._stop.wait(self.poll_interval_s)
            if self.cache is not None and self.prune_max_bytes is not None:
                now = time.monotonic()
                if (
                    self._prune_due.is_set()
                    or now - last_prune >= self.prune_interval_s
                ):
                    self._prune_due.clear()
                    last_prune = now
                    removed, removed_bytes = self.cache.prune(
                        self.prune_max_bytes
                    )
                    if removed:
                        obs_counters.increment("service.cache_pruned", removed)
                        obs_counters.increment(
                            "service.cache_pruned_bytes", removed_bytes
                        )

    def _worker_loop(self, name: str) -> None:
        while True:
            try:
                record = self._handoff.get(timeout=self.poll_interval_s)
            except queue.Empty:
                if self._stop.is_set():
                    return
                continue
            self._run_job(record, name)

    def _run_job(self, record: JobRecord, worker: str) -> None:
        # Re-lease under this worker's own name so completion authority
        # and heartbeats are tied to the thread actually running it.
        if not self.store.renew(record.id, "scheduler", self.lease_s):
            return  # lease lost between claim and hand-off
        current = self.store.get(record.id)
        if current.cancel_requested:
            self.store.complete(record.id, "scheduler", "")
            obs_counters.increment("service.jobs_cancelled")
            return
        self.store.reassign(record.id, "scheduler", worker)
        with self._inflight_lock:
            self._inflight[record.id] = worker
        try:
            spec = JobSpec.from_payload(record.spec)
            cache_dir = self.cache.directory if self.cache is not None else None
            outcome = spec.execute(metrics=self.metrics, cache_dir=cache_dir)
        except ValidationError as exc:
            self.store.fail(record.id, worker, f"invalid job spec: {exc}")
            obs_counters.increment("service.jobs_failed")
        except Exception:
            self.store.fail(
                record.id, worker, traceback.format_exc(limit=20)
            )
            obs_counters.increment("service.jobs_failed")
        else:
            if self.store.complete(record.id, worker, outcome.text):
                final = self.store.get(record.id)
                if final.cancel_requested:
                    obs_counters.increment("service.jobs_cancelled")
                else:
                    obs_counters.increment("service.jobs_completed")
        finally:
            with self._inflight_lock:
                self._inflight.pop(record.id, None)

    def _heartbeat_loop(self) -> None:
        interval = max(self.lease_s / 3.0, self.poll_interval_s)
        while not self._stop.wait(interval):
            for job_id, worker in self.inflight().items():
                self.store.renew(job_id, worker, self.lease_s)
        # One final renewal round so draining jobs keep their leases
        # while shutdown waits for them.
        for job_id, worker in self.inflight().items():
            self.store.renew(job_id, worker, self.lease_s)
