"""Wire protocol of the control-plane <-> agent fleet exchange.

The remote worker agents talk to the control plane over four POST
routes — site registration, batch claim, batch completion, and batch
lease renewal.  This module is the single strict parser for those
request bodies, used by the HTTP API on the way in and mirrored by the
agent when it builds them, so a payload an agent sends is exactly a
payload the server accepts.

All validation errors raise :class:`repro.service.jobs
.ValidationError` with a one-line field-qualified message (HTTP 400).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.service.jobs import ValidationError

#: Version stamp carried in site registrations and ``/v1/healthz`` so
#: mismatched fleet deployments are visible at registration time.
PROTOCOL_VERSION = 1

#: Site names appear in URL paths (``/v1/sites/{name}/heartbeat``).
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,99}$")

#: Largest batch one claim may lease (keeps one transaction bounded).
MAX_CLAIM_LIMIT = 64

#: Longest lease a remote agent may request, in seconds.
MAX_LEASE_S = 3600.0

#: Largest forwarded-event batch one ``POST /v1/sites/{name}/events``
#: may carry (the agent-side forwarder flushes in batches of 256).
MAX_EVENT_BATCH = 512

#: Event kinds look like ``job.done`` / ``sim.FailureInjected``.
_KIND_RE = re.compile(r"^[a-z]+\.[A-Za-z0-9_.]{1,64}$")


def _require_str(payload: Dict[str, Any], field_name: str) -> str:
    value = payload.pop(field_name, None)
    if not isinstance(value, str) or not value:
        raise ValidationError(
            f"field {field_name!r} must be a non-empty string, got {value!r}"
        )
    return value


def _check_no_extras(payload: Dict[str, Any], what: str) -> None:
    if payload:
        raise ValidationError(
            f"unknown {what} field {sorted(payload)[0]!r}"
        )


def validate_site_name(name: str) -> str:
    """A site name usable in a URL path; raises on anything else."""
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise ValidationError(
            f"site name must match {_NAME_RE.pattern} "
            f"(letters, digits, '.', '_', '-'), got {name!r}"
        )
    return name


@dataclass(frozen=True)
class SiteRegistration:
    """``POST /v1/sites`` body: a named site plus free-form metadata
    (hostname, worker count, ...)."""

    name: str
    meta: Dict[str, Any] = field(default_factory=dict)
    protocol: int = PROTOCOL_VERSION

    def to_payload(self) -> Dict[str, Any]:
        """The request body an agent sends to register."""
        return {"name": self.name, "meta": self.meta, "protocol": self.protocol}


def parse_site_registration(payload: Any) -> SiteRegistration:
    """Strictly parse a ``POST /v1/sites`` body (name, optional meta,
    protocol version must match this server's)."""
    if not isinstance(payload, dict):
        raise ValidationError("site registration must be a JSON object")
    data = dict(payload)
    name = validate_site_name(data.pop("name", None))
    meta = data.pop("meta", {})
    if not isinstance(meta, dict):
        raise ValidationError(f"field 'meta' must be an object, got {meta!r}")
    protocol = data.pop("protocol", PROTOCOL_VERSION)
    if protocol != PROTOCOL_VERSION:
        raise ValidationError(
            f"unsupported protocol version {protocol!r} "
            f"(this server speaks {PROTOCOL_VERSION})"
        )
    _check_no_extras(data, "site registration")
    return SiteRegistration(name=name, meta=meta, protocol=protocol)


@dataclass(frozen=True)
class ClaimRequest:
    """``POST /v1/jobs/claim`` body: lease up to *limit* jobs to
    *worker* on behalf of *site*."""

    site: str
    worker: str
    limit: int = 1
    lease_s: float = 300.0

    def to_payload(self) -> Dict[str, Any]:
        """The request body an agent sends to claim a batch."""
        return {
            "site": self.site,
            "worker": self.worker,
            "limit": self.limit,
            "lease_s": self.lease_s,
        }


def parse_claim_request(payload: Any) -> ClaimRequest:
    """Strictly parse a ``POST /v1/jobs/claim`` body, bounding the
    batch size and lease duration."""
    if not isinstance(payload, dict):
        raise ValidationError("claim request must be a JSON object")
    data = dict(payload)
    site = validate_site_name(data.pop("site", None))
    worker = _require_str(data, "worker")
    limit = data.pop("limit", 1)
    if (
        isinstance(limit, bool)
        or not isinstance(limit, int)
        or not 1 <= limit <= MAX_CLAIM_LIMIT
    ):
        raise ValidationError(
            f"field 'limit' must be an integer in [1, {MAX_CLAIM_LIMIT}], "
            f"got {limit!r}"
        )
    lease_s = data.pop("lease_s", 300.0)
    if (
        isinstance(lease_s, bool)
        or not isinstance(lease_s, (int, float))
        or not 1.0 <= float(lease_s) <= MAX_LEASE_S
    ):
        raise ValidationError(
            f"field 'lease_s' must be a number in [1, {MAX_LEASE_S:g}], "
            f"got {lease_s!r}"
        )
    _check_no_extras(data, "claim request")
    return ClaimRequest(
        site=site, worker=worker, limit=limit, lease_s=float(lease_s)
    )


@dataclass(frozen=True)
class CompletionItem:
    """One job outcome in a ``POST /v1/jobs/complete`` batch: a result
    body on success, an error line on failure.

    ``counters`` optionally carries the worker's instrumentation-counter
    increments for the job (today the ``grid.*`` cost/carbon accounting
    deltas), so fleet-wide cumulative telemetry survives the process
    boundary between a remote agent and the control plane.
    """

    job_id: str
    ok: bool
    result: str = ""
    error: str = ""
    counters: Optional[Dict[str, int]] = None

    def to_payload(self) -> Dict[str, Any]:
        """One entry of a completion request's ``results`` list."""
        item: Dict[str, Any] = {"id": self.job_id, "ok": self.ok}
        if self.ok:
            item["result"] = self.result
        else:
            item["error"] = self.error
        if self.counters:
            item["counters"] = dict(self.counters)
        return item


def parse_complete_request(payload: Any) -> Tuple[str, List[CompletionItem]]:
    """Strictly parse a ``POST /v1/jobs/complete`` body; returns
    ``(worker, items)`` where each item carries a result or an error."""
    if not isinstance(payload, dict):
        raise ValidationError("completion request must be a JSON object")
    data = dict(payload)
    worker = _require_str(data, "worker")
    results = data.pop("results", None)
    if not isinstance(results, list) or not results:
        raise ValidationError(
            "field 'results' must be a non-empty list of job outcomes"
        )
    _check_no_extras(data, "completion request")
    items: List[CompletionItem] = []
    for index, entry in enumerate(results):
        if not isinstance(entry, dict):
            raise ValidationError(
                f"results[{index}] must be an object, got {entry!r}"
            )
        entry = dict(entry)
        job_id = _require_str(entry, "id")
        ok = entry.pop("ok", None)
        if not isinstance(ok, bool):
            raise ValidationError(
                f"results[{index}].ok must be a boolean, got {ok!r}"
            )
        body = entry.pop("result" if ok else "error", "")
        if not isinstance(body, str):
            raise ValidationError(
                f"results[{index}].{'result' if ok else 'error'} "
                f"must be a string"
            )
        counters = entry.pop("counters", None)
        if counters is not None:
            if not isinstance(counters, dict) or not all(
                isinstance(k, str) and isinstance(v, int) and not isinstance(v, bool)
                for k, v in counters.items()
            ):
                raise ValidationError(
                    f"results[{index}].counters must map counter names "
                    f"to integers"
                )
        _check_no_extras(entry, f"results[{index}]")
        items.append(
            CompletionItem(
                job_id=job_id,
                ok=ok,
                result=body if ok else "",
                error="" if ok else body,
                counters=counters,
            )
        )
    return worker, items


def parse_renew_request(payload: Any) -> Tuple[str, List[str], float]:
    """``POST /v1/jobs/renew`` body: extend *worker*'s leases on *ids*
    by *lease_s* seconds; returns ``(worker, ids, lease_s)``."""
    if not isinstance(payload, dict):
        raise ValidationError("renew request must be a JSON object")
    data = dict(payload)
    worker = _require_str(data, "worker")
    ids = data.pop("ids", None)
    if (
        not isinstance(ids, list)
        or not ids
        or not all(isinstance(i, str) and i for i in ids)
    ):
        raise ValidationError(
            "field 'ids' must be a non-empty list of job id strings"
        )
    lease_s = data.pop("lease_s", 300.0)
    if (
        isinstance(lease_s, bool)
        or not isinstance(lease_s, (int, float))
        or not 1.0 <= float(lease_s) <= MAX_LEASE_S
    ):
        raise ValidationError(
            f"field 'lease_s' must be a number in [1, {MAX_LEASE_S:g}], "
            f"got {lease_s!r}"
        )
    _check_no_extras(data, "renew request")
    return worker, list(ids), float(lease_s)


def parse_release_request(payload: Any) -> Tuple[str, List[str]]:
    """``POST /v1/jobs/release`` body: return *worker*'s
    claimed-but-unstarted jobs *ids* to the queue (the agent drain
    path); returns ``(worker, ids)``."""
    if not isinstance(payload, dict):
        raise ValidationError("release request must be a JSON object")
    data = dict(payload)
    worker = _require_str(data, "worker")
    ids = data.pop("ids", None)
    if (
        not isinstance(ids, list)
        or not ids
        or not all(isinstance(i, str) and i for i in ids)
    ):
        raise ValidationError(
            "field 'ids' must be a non-empty list of job id strings"
        )
    _check_no_extras(data, "release request")
    return worker, list(ids)


def parse_site_events(payload: Any) -> List[Dict[str, Any]]:
    """Strictly parse a ``POST /v1/sites/{name}/events`` body: a
    bounded ``events`` list of ``{kind, job_id?, data?}`` objects
    forwarded by an agent's :class:`repro.telemetry.forwarder
    .EventForwarder`; returns the normalized entries."""
    if not isinstance(payload, dict):
        raise ValidationError("event batch must be a JSON object")
    data = dict(payload)
    events = data.pop("events", None)
    if not isinstance(events, list) or not events:
        raise ValidationError(
            "field 'events' must be a non-empty list of event objects"
        )
    if len(events) > MAX_EVENT_BATCH:
        raise ValidationError(
            f"field 'events' may carry at most {MAX_EVENT_BATCH} entries, "
            f"got {len(events)}"
        )
    _check_no_extras(data, "event batch")
    parsed: List[Dict[str, Any]] = []
    for index, entry in enumerate(events):
        if not isinstance(entry, dict):
            raise ValidationError(
                f"events[{index}] must be an object, got {entry!r}"
            )
        entry = dict(entry)
        kind = entry.pop("kind", None)
        if not isinstance(kind, str) or not _KIND_RE.match(kind):
            raise ValidationError(
                f"events[{index}].kind must match {_KIND_RE.pattern}, "
                f"got {kind!r}"
            )
        job_id = entry.pop("job_id", None)
        if job_id is not None and (
            not isinstance(job_id, str) or not job_id
        ):
            raise ValidationError(
                f"events[{index}].job_id must be a non-empty string"
            )
        event_data = entry.pop("data", None)
        if event_data is not None and not isinstance(event_data, dict):
            raise ValidationError(
                f"events[{index}].data must be an object, got {event_data!r}"
            )
        _check_no_extras(entry, f"events[{index}]")
        item: Dict[str, Any] = {"kind": kind}
        if job_id is not None:
            item["job_id"] = job_id
        if event_data:
            item["data"] = event_data
        parsed.append(item)
    return parsed


def parse_job_id(value: Any) -> Optional[str]:
    """An optional client-supplied idempotency key for ``POST
    /v1/jobs`` (resubmitting the same ``job_id`` returns the original
    record instead of enqueueing a duplicate)."""
    if value is None:
        return None
    if (
        not isinstance(value, str)
        or not re.match(r"^[A-Za-z0-9._-]{8,64}$", value)
    ):
        raise ValidationError(
            "field 'job_id' must be 8-64 characters of letters, digits, "
            f"'.', '_', '-', got {value!r}"
        )
    return value


def parse_depends_on(value: Any) -> Optional[List[str]]:
    """The optional ``depends_on`` list of a ``POST /v1/jobs`` body:
    parent job ids this submission must wait for (the job enters the
    ``blocked`` state until every parent is terminal)."""
    if value is None:
        return None
    if (
        not isinstance(value, list)
        or not value
        or not all(isinstance(i, str) and i for i in value)
    ):
        raise ValidationError(
            "field 'depends_on' must be a non-empty list of job id "
            f"strings, got {value!r}"
        )
    return list(value)


def parse_dep_policy(value: Any) -> str:
    """The optional ``dep_policy`` field of a ``POST /v1/jobs`` body:
    what a failed or cancelled parent does to this job (``cascade``,
    the default, propagates; ``run`` releases the job regardless)."""
    from repro.service.store import DepPolicy

    if value is None:
        return DepPolicy.CASCADE
    if not isinstance(value, str) or value not in DepPolicy.ALL:
        raise ValidationError(
            f"field 'dep_policy' must be one of {', '.join(DepPolicy.ALL)}, "
            f"got {value!r}"
        )
    return value
