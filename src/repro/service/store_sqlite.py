"""SQLite reference implementation of the :class:`JobStore` contract.

One table holds every job the service has ever accepted, a second
holds the registered worker sites.  Durability and crash recovery come
from three properties:

- **WAL journaling** — a killed process never corrupts the store, and
  readers (the HTTP API) don't block the writer (the agents).
- **Atomic claims** — :meth:`SQLiteJobStore.claim_batch` selects and
  marks the runnable jobs inside one ``BEGIN IMMEDIATE`` transaction,
  so two claimers can never overlap.
- **Lease timeouts** — a claim holds a lease; a worker that dies
  mid-job simply stops renewing, and once the lease expires the job is
  claimable again (``attempts`` counts the re-leases, and a job that
  burns :attr:`SQLiteJobStore.max_attempts` leases is marked failed
  rather than looping forever).

All methods are thread-safe: one connection guarded by a lock keeps
the store usable from the HTTP threads and the in-process agent of a
single service process, while WAL keeps concurrent *processes* (e.g.
an operator's ``sqlite3`` shell) safe too.

Constructed only through :func:`repro.service.store.create_store`
(URL ``sqlite://<path>``); never instantiated by the service directly.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
import uuid
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.service.store import (
    DepPolicy,
    DuplicateJob,
    JobRecord,
    JobState,
    JobStore,
    QueueFull,
    SiteRecord,
    SiteState,
    UnknownJob,
    UnknownSite,
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id TEXT PRIMARY KEY,
    spec TEXT NOT NULL,
    state TEXT NOT NULL DEFAULT 'queued',
    created_at REAL NOT NULL,
    started_at REAL,
    finished_at REAL,
    attempts INTEGER NOT NULL DEFAULT 0,
    worker TEXT,
    lease_expires_at REAL,
    cancel_requested INTEGER NOT NULL DEFAULT 0,
    result TEXT,
    error TEXT,
    site TEXT
);
CREATE INDEX IF NOT EXISTS idx_jobs_state_created
    ON jobs (state, created_at);
CREATE TABLE IF NOT EXISTS job_deps (
    parent TEXT NOT NULL,
    child TEXT NOT NULL,
    PRIMARY KEY (parent, child)
);
CREATE INDEX IF NOT EXISTS idx_job_deps_child ON job_deps (child);
CREATE TABLE IF NOT EXISTS sites (
    name TEXT PRIMARY KEY,
    state TEXT NOT NULL DEFAULT 'active',
    registered_at REAL NOT NULL,
    last_heartbeat REAL NOT NULL,
    meta TEXT NOT NULL DEFAULT '{}'
);
"""


def _initial_dep_state(
    parent_states: Dict[str, str], dep_policy: str
) -> "tuple[str, Optional[str]]":
    """The state a freshly submitted dependent job lands in, given its
    parents' current states: ``(state, error_or_None)``.

    The same decision rule the release cascade applies later, evaluated
    eagerly so a job whose parents already settled never waits."""
    if dep_policy == DepPolicy.CASCADE:
        for parent, state in parent_states.items():
            if state in (JobState.FAILED, JobState.CANCELLED):
                child_state = (
                    JobState.FAILED
                    if state == JobState.FAILED
                    else JobState.CANCELLED
                )
                return child_state, f"dependency {parent} {state}"
    if all(s in JobState.TERMINAL for s in parent_states.values()):
        return JobState.QUEUED, None
    return JobState.BLOCKED, None


class SQLiteJobStore(JobStore):
    """The durable queue over one SQLite file (see module docstring).

    *clock* is injectable for tests (lease expiry without sleeping).
    ``queue_limit`` bounds the number of *queued* jobs — running and
    finished jobs don't count against it — and ``max_attempts`` bounds
    how many leases a job may burn before it is marked failed.
    """

    def __init__(
        self,
        path: os.PathLike = ":memory:",
        *,
        queue_limit: int = 256,
        max_attempts: int = 3,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.path = str(path)
        self.queue_limit = queue_limit
        self.max_attempts = max_attempts
        self.clock = clock
        self._lock = threading.RLock()
        if self.path != ":memory:":
            Path(self.path).parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(
            self.path, check_same_thread=False, isolation_level=None
        )
        self._conn.row_factory = sqlite3.Row
        with self._lock:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.executescript(_SCHEMA)
            self._migrate()

    def _migrate(self) -> None:
        """Bring an older database up to the current schema (the
        ``site`` and dependency columns postdate the jobs table; the
        ``job_deps`` table itself rides the idempotent ``_SCHEMA``)."""
        columns = {
            row["name"]
            for row in self._conn.execute("PRAGMA table_info(jobs)")
        }
        if "site" not in columns:
            self._conn.execute("ALTER TABLE jobs ADD COLUMN site TEXT")
        if "depends_on" not in columns:
            self._conn.execute("ALTER TABLE jobs ADD COLUMN depends_on TEXT")
        if "dep_policy" not in columns:
            self._conn.execute("ALTER TABLE jobs ADD COLUMN dep_policy TEXT")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        with self._lock:
            try:
                self._conn.close()
            except sqlite3.Error:  # pragma: no cover - close is best-effort
                pass

    # ------------------------------------------------------------------
    # Submission / inspection
    # ------------------------------------------------------------------

    def submit(
        self,
        spec: Dict[str, Any],
        job_id: Optional[str] = None,
        depends_on: Optional[Sequence[str]] = None,
        dep_policy: str = DepPolicy.CASCADE,
    ) -> str:
        """Enqueue *spec*; returns the new job id.

        Raises :class:`QueueFull` when waiting (``queued`` + ``blocked``)
        jobs are already at the depth bound (backpressure, not data
        loss: nothing is partially written) and :class:`DuplicateJob`
        when *job_id* is already taken (the idempotent-resubmit
        signal).  With *depends_on*, the job lands ``blocked`` until
        every named parent is terminal — or directly ``queued`` /
        cascaded when the parents already settled (see
        :meth:`JobStore.submit`); unknown parents raise
        :class:`UnknownJob` inside the same transaction, so nothing
        partial is written.
        """
        job_id = job_id or uuid.uuid4().hex
        payload = json.dumps(spec, sort_keys=True)
        parents = [str(p) for p in (depends_on or ())]
        if dep_policy not in DepPolicy.ALL:
            raise ValueError(
                f"unknown dep_policy {dep_policy!r} "
                f"(choose from {', '.join(DepPolicy.ALL)})"
            )
        now = self.clock()
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                # The duplicate check outranks the depth bound: a
                # retried idempotent submit must find its original
                # record even when the queue has since filled up.
                (taken,) = self._conn.execute(
                    "SELECT COUNT(*) FROM jobs WHERE id = ?", (job_id,)
                ).fetchone()
                if taken:
                    raise DuplicateJob(job_id)
                (depth,) = self._conn.execute(
                    "SELECT COUNT(*) FROM jobs WHERE state IN (?, ?)",
                    (JobState.QUEUED, JobState.BLOCKED),
                ).fetchone()
                if depth >= self.queue_limit:
                    raise QueueFull(
                        f"queue is full ({depth}/{self.queue_limit} jobs waiting)"
                    )
                state, error = JobState.QUEUED, None
                if parents:
                    states: Dict[str, str] = {}
                    for parent in parents:
                        row = self._conn.execute(
                            "SELECT state FROM jobs WHERE id = ?", (parent,)
                        ).fetchone()
                        if row is None:
                            raise UnknownJob(parent)
                        states[parent] = row["state"]
                    state, error = _initial_dep_state(states, dep_policy)
                try:
                    self._conn.execute(
                        "INSERT INTO jobs (id, spec, state, created_at,"
                        " finished_at, error, depends_on, dep_policy)"
                        " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                        (
                            job_id,
                            payload,
                            state,
                            now,
                            now if state in JobState.TERMINAL else None,
                            error,
                            json.dumps(parents) if parents else None,
                            dep_policy if parents else None,
                        ),
                    )
                except sqlite3.IntegrityError:
                    raise DuplicateJob(job_id) from None
                for parent in parents:
                    self._conn.execute(
                        "INSERT OR IGNORE INTO job_deps (parent, child)"
                        " VALUES (?, ?)",
                        (parent, job_id),
                    )
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
            self._conn.execute("COMMIT")
        return job_id

    def get(self, job_id: str) -> JobRecord:
        """The job with *job_id*; raises :class:`UnknownJob` if absent."""
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
        if row is None:
            raise UnknownJob(job_id)
        return self._record(row)

    def list_jobs(
        self, state: Optional[str] = None, limit: int = 100
    ) -> List[JobRecord]:
        """Most-recent-first listing, optionally filtered by state."""
        query = "SELECT * FROM jobs"
        params: tuple = ()
        if state is not None:
            query += " WHERE state = ?"
            params = (state,)
        query += " ORDER BY created_at DESC, rowid DESC LIMIT ?"
        with self._lock:
            rows = self._conn.execute(query, params + (limit,)).fetchall()
        return [self._record(row) for row in rows]

    def counts(self) -> Dict[str, int]:
        """Job count per state (zero-filled for absent states)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"
            ).fetchall()
        out = {state: 0 for state in JobState.ALL}
        for row in rows:
            out[row["state"]] = row["n"]
        return out

    def queue_depth(self) -> int:
        """Number of jobs currently waiting to be claimed."""
        with self._lock:
            (depth,) = self._conn.execute(
                "SELECT COUNT(*) FROM jobs WHERE state = ?",
                (JobState.QUEUED,),
            ).fetchone()
        return depth

    # ------------------------------------------------------------------
    # Dependency release (runs inside an open transaction)
    # ------------------------------------------------------------------

    def _release_dependents(self, parent_ids: Sequence[str], now: float) -> None:
        """Settle the blocked children of jobs that just went terminal.

        Must be called inside an open transaction, immediately after
        *parent_ids* reached a terminal state — the release is then
        atomic with the parent transition, so a concurrent
        ``claim_batch`` either sees the child still ``blocked`` or
        fully ``queued``, never in between.  Cascaded failures and
        cancellations are themselves terminal transitions, so the
        worklist recurses through deeper dependents."""
        pending = list(parent_ids)
        while pending:
            parent = pending.pop()
            children = [
                row["child"]
                for row in self._conn.execute(
                    "SELECT child FROM job_deps WHERE parent = ?"
                    " ORDER BY rowid",
                    (parent,),
                ).fetchall()
            ]
            for child in children:
                row = self._conn.execute(
                    "SELECT state, dep_policy FROM jobs WHERE id = ?",
                    (child,),
                ).fetchone()
                if row is None or row["state"] != JobState.BLOCKED:
                    continue
                parent_rows = self._conn.execute(
                    "SELECT jobs.id AS id, jobs.state AS state"
                    " FROM job_deps JOIN jobs ON jobs.id = job_deps.parent"
                    " WHERE job_deps.child = ? ORDER BY job_deps.rowid",
                    (child,),
                ).fetchall()
                states = {r["id"]: r["state"] for r in parent_rows}
                state, error = _initial_dep_state(
                    states, row["dep_policy"] or DepPolicy.CASCADE
                )
                if state == JobState.BLOCKED:
                    continue
                if state == JobState.QUEUED:
                    self._conn.execute(
                        "UPDATE jobs SET state = ? WHERE id = ?",
                        (JobState.QUEUED, child),
                    )
                else:
                    self._conn.execute(
                        "UPDATE jobs SET state = ?, finished_at = ?,"
                        " error = ? WHERE id = ?",
                        (state, now, error, child),
                    )
                    pending.append(child)

    # ------------------------------------------------------------------
    # Claiming and completion (the worker protocol)
    # ------------------------------------------------------------------

    def claim_batch(
        self,
        worker: str,
        lease_s: float,
        limit: int,
        site: Optional[str] = None,
    ) -> List[JobRecord]:
        """Atomically lease up to *limit* runnable jobs to *worker*.

        Runnable means: expired-lease ``running`` jobs (crash
        recovery — oldest first), then ``queued`` jobs in submission
        order; ``blocked`` jobs are never selected.  An expired job
        that already burned ``max_attempts`` leases is marked failed
        instead of being handed out again (cascading to its dependents
        in the same transaction).  The whole batch — retirement,
        selection, and leasing — is one ``BEGIN IMMEDIATE``
        transaction.
        """
        if limit < 1:
            return []
        now = self.clock()
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                # Retire jobs whose leases expired too many times (and
                # cascade to their dependents in the same transaction).
                retired = [
                    row["id"]
                    for row in self._conn.execute(
                        "SELECT id FROM jobs WHERE state = ?"
                        " AND lease_expires_at < ? AND attempts >= ?",
                        (JobState.RUNNING, now, self.max_attempts),
                    ).fetchall()
                ]
                if retired:
                    placeholders = ",".join("?" * len(retired))
                    self._conn.execute(
                        "UPDATE jobs SET state = ?, finished_at = ?,"
                        " worker = NULL, lease_expires_at = NULL,"
                        " error = 'lease expired after ' || attempts ||"
                        " ' attempts'"
                        f" WHERE id IN ({placeholders})",
                        [JobState.FAILED, now] + retired,
                    )
                    self._release_dependents(retired, now)
                rows = self._conn.execute(
                    "SELECT id FROM jobs"
                    " WHERE (state = ? AND lease_expires_at < ?) OR state = ?"
                    " ORDER BY state != ?, created_at, rowid LIMIT ?",
                    (
                        JobState.RUNNING,
                        now,
                        JobState.QUEUED,
                        JobState.RUNNING,
                        limit,
                    ),
                ).fetchall()
                job_ids = [row["id"] for row in rows]
                if job_ids:
                    placeholders = ",".join("?" * len(job_ids))
                    self._conn.execute(
                        "UPDATE jobs SET state = ?, worker = ?, site = ?,"
                        " attempts = attempts + 1,"
                        " started_at = COALESCE(started_at, ?),"
                        " lease_expires_at = ?"
                        f" WHERE id IN ({placeholders})",
                        [JobState.RUNNING, worker, site, now, now + lease_s]
                        + job_ids,
                    )
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
            self._conn.execute("COMMIT")
            return [self.get(job_id) for job_id in job_ids]

    def renew(self, job_id: str, worker: str, lease_s: float) -> bool:
        """Extend *worker*'s lease on a running job (heartbeat).

        Returns False when the job is no longer leased to *worker*
        (lease stolen after expiry, job cancelled, ...), which tells
        the worker its result will be discarded.
        """
        with self._lock:
            cursor = self._conn.execute(
                "UPDATE jobs SET lease_expires_at = ?"
                " WHERE id = ? AND state = ? AND worker = ?",
                (self.clock() + lease_s, job_id, JobState.RUNNING, worker),
            )
        return cursor.rowcount == 1

    def complete(self, job_id: str, worker: str, result: str) -> bool:
        """Record a successful result from *worker*.

        Only the current lease holder may complete a job (a worker
        whose lease was reassigned after a stall must not clobber the
        re-run's result).  A completion racing a cancellation request
        lands as ``cancelled`` with the result attached.  Blocked
        dependents whose last parent this was are released (or
        cascaded) in the same transaction.  Returns True when this
        call finalized the job.
        """
        now = self.clock()
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                row = self._conn.execute(
                    "SELECT cancel_requested FROM jobs"
                    " WHERE id = ? AND state = ? AND worker = ?",
                    (job_id, JobState.RUNNING, worker),
                ).fetchone()
                if row is None:
                    self._conn.execute("COMMIT")
                    return False
                state = (
                    JobState.CANCELLED
                    if row["cancel_requested"]
                    else JobState.DONE
                )
                self._conn.execute(
                    "UPDATE jobs SET state = ?, result = ?, finished_at = ?,"
                    " lease_expires_at = NULL WHERE id = ?",
                    (state, result, now, job_id),
                )
                self._release_dependents([job_id], now)
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
            self._conn.execute("COMMIT")
        return True

    def fail(self, job_id: str, worker: str, error: str) -> bool:
        """Record a failed execution from the current lease holder
        (cascading to blocked dependents in the same transaction)."""
        now = self.clock()
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                cursor = self._conn.execute(
                    "UPDATE jobs SET state = ?, error = ?, finished_at = ?,"
                    " lease_expires_at = NULL"
                    " WHERE id = ? AND state = ? AND worker = ?",
                    (
                        JobState.FAILED,
                        error,
                        now,
                        job_id,
                        JobState.RUNNING,
                        worker,
                    ),
                )
                failed = cursor.rowcount == 1
                if failed:
                    self._release_dependents([job_id], now)
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
            self._conn.execute("COMMIT")
        return failed

    def release(self, job_id: str, worker: str) -> bool:
        """Return a claimed-but-unstarted job to the queue (shutdown
        path); the attempt is refunded so a drain/restart cycle never
        pushes a job toward its attempts bound."""
        with self._lock:
            cursor = self._conn.execute(
                "UPDATE jobs SET state = ?, worker = NULL, site = NULL,"
                " lease_expires_at = NULL, attempts = MAX(attempts - 1, 0)"
                " WHERE id = ? AND state = ? AND worker = ?",
                (JobState.QUEUED, job_id, JobState.RUNNING, worker),
            )
        return cursor.rowcount == 1

    def reassign(self, job_id: str, old_worker: str, new_worker: str) -> bool:
        """Transfer a running job's lease between worker names (an
        agent that claims under one identity can hand the lease to the
        thread doing the work, so completion authority follows it)."""
        with self._lock:
            cursor = self._conn.execute(
                "UPDATE jobs SET worker = ?"
                " WHERE id = ? AND state = ? AND worker = ?",
                (new_worker, job_id, JobState.RUNNING, old_worker),
            )
        return cursor.rowcount == 1

    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a job: queued and blocked jobs flip to ``cancelled``
        immediately (cascading to their dependents), running jobs get
        ``cancel_requested`` set (the worker honours it at its next
        checkpoint), terminal jobs are left untouched.  Returns the
        record after the transition."""
        now = self.clock()
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                cursor = self._conn.execute(
                    "UPDATE jobs SET state = ?, finished_at = ?,"
                    " cancel_requested = 1, lease_expires_at = NULL"
                    " WHERE id = ? AND state IN (?, ?)",
                    (
                        JobState.CANCELLED,
                        now,
                        job_id,
                        JobState.QUEUED,
                        JobState.BLOCKED,
                    ),
                )
                if cursor.rowcount == 1:
                    self._release_dependents([job_id], now)
                self._conn.execute(
                    "UPDATE jobs SET cancel_requested = 1"
                    " WHERE id = ? AND state = ?",
                    (job_id, JobState.RUNNING),
                )
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
            self._conn.execute("COMMIT")
        return self.get(job_id)

    def result_text(self, job_id: str) -> Optional[str]:
        """The stored result body (None unless the job finished with
        one)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT result FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
        if row is None:
            raise UnknownJob(job_id)
        return row["result"]

    # ------------------------------------------------------------------
    # Sites (the fleet protocol)
    # ------------------------------------------------------------------

    def register_site(
        self, name: str, meta: Optional[Dict[str, Any]] = None
    ) -> SiteRecord:
        """Register (or re-activate) the site *name*; idempotent.  A
        re-registration refreshes the heartbeat and flips a draining
        site back to active (an agent restart is a fresh deployment)."""
        now = self.clock()
        meta_json = json.dumps(meta or {}, sort_keys=True)
        with self._lock:
            self._conn.execute(
                "INSERT INTO sites (name, state, registered_at,"
                " last_heartbeat, meta) VALUES (?, ?, ?, ?, ?)"
                " ON CONFLICT(name) DO UPDATE SET state = excluded.state,"
                " last_heartbeat = excluded.last_heartbeat,"
                " meta = excluded.meta",
                (name, SiteState.ACTIVE, now, now, meta_json),
            )
        return self._get_site(name)

    def heartbeat_site(self, name: str) -> SiteRecord:
        """Record a liveness heartbeat; raises :class:`UnknownSite`."""
        with self._lock:
            cursor = self._conn.execute(
                "UPDATE sites SET last_heartbeat = ? WHERE name = ?",
                (self.clock(), name),
            )
        if cursor.rowcount != 1:
            raise UnknownSite(name)
        return self._get_site(name)

    def drain_site(self, name: str) -> SiteRecord:
        """Mark the site draining (no further claims; its agents shut
        down once in-flight jobs finish)."""
        with self._lock:
            cursor = self._conn.execute(
                "UPDATE sites SET state = ? WHERE name = ?",
                (SiteState.DRAINING, name),
            )
        if cursor.rowcount != 1:
            raise UnknownSite(name)
        return self._get_site(name)

    def list_sites(self) -> List[SiteRecord]:
        """Every registered site, in registration order."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM sites ORDER BY registered_at, name"
            ).fetchall()
        return [self._site_record(row) for row in rows]

    def site_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-site job ledger (see :meth:`JobStore.site_stats`)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT site, state, COUNT(*) AS n FROM jobs"
                " WHERE site IS NOT NULL GROUP BY site, state"
            ).fetchall()
        out: Dict[str, Dict[str, int]] = {}
        key = {
            JobState.DONE: "completed",
            JobState.FAILED: "failed",
            JobState.RUNNING: "inflight",
            JobState.CANCELLED: "cancelled",
        }
        for row in rows:
            stats = out.setdefault(
                row["site"],
                {"completed": 0, "failed": 0, "inflight": 0, "cancelled": 0},
            )
            bucket = key.get(row["state"])
            if bucket is not None:
                stats[bucket] += row["n"]
        return out

    def _get_site(self, name: str) -> SiteRecord:
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM sites WHERE name = ?", (name,)
            ).fetchone()
        if row is None:
            raise UnknownSite(name)
        return self._site_record(row)

    # ------------------------------------------------------------------

    @staticmethod
    def _site_record(row: sqlite3.Row) -> SiteRecord:
        return SiteRecord(
            name=row["name"],
            state=row["state"],
            registered_at=row["registered_at"],
            last_heartbeat=row["last_heartbeat"],
            meta=json.loads(row["meta"]),
        )

    @staticmethod
    def _record(row: sqlite3.Row) -> JobRecord:
        return JobRecord(
            id=row["id"],
            spec=json.loads(row["spec"]),
            state=row["state"],
            created_at=row["created_at"],
            started_at=row["started_at"],
            finished_at=row["finished_at"],
            attempts=row["attempts"],
            worker=row["worker"],
            lease_expires_at=row["lease_expires_at"],
            cancel_requested=bool(row["cancel_requested"]),
            result=row["result"],
            error=row["error"],
            site=row["site"],
            depends_on=(
                tuple(json.loads(row["depends_on"]))
                if row["depends_on"]
                else ()
            ),
            dep_policy=row["dep_policy"] or DepPolicy.CASCADE,
        )
