"""repro.service — a persistent simulation service.

Turns the one-shot CLI into a long-running daemon: an HTTP JSON API
accepts figure/table/sweep/selection jobs into a durable SQLite-backed
queue, a worker pool drains them through the shared experiment
entrypoint (:mod:`repro.experiments.entry`), and a thin stdlib client
SDK (plus ``repro submit``/``status``/``result`` CLI verbs) talks to
it.  Results are byte-identical to the equivalent direct CLI run —
same seeds, same cache, same renderers.

Layers (each its own module, all stdlib-only):

- :mod:`repro.service.store` — the durable job store: states
  ``queued -> running -> done/failed/cancelled``, atomic claims, and
  crash-recovery lease timeouts.
- :mod:`repro.service.jobs` — the job specification (what to run, at
  which executor settings) and its validation.
- :mod:`repro.service.worker` — the scheduler + worker pool that
  leases jobs and executes them.
- :mod:`repro.service.api` — the ``http.server``-based JSON API.
- :mod:`repro.service.app` — composition root: store + workers +
  HTTP server, graceful shutdown, cache pruning.
- :mod:`repro.service.client` — the urllib-based client SDK.
"""

from repro.service.app import ReproService, ServiceConfig
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import JobSpec, ValidationError
from repro.service.store import JobRecord, JobState, JobStore, QueueFull

__all__ = [
    "JobRecord",
    "JobSpec",
    "JobState",
    "JobStore",
    "QueueFull",
    "ReproService",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ValidationError",
]
