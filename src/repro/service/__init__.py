"""repro.service — a persistent simulation service.

Turns the one-shot CLI into a long-running control plane plus a fleet
of worker agents: an HTTP JSON API accepts figure/table/sweep/
selection jobs into a durable queue behind a pluggable
:class:`~repro.service.store.JobStore` interface, worker *agents* —
in-process threads (``repro serve --workers N``) or separate
processes on other hosts (``repro agent``) — lease batches of jobs
and drain them through the shared experiment entrypoint
(:mod:`repro.experiments.entry`), and a thin stdlib client SDK (plus
``repro submit``/``status``/``result`` CLI verbs) talks to it.
Results are byte-identical to the equivalent direct CLI run — same
seeds, same cache, same renderers.

Layers (each its own module, all stdlib-only):

- :mod:`repro.service.store` — the job-store interface and backend
  factory: states ``queued -> running -> done/failed/cancelled``,
  atomic batch claims, crash-recovery lease timeouts, worker sites.
- :mod:`repro.service.store_sqlite` — the SQLite reference backend
  (constructed only through :func:`~repro.service.store.create_store`).
- :mod:`repro.service.jobs` — the job specification (what to run, at
  which executor settings) and its validation.
- :mod:`repro.service.protocol` — the wire protocol of the
  control-plane <-> agent exchange (strict request parsers).
- :mod:`repro.service.agent` — the agent engine: batch claiming,
  execution, lease renewal, idempotent result push, graceful drain;
  plus its local (direct-store) and remote (HTTP) job sources.
- :mod:`repro.service.worker` — the in-process worker pool: the agent
  engine wired to the local job source inside ``repro serve``.
- :mod:`repro.service.api` — the ``http.server``-based JSON API.
- :mod:`repro.service.app` — composition root: store + workers +
  HTTP server, graceful shutdown, cache pruning, fleet operations.
- :mod:`repro.service.client` — the urllib-based client SDK with
  retry/backoff.
"""

from repro.service.agent import (
    LocalJobSource,
    RemoteJobSource,
    WorkerAgent,
)
from repro.service.app import ReproService, ServiceConfig
from repro.service.client import RetryPolicy, ServiceClient, ServiceError
from repro.service.jobs import JobSpec, ValidationError
from repro.service.store import (
    DuplicateJob,
    JobRecord,
    JobState,
    JobStore,
    QueueFull,
    SiteRecord,
    UnknownJob,
    UnknownSite,
    create_store,
)

__all__ = [
    "DuplicateJob",
    "JobRecord",
    "JobSpec",
    "JobState",
    "JobStore",
    "LocalJobSource",
    "QueueFull",
    "RemoteJobSource",
    "ReproService",
    "RetryPolicy",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "SiteRecord",
    "UnknownJob",
    "UnknownSite",
    "ValidationError",
    "WorkerAgent",
    "create_store",
]
