"""The HTTP JSON API (stdlib ``http.server``, threading).

Routes (all JSON unless noted):

- ``POST /v1/jobs`` — submit a job (a flat :class:`JobSpec` payload);
  201 with the job status, 400 on a malformed spec, 429 when the
  queue is at its depth bound.
- ``POST /v1/campaigns`` — compile a scenario (``{"scenario": name}``
  for a bundled one, or ``{"spec": {...}}`` inline) and enqueue its
  units as jobs; 201 with a campaign id, the spec SHA-256, and one
  job record per unit, 400 with the field-qualified one-line message
  on a schema violation, 429 when the queue cannot take the units.
  An ``adaptive`` field (boolean or config object) hands the campaign
  to the server-side controller, which submits dependency-chained
  trial batches per study cell, early-stops on CI convergence, and
  refines technique crossovers.
- ``GET /v1/campaigns/{id}`` — campaign lifecycle: per-cell
  convergence status, refinement intervals, trial-reduction counters,
  and (once done) the rendered winning-technique table.
- ``GET /v1/jobs`` — recent jobs (``?state=`` filter, ``?limit=``).
- ``GET /v1/jobs/{id}`` — job status.
- ``GET /v1/jobs/{id}/result`` — the rendered artifact, as raw text
  (``application/json`` when the job's format was ``json``); 409
  while the job is still active or was cancelled, 500 when it failed.
- ``DELETE /v1/jobs/{id}`` — cancel.
- ``GET /v1/metrics`` — service counters (queue depth, job counts,
  cache hit rate, per-site fleet health, telemetry ring occupancy,
  :mod:`repro.obs` counter snapshot).
- ``GET /v1/healthz`` — liveness.

Streaming routes (``text/event-stream`` over chunked HTTP/1.1):

- ``GET /`` — the dependency-free HTML/JS fleet status dashboard.
- ``GET /v1/events`` — the global live event feed (job lifecycle,
  forwarded agent events, watched jobs' simulation events, campaign
  progress).  ``Last-Event-ID`` (header or ``?last_event_id=``)
  resumes from the telemetry ring; resuming past an eviction gap
  yields a ``gap`` marker event, idle streams carry heartbeat
  comments.
- ``GET /v1/jobs/{id}/events`` — one job's stream: a ``snapshot``
  event with the current record, then that job's events as they
  happen, an ``end`` event after the terminal transition.  Opening
  the stream registers a *watch*, which turns on live
  simulation-event streaming for that job (locally and, via the
  claim response, on remote agents).
- ``GET /v1/metrics/stream`` — a ``metrics`` event with the
  ``/v1/metrics`` payload on an interval (what the dashboard polls).
- ``POST /v1/sites/{name}/events`` — forwarded agent event batches
  (the remote half of simulation-event streaming).

Fleet routes (what remote ``repro agent`` processes drive):

- ``POST /v1/sites`` — register a worker site; 201, idempotent.
- ``GET /v1/sites`` — every registered site.
- ``POST /v1/sites/{name}/heartbeat`` — liveness ping; the response's
  ``drain`` flag tells the agent to wind down.
- ``POST /v1/sites/{name}/drain`` — stop handing the site work.
- ``POST /v1/jobs/claim`` — atomically lease a batch of runnable jobs.
- ``POST /v1/jobs/complete`` — push a batch of outcomes
  (lease-holder-only, idempotent per item).
- ``POST /v1/jobs/renew`` — batch lease renewal.
- ``POST /v1/jobs/release`` — return unstarted claims to the queue.

The handler is deliberately thin: every decision lives in
:class:`repro.service.app.ReproService`, which the server object
carries; request threads only parse, dispatch, and serialize.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.campaigns.controller import UnknownCampaign
from repro.service.jobs import ValidationError
from repro.service.store import JobState, QueueFull, UnknownJob, UnknownSite
from repro.telemetry import TERMINAL_KINDS

#: Largest request body accepted (a job spec is a few hundred bytes).
MAX_BODY_BYTES = 64 * 1024

#: Batch completion bodies carry rendered results; give them room.
MAX_COMPLETE_BODY_BYTES = 8 * 1024 * 1024

#: A sentinel sequence far beyond any real one: ``wait_for`` against
#: it is an interruptible sleep that wakes on ring close (shutdown).
_NEVER_SEQ = 2**62


class ServiceHTTPServer(ThreadingHTTPServer):
    """A ``ThreadingHTTPServer`` that carries the owning service."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], service: Any) -> None:
        super().__init__(address, ServiceRequestHandler)
        self.service = service


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes one HTTP request to the owning :class:`ReproService`."""

    server_version = "repro-service"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        """Quiet by default; the service decides whether to log."""
        self.server.service.log_http(self.address_string(), format % args)

    def _send_bytes(
        self, status: int, body: bytes, content_type: str
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"
        self._send_bytes(status, body, "application/json")

    def _read_json_body(self, max_bytes: int = MAX_BODY_BYTES) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length > max_bytes:
            raise ValidationError(
                f"request body too large ({length} > {max_bytes} bytes)"
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ValidationError("request body must be a JSON object")
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"request body is not valid JSON: {exc}")

    # -- routing -------------------------------------------------------

    def do_GET(self) -> None:
        """Dispatch GET routes."""
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        service = self.server.service
        if not parts:
            self._send_dashboard()
            return
        if parts == ["v1", "healthz"]:
            self._send_json(200, service.health_payload())
            return
        if parts == ["v1", "metrics"]:
            self._send_json(200, service.metrics_payload())
            return
        if parts == ["v1", "metrics", "stream"]:
            self._stream_metrics()
            return
        if parts == ["v1", "events"]:
            self._stream_global_events(url)
            return
        if (
            len(parts) == 4
            and parts[:2] == ["v1", "jobs"]
            and parts[3] == "events"
        ):
            self._stream_job_events(parts[2], url)
            return
        if parts == ["v1", "sites"]:
            self._send_json(200, service.sites_payload())
            return
        if parts == ["v1", "jobs"]:
            query = parse_qs(url.query)
            state = query.get("state", [None])[0]
            if state is not None and state not in JobState.ALL:
                self._send_json(400, {"error": f"unknown state {state!r}"})
                return
            try:
                limit = int(query.get("limit", ["100"])[0])
            except ValueError:
                self._send_json(400, {"error": "limit must be an integer"})
                return
            records = service.store.list_jobs(state=state, limit=limit)
            self._send_json(
                200, {"jobs": [r.to_payload() for r in records]}
            )
            return
        if len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
            self._with_job(parts[2], self._send_status)
            return
        if len(parts) == 4 and parts[:2] == ["v1", "jobs"] and parts[3] == "result":
            self._with_job(parts[2], self._send_result)
            return
        if len(parts) == 3 and parts[:2] == ["v1", "campaigns"]:
            try:
                self._send_json(200, service.campaign_status(parts[2]))
            except UnknownCampaign:
                self._send_json(
                    404, {"error": f"no campaign {parts[2]!r}"}
                )
            return
        self._send_json(404, {"error": f"no route for {url.path}"})

    def do_POST(self) -> None:
        """Dispatch POST routes."""
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        service = self.server.service
        status, max_bytes = 201, MAX_BODY_BYTES
        if parts == ["v1", "jobs"]:
            handler = lambda payload: service.submit(payload).to_payload()  # noqa: E731
        elif parts == ["v1", "campaigns"]:
            handler = service.submit_campaign
        elif parts == ["v1", "sites"]:
            handler = service.register_site
        elif parts == ["v1", "jobs", "claim"]:
            handler, status = service.claim_jobs, 200
        elif parts == ["v1", "jobs", "complete"]:
            handler, status = service.complete_jobs, 200
            max_bytes = MAX_COMPLETE_BODY_BYTES
        elif parts == ["v1", "jobs", "renew"]:
            handler, status = service.renew_jobs, 200
        elif parts == ["v1", "jobs", "release"]:
            handler, status = service.release_jobs, 200
        elif (
            len(parts) == 4
            and parts[:2] == ["v1", "sites"]
            and parts[3] == "events"
        ):
            site_name = parts[2]
            handler, status = (
                lambda payload: service.ingest_site_events(  # noqa: E731
                    site_name, payload
                ),
                200,
            )
        elif (
            len(parts) == 4
            and parts[:2] == ["v1", "sites"]
            and parts[3] in ("heartbeat", "drain")
        ):
            site_name = parts[2]
            site_action = (
                service.heartbeat_site
                if parts[3] == "heartbeat"
                else service.drain_site
            )
            handler, status = (
                lambda payload: site_action(site_name),  # noqa: E731
                200,
            )
        else:
            self._send_json(404, {"error": f"no route for {url.path}"})
            return
        try:
            payload = self._read_json_body(max_bytes) if status == 201 else (
                self._read_optional_json_body(max_bytes)
            )
            response = handler(payload)
        except ValidationError as exc:
            self._send_json(400, {"error": str(exc)})
            return
        except UnknownSite as exc:
            self._send_json(404, {"error": f"no site {exc.args[0]!r}"})
            return
        except QueueFull as exc:
            self.send_response(429)
            self.send_header("Retry-After", "1")
            body = json.dumps({"error": str(exc)}, sort_keys=True).encode() + b"\n"
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        self._send_json(status, response)

    def _read_optional_json_body(self, max_bytes: int) -> Any:
        """Like :meth:`_read_json_body` but an empty body is ``{}``
        (the site heartbeat/drain routes carry no payload)."""
        try:
            return self._read_json_body(max_bytes)
        except ValidationError as exc:
            if "must be a JSON object" in str(exc):
                return {}
            raise

    def do_DELETE(self) -> None:
        """Dispatch DELETE routes (job cancellation)."""
        parts = [p for p in urlparse(self.path).path.split("/") if p]
        if len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
            self._with_job(parts[2], self._cancel_job)
            return
        self._send_json(404, {"error": f"no route for {self.path}"})

    # -- job helpers ---------------------------------------------------

    def _with_job(self, job_id: str, action) -> None:
        try:
            action(job_id)
        except UnknownJob:
            self._send_json(404, {"error": f"no job {job_id!r}"})

    def _send_status(self, job_id: str) -> None:
        record = self.server.service.store.get(job_id)
        self._send_json(200, record.to_payload())

    def _cancel_job(self, job_id: str) -> None:
        record = self.server.service.cancel(job_id)
        self._send_json(200, record.to_payload())

    def _send_result(self, job_id: str) -> None:
        record = self.server.service.store.get(job_id)
        if record.state == JobState.DONE:
            content_type = (
                "application/json"
                if record.spec.get("format") == "json"
                else "text/plain; charset=utf-8"
            )
            self._send_bytes(
                200, (record.result or "").encode("utf-8"), content_type
            )
            return
        if record.state == JobState.FAILED:
            self._send_json(
                500, {"error": record.error or "job failed", "state": record.state}
            )
            return
        self._send_json(
            409,
            {
                "error": f"job is {record.state}, no result available",
                "state": record.state,
            },
        )

    # -- dashboard -----------------------------------------------------

    def _send_dashboard(self) -> None:
        """``GET /``: the dependency-free HTML/JS status page."""
        from repro.telemetry.dashboard import DASHBOARD_HTML

        self._send_bytes(
            200, DASHBOARD_HTML.encode("utf-8"), "text/html; charset=utf-8"
        )

    # -- SSE streaming -------------------------------------------------
    #
    # Streams run on the request's own daemon thread and never block
    # the workers: they only read the telemetry ring (appends there
    # never wait for consumers).  Shutdown closes the ring, which
    # wakes every blocked stream so it winds down before the listener
    # goes away; a disconnected client surfaces as a broken pipe on
    # the next write and just ends the stream.

    def _last_event_id(self, url: Any) -> Optional[int]:
        """The resume position: the ``Last-Event-ID`` header (what
        ``EventSource`` reconnects send) or a ``?last_event_id=``
        query parameter; None to start at the live edge."""
        raw = self.headers.get("Last-Event-ID")
        if raw is None:
            raw = parse_qs(url.query).get("last_event_id", [None])[0]
        if raw is None:
            return None
        try:
            value = int(raw)
        except ValueError:
            value = -1
        if value < 0:
            raise ValidationError(
                f"Last-Event-ID must be a non-negative integer, got {raw!r}"
            )
        return value

    def _sse_begin(self) -> None:
        """Open a chunked ``text/event-stream`` response.  The
        ``Connection: close`` header also tells the base handler not
        to expect another request on this socket."""
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Transfer-Encoding", "chunked")
        self.send_header("Connection", "close")
        self.end_headers()

    def _sse_chunk(self, data: bytes) -> None:
        self.wfile.write(b"%X\r\n" % len(data) + data + b"\r\n")
        self.wfile.flush()

    def _sse_end(self) -> None:
        """The terminating zero-length chunk of a finished stream."""
        self.wfile.write(b"0\r\n\r\n")
        self.wfile.flush()

    def _sse_event(
        self,
        event: str,
        payload: Dict[str, Any],
        event_id: Optional[int] = None,
    ) -> None:
        """One SSE frame; *event_id* feeds the client's
        ``Last-Event-ID`` resume cursor (synthetic frames like
        ``snapshot`` and ``gap`` carry none, so they never become a
        resume position)."""
        lines = []
        if event_id is not None:
            lines.append(f"id: {event_id}")
        lines.append(f"event: {event}")
        lines.append("data: " + json.dumps(payload, sort_keys=True))
        self._sse_chunk(("\n".join(lines) + "\n\n").encode("utf-8"))

    def _sse_comment(self, text: str) -> None:
        """A comment frame (the idle-stream heartbeat)."""
        self._sse_chunk(f": {text}\n\n".encode("utf-8"))

    def _stream_global_events(self, url: Any) -> None:
        """``GET /v1/events``: follow the whole telemetry ring."""
        service = self.server.service
        ring = service.hub.ring
        try:
            resume = self._last_event_id(url)
        except ValidationError as exc:
            self._send_json(400, {"error": str(exc)})
            return
        last_seq = resume if resume is not None else ring.last_seq
        heartbeat_s = service.config.sse_heartbeat_s
        try:
            self._sse_begin()
            while True:
                events, missed = ring.read_since(last_seq)
                if missed:
                    self._sse_event(
                        "gap", {"missed": missed, "after_seq": last_seq}
                    )
                    last_seq += missed
                for event in events:
                    last_seq = event.seq
                    self._sse_event(
                        "event", event.to_payload(), event_id=event.seq
                    )
                if not ring.wait_for(last_seq, heartbeat_s):
                    if ring.closed:
                        break
                    self._sse_comment("heartbeat")
            self._sse_end()
        except (BrokenPipeError, ConnectionResetError):
            pass

    def _stream_job_events(self, job_id: str, url: Any) -> None:
        """``GET /v1/jobs/{id}/events``: one job's slice of the feed.

        Opens with a ``snapshot`` of the current record, then follows
        the ring filtered to this job, and closes with an ``end``
        frame once the job's terminal transition has streamed.  The
        open stream registers a refcounted *watch*, so the job's
        in-flight simulation events are streamed too — a watch must
        exist when the job starts executing for those to appear
        (lifecycle events always stream).
        """
        service = self.server.service
        hub = service.hub
        ring = hub.ring
        try:
            resume = self._last_event_id(url)
        except ValidationError as exc:
            self._send_json(400, {"error": str(exc)})
            return
        try:
            record = service.store.get(job_id)
        except UnknownJob:
            self._send_json(404, {"error": f"no job {job_id!r}"})
            return
        last_seq = resume if resume is not None else ring.last_seq
        heartbeat_s = service.config.sse_heartbeat_s
        hub.watch(job_id)
        try:
            self._sse_begin()
            self._sse_event("snapshot", record.to_payload())
            if resume is None and record.state in JobState.TERMINAL:
                self._sse_event("end", {"state": record.state})
                self._sse_end()
                return
            while True:
                events, missed = ring.read_since(last_seq)
                if missed:
                    self._sse_event(
                        "gap", {"missed": missed, "after_seq": last_seq}
                    )
                    last_seq += missed
                for event in events:
                    last_seq = event.seq
                    if event.job_id != job_id:
                        continue
                    self._sse_event(
                        "event", event.to_payload(), event_id=event.seq
                    )
                    if event.kind in TERMINAL_KINDS:
                        self._sse_event(
                            "end", {"kind": event.kind, "seq": event.seq}
                        )
                        self._sse_end()
                        return
                if not ring.wait_for(last_seq, heartbeat_s):
                    if ring.closed:
                        self._sse_end()
                        return
                    # Idle: heartbeat, and re-check the record in case
                    # the terminal event was evicted before we read it
                    # (possible only after a gap).
                    try:
                        state = service.store.get(job_id).state
                    except UnknownJob:  # pragma: no cover - jobs persist
                        state = "unknown"
                    if state in JobState.TERMINAL:
                        self._sse_event("end", {"state": state})
                        self._sse_end()
                        return
                    self._sse_comment("heartbeat")
        except (BrokenPipeError, ConnectionResetError):
            pass
        finally:
            hub.unwatch(job_id)

    def _stream_metrics(self) -> None:
        """``GET /v1/metrics/stream``: periodic ``metrics`` frames
        with the ``/v1/metrics`` payload (the dashboard's feed)."""
        service = self.server.service
        ring = service.hub.ring
        interval = service.config.metrics_stream_interval_s
        try:
            self._sse_begin()
            while True:
                self._sse_event("metrics", service.metrics_payload())
                ring.wait_for(_NEVER_SEQ, interval)
                if ring.closed:
                    break
            self._sse_end()
        except (BrokenPipeError, ConnectionResetError):
            pass


def make_server(
    host: str, port: int, service: Any
) -> ServiceHTTPServer:
    """Bind the API server (``port=0`` picks an ephemeral port)."""
    return ServiceHTTPServer((host, port), service)


def bound_port(server: Optional[ServiceHTTPServer]) -> Optional[int]:
    """The actually-bound port of *server* (None when not started)."""
    if server is None:
        return None
    return server.server_address[1]
