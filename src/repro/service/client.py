"""Client SDK for the repro service (stdlib ``urllib`` only).

Example::

    from repro.service.client import ServiceClient

    client = ServiceClient("http://127.0.0.1:8642")
    job = client.submit(experiment="fig1", quick=True, format="json")
    record = client.wait(job["id"], timeout=600)
    print(client.result(job["id"]))

Every HTTP error becomes a :class:`ServiceError` carrying the status
code and the server's one-line message, so callers never parse error
bodies themselves.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Optional


class ServiceError(RuntimeError):
    """An HTTP-level failure: ``status`` plus the server's message."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """Talks to one service instance at *base_url*."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Raw transport
    # ------------------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> tuple:
        """One round-trip; returns ``(status, content_type, body_bytes)``."""
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=body, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return (
                    resp.status,
                    resp.headers.get("Content-Type", ""),
                    resp.read(),
                )
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                message = json.loads(raw).get("error", raw.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                message = raw.decode("utf-8", "replace")
            raise ServiceError(exc.code, message) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(0, f"cannot reach {self.base_url}: {exc.reason}")

    def _json(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        _, _, body = self._request(method, path, payload)
        return json.loads(body)

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """``GET /v1/healthz``."""
        return self._json("GET", "/v1/healthz")

    def metrics(self) -> Dict[str, Any]:
        """``GET /v1/metrics``."""
        return self._json("GET", "/v1/metrics")

    def submit(
        self, payload: Optional[Dict[str, Any]] = None, **fields: Any
    ) -> Dict[str, Any]:
        """``POST /v1/jobs``: submit a flat job spec.

        Pass the spec as a dict or as keyword arguments
        (``submit(experiment="fig1", quick=True)``); returns the job
        status payload (its ``id`` names the job from now on).
        """
        spec = dict(payload or {})
        spec.update(fields)
        return self._json("POST", "/v1/jobs", spec)

    def submit_campaign(
        self, payload: Optional[Dict[str, Any]] = None, **fields: Any
    ) -> Dict[str, Any]:
        """``POST /v1/campaigns``: compile a scenario into jobs.

        Pass ``scenario="fig1"`` for a bundled scenario or
        ``spec={...}`` for an inline document, plus optional ``quick``
        / ``jobs`` / ``cache`` / ``format`` overrides.  Returns the
        campaign payload: the canonical-spec SHA-256, compiler notes,
        and one job record per compiled unit (wait on each
        ``unit["job"]["id"]`` as with :meth:`submit`).
        """
        body = dict(payload or {})
        body.update(fields)
        return self._json("POST", "/v1/campaigns", body)

    def status(self, job_id: str) -> Dict[str, Any]:
        """``GET /v1/jobs/{id}``."""
        return self._json("GET", f"/v1/jobs/{job_id}")

    def list_jobs(
        self, state: Optional[str] = None, limit: int = 100
    ) -> Dict[str, Any]:
        """``GET /v1/jobs`` (optionally filtered by state)."""
        query = f"?limit={limit}" + (f"&state={state}" if state else "")
        return self._json("GET", f"/v1/jobs{query}")

    def result(self, job_id: str) -> str:
        """``GET /v1/jobs/{id}/result``: the artifact text, verbatim."""
        _, _, body = self._request("GET", f"/v1/jobs/{job_id}/result")
        return body.decode("utf-8")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """``DELETE /v1/jobs/{id}``."""
        return self._json("DELETE", f"/v1/jobs/{job_id}")

    def wait(
        self,
        job_id: str,
        timeout: float = 600.0,
        poll_s: float = 0.2,
    ) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state.

        Returns the final status payload (check ``state`` — a failed
        or cancelled job is a normal return, not an exception).  Raises
        :class:`TimeoutError` when *timeout* elapses first.
        """
        deadline = time.monotonic() + timeout
        while True:
            record = self.status(job_id)
            if record["state"] in ("done", "failed", "cancelled"):
                return record
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {record['state']} after {timeout:g}s"
                )
            time.sleep(poll_s)
