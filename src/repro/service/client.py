"""Client SDK for the repro service (stdlib ``urllib`` only).

Example::

    from repro.service.client import ServiceClient

    client = ServiceClient("http://127.0.0.1:8642")
    job = client.submit(experiment="fig1", quick=True, format="json")
    record = client.wait(job["id"], timeout=600)
    print(client.result(job["id"]))

Every HTTP error becomes a :class:`ServiceError` carrying the status
code and the server's one-line message, so callers never parse error
bodies themselves.

Resilience: the client retries with capped jittered exponential
backoff (:class:`RetryPolicy`).  A ``429 Too Many Requests`` is
retried on every verb, honouring the server's ``Retry-After`` header
— queue-full rejection happens atomically before anything is
enqueued, so re-sending is always safe.  Connection-level failures
(refused, reset, timed out) are retried only for *idempotent* calls:
GETs, the lease-based fleet verbs, and submits that carry a
client-supplied ``job_id`` idempotency key.  A bare submit without a
``job_id`` is never retried on a connection error, because the first
attempt may have landed.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional


class ServiceError(RuntimeError):
    """An HTTP-level failure: ``status`` plus the server's message."""

    def __init__(
        self, status: int, message: str, retry_after: Optional[float] = None
    ) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        #: Parsed ``Retry-After`` header (seconds), when the server
        #: sent one.
        self.retry_after = retry_after


@dataclass(frozen=True)
class RetryPolicy:
    """Capped jittered exponential backoff for transient failures.

    ``attempts`` counts total tries (1 = no retries).  The *n*-th
    backoff is ``backoff_s * 2**n`` capped at ``backoff_cap_s``, with
    up to ``jitter`` fraction of itself added so a fleet of agents
    never retries in lockstep.  A server ``Retry-After`` overrides the
    computed backoff, capped at ``retry_after_cap_s``.
    """

    attempts: int = 4
    backoff_s: float = 0.2
    backoff_cap_s: float = 5.0
    jitter: float = 0.5
    retry_after_cap_s: float = 30.0

    def delay(self, attempt: int, rng: Callable[[], float]) -> float:
        """Backoff before retry number *attempt* (0-based)."""
        base = min(self.backoff_s * (2.0 ** attempt), self.backoff_cap_s)
        return base * (1.0 + self.jitter * rng())


#: Retries disabled (used by the load generator to measure the
#: server's raw accept/reject behaviour).
NO_RETRY = RetryPolicy(attempts=1)


class ServiceClient:
    """Talks to one service instance at *base_url*.

    *retry* configures transient-failure handling (pass
    :data:`NO_RETRY` to disable).  *sleep* and *rng* are injectable
    for tests.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        *,
        retry: Optional[RetryPolicy] = None,
        sleep: Callable[[float], None] = time.sleep,
        rng: Callable[[], float] = random.random,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self._sleep = sleep
        self._rng = rng

    # ------------------------------------------------------------------
    # Raw transport
    # ------------------------------------------------------------------

    def _request_once(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> tuple:
        """One round-trip; returns ``(status, content_type, body_bytes)``."""
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=body, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return (
                    resp.status,
                    resp.headers.get("Content-Type", ""),
                    resp.read(),
                )
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                message = json.loads(raw).get("error", raw.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                message = raw.decode("utf-8", "replace")
            raise ServiceError(
                exc.code, message, retry_after=_retry_after(exc)
            ) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(0, f"cannot reach {self.base_url}: {exc.reason}")

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
        *,
        idempotent: Optional[bool] = None,
    ) -> tuple:
        """Round-trip with the retry policy applied.

        429s are retried for every verb (rejection is pre-enqueue and
        atomic), honouring ``Retry-After``.  Connection-level failures
        (``status == 0`` — refused, reset, DNS, timeout) are retried
        only when *idempotent* (defaults to ``method == "GET"``).
        """
        if idempotent is None:
            idempotent = method == "GET"
        policy = self.retry
        attempt = 0
        while True:
            try:
                return self._request_once(method, path, payload)
            except ServiceError as exc:
                retriable = exc.status == 429 or (
                    exc.status == 0 and idempotent
                )
                if not retriable or attempt >= policy.attempts - 1:
                    raise
                delay = policy.delay(attempt, self._rng)
                if exc.status == 429 and exc.retry_after is not None:
                    delay = min(exc.retry_after, policy.retry_after_cap_s)
                self._sleep(delay)
                attempt += 1
            except (ConnectionError, TimeoutError) as exc:
                # urllib raises some mid-response failures raw (e.g.
                # RemoteDisconnected is a ConnectionResetError).
                if not idempotent or attempt >= policy.attempts - 1:
                    raise ServiceError(
                        0, f"cannot reach {self.base_url}: {exc}"
                    ) from exc
                self._sleep(policy.delay(attempt, self._rng))
                attempt += 1

    def _json(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
        *,
        idempotent: Optional[bool] = None,
    ) -> Dict[str, Any]:
        _, _, body = self._request(method, path, payload, idempotent=idempotent)
        return json.loads(body)

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """``GET /v1/healthz``."""
        return self._json("GET", "/v1/healthz")

    def metrics(self) -> Dict[str, Any]:
        """``GET /v1/metrics``."""
        return self._json("GET", "/v1/metrics")

    def submit(
        self,
        payload: Optional[Dict[str, Any]] = None,
        *,
        job_id: Optional[str] = None,
        **fields: Any,
    ) -> Dict[str, Any]:
        """``POST /v1/jobs``: submit a flat job spec.

        Pass the spec as a dict or as keyword arguments
        (``submit(experiment="fig1", quick=True)``); returns the job
        status payload (its ``id`` names the job from now on).

        *job_id* is an optional client-chosen idempotency key (8-64
        chars of ``[A-Za-z0-9._-]``): resubmitting the same key
        returns the original record instead of a duplicate, which also
        makes the submit safe to retry on connection errors.
        """
        spec = dict(payload or {})
        spec.update(fields)
        if job_id is not None:
            spec["job_id"] = job_id
        return self._json(
            "POST", "/v1/jobs", spec, idempotent=job_id is not None
        )

    def submit_campaign(
        self, payload: Optional[Dict[str, Any]] = None, **fields: Any
    ) -> Dict[str, Any]:
        """``POST /v1/campaigns``: compile a scenario into jobs.

        Pass ``scenario="fig1"`` for a bundled scenario or
        ``spec={...}`` for an inline document, plus optional ``quick``
        / ``jobs`` / ``cache`` / ``format`` overrides.  Returns the
        campaign payload: the canonical-spec SHA-256, compiler notes,
        and one job record per compiled unit (wait on each
        ``unit["job"]["id"]`` as with :meth:`submit`).
        """
        body = dict(payload or {})
        body.update(fields)
        return self._json("POST", "/v1/campaigns", body)

    def campaign_status(self, campaign_id: str) -> Dict[str, Any]:
        """``GET /v1/campaigns/{id}``: campaign lifecycle — per-cell
        convergence, refinement intervals, trial counters, and (once
        ``state`` is ``done``) the rendered winning-technique table."""
        return self._json("GET", f"/v1/campaigns/{campaign_id}")

    def wait_campaign(
        self,
        campaign_id: str,
        timeout: float = 600.0,
        poll_s: float = 0.2,
    ) -> Dict[str, Any]:
        """Poll :meth:`campaign_status` until ``state`` is ``done``;
        raises :class:`TimeoutError` when *timeout* elapses first."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.campaign_status(campaign_id)
            if status["state"] == "done":
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"campaign {campaign_id} still {status['state']} "
                    f"after {timeout:g}s"
                )
            time.sleep(poll_s)

    def status(self, job_id: str) -> Dict[str, Any]:
        """``GET /v1/jobs/{id}``."""
        return self._json("GET", f"/v1/jobs/{job_id}")

    def list_jobs(
        self, state: Optional[str] = None, limit: int = 100
    ) -> Dict[str, Any]:
        """``GET /v1/jobs`` (optionally filtered by state)."""
        query = f"?limit={limit}" + (f"&state={state}" if state else "")
        return self._json("GET", f"/v1/jobs{query}")

    def result(self, job_id: str) -> str:
        """``GET /v1/jobs/{id}/result``: the artifact text, verbatim."""
        _, _, body = self._request("GET", f"/v1/jobs/{job_id}/result")
        return body.decode("utf-8")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """``DELETE /v1/jobs/{id}``."""
        return self._json("DELETE", f"/v1/jobs/{job_id}")

    def iter_events(
        self,
        job_id: Optional[str] = None,
        last_event_id: Optional[int] = None,
    ) -> Iterator[Dict[str, Any]]:
        """Follow the live SSE event feed as parsed frames.

        With *job_id*, streams ``GET /v1/jobs/{id}/events`` — a
        ``snapshot`` frame, then that job's events, then an ``end``
        frame, after which the generator returns.  Without it, streams
        the global ``GET /v1/events`` feed indefinitely.

        Yields ``{"event": name, "data": payload, "id": seq_or_None}``
        dicts.  Disconnects reconnect under the client's
        :class:`RetryPolicy`, resuming from the last delivered
        sequence number (the server answers a resume past an eviction
        with a ``gap`` frame, so consumers see losses rather than
        silence); the retry budget resets whenever a frame arrives.
        *last_event_id* starts the first connection at a known
        position instead of the live edge.
        """
        path = (
            f"/v1/jobs/{job_id}/events"
            if job_id is not None
            else "/v1/events"
        )
        policy = self.retry
        attempt = 0
        cursor = last_event_id
        while True:
            headers = {"Accept": "text/event-stream"}
            if cursor is not None:
                headers["Last-Event-ID"] = str(cursor)
            request = urllib.request.Request(
                self.base_url + path, headers=headers
            )
            response = None
            try:
                response = urllib.request.urlopen(
                    request, timeout=self.timeout
                )
                event_name, event_id, data_lines = "message", None, []
                for raw in response:
                    line = raw.decode("utf-8").rstrip("\r\n")
                    if not line:
                        if data_lines:
                            frame = {
                                "event": event_name,
                                "data": json.loads("\n".join(data_lines)),
                                "id": event_id,
                            }
                            if event_id is not None:
                                cursor = event_id
                            attempt = 0
                            yield frame
                            if event_name == "end":
                                return
                        event_name, event_id, data_lines = "message", None, []
                    elif line.startswith(":"):
                        attempt = 0  # heartbeats prove liveness too
                    elif line.startswith("id:"):
                        try:
                            event_id = int(line[3:].strip())
                        except ValueError:
                            event_id = None
                    elif line.startswith("event:"):
                        event_name = line[6:].strip()
                    elif line.startswith("data:"):
                        data_lines.append(line[5:].strip())
                # Clean EOF (server wound the stream down): fall
                # through to reconnect-with-resume.
            except urllib.error.HTTPError as exc:
                raw = exc.read()
                try:
                    message = json.loads(raw).get(
                        "error", raw.decode("utf-8")
                    )
                except (json.JSONDecodeError, UnicodeDecodeError):
                    message = raw.decode("utf-8", "replace")
                if exc.code != 429:
                    raise ServiceError(exc.code, message) from exc
            except (urllib.error.URLError, ConnectionError, TimeoutError, OSError):
                pass
            finally:
                if response is not None:
                    response.close()
            if attempt >= policy.attempts - 1:
                raise ServiceError(
                    0, f"event stream to {self.base_url} lost"
                )
            self._sleep(policy.delay(attempt, self._rng))
            attempt += 1

    def wait(
        self,
        job_id: str,
        timeout: float = 600.0,
        poll_s: float = 0.2,
    ) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state.

        Returns the final status payload (check ``state`` — a failed
        or cancelled job is a normal return, not an exception).  Raises
        :class:`TimeoutError` when *timeout* elapses first.
        """
        deadline = time.monotonic() + timeout
        while True:
            record = self.status(job_id)
            if record["state"] in ("done", "failed", "cancelled"):
                return record
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {record['state']} after {timeout:g}s"
                )
            time.sleep(poll_s)

    # ------------------------------------------------------------------
    # Fleet surface (what remote agents drive)
    # ------------------------------------------------------------------
    # All of these are lease-based and therefore idempotent: a retried
    # claim hands back jobs this worker already leases, a retried
    # completion is answered "already terminal", so connection-error
    # retries are safe.

    def register_site(
        self, name: str, meta: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        """``POST /v1/sites``: register (or re-activate) a site."""
        from repro.service.protocol import PROTOCOL_VERSION

        payload = {
            "name": name,
            "meta": meta or {},
            "protocol": PROTOCOL_VERSION,
        }
        return self._json("POST", "/v1/sites", payload, idempotent=True)

    def list_sites(self) -> Dict[str, Any]:
        """``GET /v1/sites``."""
        return self._json("GET", "/v1/sites")

    def site_heartbeat(self, name: str) -> Dict[str, Any]:
        """``POST /v1/sites/{name}/heartbeat``: liveness ping; the
        response's ``drain`` flag asks the agent to wind down."""
        return self._json(
            "POST", f"/v1/sites/{name}/heartbeat", {}, idempotent=True
        )

    def drain_site(self, name: str) -> Dict[str, Any]:
        """``POST /v1/sites/{name}/drain``: stop handing the site work."""
        return self._json(
            "POST", f"/v1/sites/{name}/drain", {}, idempotent=True
        )

    def claim_jobs(
        self,
        site: str,
        worker: str,
        limit: int = 1,
        lease_s: float = 300.0,
    ) -> Dict[str, Any]:
        """``POST /v1/jobs/claim``: lease up to *limit* runnable jobs."""
        payload = {
            "site": site,
            "worker": worker,
            "limit": limit,
            "lease_s": lease_s,
        }
        return self._json("POST", "/v1/jobs/claim", payload, idempotent=True)

    def complete_jobs(
        self, worker: str, results: List[Dict[str, Any]]
    ) -> Dict[str, Any]:
        """``POST /v1/jobs/complete``: push a batch of outcomes.

        Each entry is ``{"id", "ok", "result"|"error"}``; the response
        carries per-item ``accepted`` + final ``state``.
        """
        payload = {"worker": worker, "results": results}
        return self._json(
            "POST", "/v1/jobs/complete", payload, idempotent=True
        )

    def renew_jobs(
        self, worker: str, ids: List[str], lease_s: float = 300.0
    ) -> Dict[str, Any]:
        """``POST /v1/jobs/renew``: batch lease renewal (heartbeat)."""
        payload = {"worker": worker, "ids": ids, "lease_s": lease_s}
        return self._json("POST", "/v1/jobs/renew", payload, idempotent=True)

    def release_jobs(self, worker: str, ids: List[str]) -> Dict[str, Any]:
        """``POST /v1/jobs/release``: return unstarted claims to the
        queue (the agent drain path)."""
        payload = {"worker": worker, "ids": ids}
        return self._json(
            "POST", "/v1/jobs/release", payload, idempotent=True
        )

    def post_site_events(
        self, site: str, events: List[Dict[str, Any]]
    ) -> Dict[str, Any]:
        """``POST /v1/sites/{name}/events``: forward a batch of live
        telemetry events.  Deliberately *not* retried on connection
        errors — the feed is best-effort, and a dropped batch beats a
        duplicated one (the forwarder counts the loss)."""
        payload = {"events": events}
        return self._json(
            "POST", f"/v1/sites/{site}/events", payload, idempotent=False
        )


def _retry_after(exc: urllib.error.HTTPError) -> Optional[float]:
    """Parse a ``Retry-After`` header (seconds form only)."""
    value = exc.headers.get("Retry-After") if exc.headers else None
    if value is None:
        return None
    try:
        return max(0.0, float(value))
    except ValueError:
        return None
