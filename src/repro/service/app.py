"""Composition root: store + worker pool + HTTP server.

:class:`ReproService` wires the durable :class:`JobStore`, the
:class:`WorkerPool`, and the JSON API into one process with a graceful
lifecycle:

- :meth:`ReproService.start` opens the store, starts the workers, and
  binds the API (``port=0`` picks an ephemeral port — tests and the CI
  smoke job use this);
- :meth:`ReproService.shutdown` stops accepting work, drains the jobs
  already running, requeues claimed-but-unstarted jobs, and closes the
  store — no accepted job is ever lost;
- :meth:`ReproService.serve_forever` additionally installs SIGTERM /
  SIGINT handlers that trigger that same graceful shutdown (what
  ``repro serve`` runs).
"""

from __future__ import annotations

import signal
import sys
import threading
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.campaigns.controller import (
    AdaptiveConfig,
    Campaign,
    CampaignRegistry,
)
from repro.experiments.entry import StudyRequest
from repro.experiments.parallel import ExecutorMetrics, ResultCache
from repro.obs import counters as obs_counters
from repro.service import api as service_api
from repro.service import protocol
from repro.service.jobs import JobSpec, ValidationError
from repro.service.store import (
    DepPolicy,
    DuplicateJob,
    JobRecord,
    JobState,
    UnknownJob,
    create_store,
)
from repro.service.worker import WorkerPool
from repro.telemetry import TelemetryHub, TelemetryStore


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one service process (all have sane defaults)."""

    host: str = "127.0.0.1"
    port: int = 8642
    workers: int = 1
    #: SQLite path; ``":memory:"`` gives an ephemeral store.
    db_path: str = "results/service.db"
    #: Store backend URL (``sqlite://results/service.db``).  When set
    #: it wins over ``db_path``; a bare path selects SQLite.
    store_url: Optional[str] = None
    #: Bound on *queued* jobs; beyond it submissions get 429.
    queue_limit: int = 256
    #: Lease duration; a crashed worker's job is re-claimable this
    #: long after its last heartbeat.
    lease_s: float = 300.0
    #: Leases a job may burn before it is marked failed.
    max_attempts: int = 3
    #: Result-cache directory (None = the executor's default,
    #: ``results/.cache/`` or ``REPRO_CACHE_DIR``).
    cache_dir: Optional[str] = None
    #: Prune the result cache down to this many MiB on an interval
    #: (None disables pruning).
    cache_max_mb: Optional[float] = None
    #: Seconds between cache-prune checks.
    cache_prune_interval_s: float = 300.0
    #: Scheduler poll interval (small for tests, default is fine).
    poll_interval_s: float = 0.05
    #: Log HTTP requests to stderr.
    log_requests: bool = False
    #: Capacity of the live telemetry ring (events retained for SSE
    #: resume; older ones are evicted and counted as dropped).
    telemetry_ring: int = 2048
    #: Idle seconds between SSE heartbeat comments on event streams.
    sse_heartbeat_s: float = 15.0
    #: Seconds between ``GET /v1/metrics/stream`` snapshots.
    metrics_stream_interval_s: float = 2.0


class ReproService:
    """A running simulation service (see module docstring)."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.metrics = ExecutorMetrics()
        self.hub = TelemetryHub(capacity=self.config.telemetry_ring)
        # The telemetry decorator wraps the store *before* anything
        # else sees it, so both the in-process pool and the fleet API
        # narrate every lifecycle transition into the one ring.
        self.store = TelemetryStore(
            create_store(
                self.config.store_url or self.config.db_path,
                queue_limit=self.config.queue_limit,
                max_attempts=self.config.max_attempts,
            ),
            self.hub,
        )
        self.cache = ResultCache(directory=self.config.cache_dir, enabled=True)
        prune_max_bytes = (
            None
            if self.config.cache_max_mb is None
            else int(self.config.cache_max_mb * 1024 * 1024)
        )
        self.pool = WorkerPool(
            self.store,
            workers=self.config.workers,
            lease_s=self.config.lease_s,
            poll_interval_s=self.config.poll_interval_s,
            metrics=self.metrics,
            cache=self.cache,
            prune_max_bytes=prune_max_bytes,
            prune_interval_s=self.config.cache_prune_interval_s,
            telemetry=self.hub,
        )
        self.campaigns = CampaignRegistry()
        self._server: Optional[service_api.ServiceHTTPServer] = None
        self._server_thread: Optional[threading.Thread] = None
        self._controller_thread: Optional[threading.Thread] = None
        self._controller_stop = threading.Event()
        self._started_monotonic: Optional[float] = None
        self._shutdown_lock = threading.Lock()
        self._shut_down = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start workers and bind the HTTP API (non-blocking)."""
        if self._server is not None:
            raise RuntimeError("service already started")
        self._started_monotonic = time.monotonic()
        self.pool.start()
        self._server = service_api.make_server(
            self.config.host, self.config.port, self
        )
        self._server_thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-http",
            daemon=True,
        )
        self._server_thread.start()
        self._controller_thread = threading.Thread(
            target=self._controller_loop,
            name="repro-campaigns",
            daemon=True,
        )
        self._controller_thread.start()

    def shutdown(self, timeout: Optional[float] = 30.0) -> None:
        """Graceful stop: close the listener, drain running jobs,
        requeue unstarted claims, close the store.  Idempotent."""
        with self._shutdown_lock:
            if self._shut_down:
                return
            self._shut_down = True
        self._controller_stop.set()
        if self._controller_thread is not None:
            self._controller_thread.join(timeout=timeout)
        # Close the telemetry ring first: every blocked SSE stream
        # wakes, winds down, and releases its connection before the
        # listener goes away.
        self.hub.close()
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
        if self._server_thread is not None:
            self._server_thread.join(timeout=timeout)
        self.pool.shutdown(timeout=timeout)
        self.store.close()

    def serve_forever(self, install_signal_handlers: bool = True) -> None:
        """Start (if needed) and block until SIGTERM/SIGINT.

        The signal handlers run :meth:`shutdown` — running cells are
        drained, claimed-but-unstarted jobs go back to the queue, and
        the queue itself is durable in SQLite, so a ``kill -TERM``
        never loses an accepted job.
        """
        if self._server is None:
            self.start()
        stop = threading.Event()
        if install_signal_handlers:

            def _handle(signum: int, frame: Any) -> None:
                stop.set()

            signal.signal(signal.SIGTERM, _handle)
            signal.signal(signal.SIGINT, _handle)
        try:
            while not stop.wait(0.2):
                pass
        finally:
            self.shutdown()

    @property
    def port(self) -> Optional[int]:
        """The bound API port (resolves ``port=0`` to the real one)."""
        return service_api.bound_port(self._server)

    @property
    def url(self) -> str:
        """Base URL of the running API."""
        return f"http://{self.config.host}:{self.port}"

    # ------------------------------------------------------------------
    # Operations used by the API handler
    # ------------------------------------------------------------------

    def submit(self, payload: Any) -> JobRecord:
        """Validate *payload* and enqueue it; returns the new record.

        An optional ``job_id`` field is a client idempotency key:
        resubmitting the same id returns the original record instead
        of enqueueing a duplicate, which makes the submit safe to
        retry over a flaky network.

        Optional ``depends_on`` (a list of parent job ids) holds the
        job in the ``blocked`` state until every parent is terminal;
        ``dep_policy`` chooses what a failed/cancelled parent does to
        it (``cascade``, the default, or ``run``).

        Raises :class:`repro.service.jobs.ValidationError` (HTTP 400)
        or :class:`repro.service.store.QueueFull` (HTTP 429).
        """
        requested_id = None
        depends_on = None
        dep_policy = None
        if isinstance(payload, dict):
            payload = dict(payload)
            if "job_id" in payload:
                requested_id = protocol.parse_job_id(payload.pop("job_id"))
            if "depends_on" in payload:
                depends_on = protocol.parse_depends_on(
                    payload.pop("depends_on")
                )
            dep_policy = protocol.parse_dep_policy(
                payload.pop("dep_policy", None)
            )
        spec = JobSpec.from_payload(payload)
        try:
            job_id = self.store.submit(
                spec.to_payload(),
                job_id=requested_id,
                depends_on=depends_on,
                dep_policy=dep_policy or DepPolicy.CASCADE,
            )
        except DuplicateJob as exc:
            return self.store.get(exc.job_id)
        except UnknownJob as exc:
            raise ValidationError(
                f"unknown dependency job {exc.args[0]!r}"
            ) from None
        obs_counters.increment("service.jobs_accepted")
        return self.store.get(job_id)

    def submit_campaign(self, payload: Any) -> Dict[str, Any]:
        """``POST /v1/campaigns``: compile a scenario and enqueue its
        units as ordinary jobs.

        The payload names a bundled scenario (``{"scenario": "fig1"}``)
        or carries an inline document (``{"spec": {...}}``), plus
        optional ``quick`` / ``jobs`` / ``cache`` / ``format``
        overrides.  Compilation runs here — schema violations and
        unreadable trace files are 400s with the field-qualified
        one-line message, before anything is enqueued.  The response
        carries a campaign id (pollable at ``GET /v1/campaigns/{id}``),
        the scenario's canonical-spec SHA-256, and one job record per
        compiled unit.

        An ``adaptive`` field turns the campaign over to the
        server-side controller: ``true`` (or an object overriding
        ``max_trials`` / ``batch_size`` / ``ci_rel_threshold`` /
        ``refine_depth``) submits every study cell as a
        dependency-chained batch sequence and early-stops / refines
        per cell; ``false`` forces a plain exhaustive campaign even
        when the spec carries an ``[adaptive]`` section; omitted, the
        spec's own ``[adaptive]`` section decides.
        """
        from dataclasses import replace as dc_replace

        from repro.experiments.entry import FORMATS
        from repro.scenarios.compiler import compile_scenario
        from repro.scenarios.errors import ScenarioError
        from repro.scenarios.library import load_named
        from repro.scenarios.schema import parse_scenario

        if not isinstance(payload, dict):
            raise ValidationError("campaign payload must be a JSON object")
        data = dict(payload)
        name = data.pop("scenario", None)
        inline = data.pop("spec", None)
        quick = data.pop("quick", False)
        jobs = data.pop("jobs", 1)
        cache = data.pop("cache", True)
        fmt = data.pop("format", None)
        adaptive_field = data.pop("adaptive", None)
        if data:
            raise ValidationError(
                f"unknown campaign field {sorted(data)[0]!r}"
            )
        if (name is None) == (inline is None):
            raise ValidationError(
                "provide exactly one of 'scenario' (a bundled name) or "
                "'spec' (an inline scenario document)"
            )
        if name is not None and not isinstance(name, str):
            raise ValidationError("field 'scenario' must be a string")
        if not isinstance(quick, bool):
            raise ValidationError("field 'quick' must be a boolean")
        if fmt is not None and fmt not in FORMATS:
            raise ValidationError(
                f"unknown format {fmt!r} (choose from {', '.join(FORMATS)})"
            )
        if adaptive_field is not None and not isinstance(
            adaptive_field, (bool, dict)
        ):
            raise ValidationError(
                "field 'adaptive' must be a boolean or an object"
            )
        try:
            if name is not None:
                spec = load_named(name)
            else:
                spec = parse_scenario(inline, source="<request>")
        except ScenarioError as exc:
            raise ValidationError(str(exc)) from None

        adaptive_cfg: Optional[AdaptiveConfig] = None
        if adaptive_field is not False:
            wants_adaptive = (
                adaptive_field is not None or spec.adaptive is not None
            )
            if wants_adaptive:
                defaults = AdaptiveConfig.from_spec(spec.adaptive)
                adaptive_cfg = (
                    AdaptiveConfig.from_payload(adaptive_field, defaults)
                    if isinstance(adaptive_field, dict)
                    else defaults
                )
        if adaptive_cfg is not None:
            if quick:
                raise ValidationError(
                    "'quick' cannot combine with an adaptive campaign "
                    "(the controller manages trial budgets itself)"
                )
            if fmt is not None:
                raise ValidationError(
                    "'format' cannot combine with an adaptive campaign "
                    "(batch results are always JSON; render the table "
                    "from campaign status)"
                )
            return self._submit_adaptive_campaign(
                spec, adaptive_cfg, jobs=jobs, cache=cache
            )

        try:
            campaign = compile_scenario(spec, quick=quick)
        except ScenarioError as exc:
            raise ValidationError(str(exc)) from None
        campaign_id = uuid.uuid4().hex
        units = []
        static_units = []
        for unit in campaign.units:
            request = (
                unit.request
                if fmt is None
                else dc_replace(unit.request, format=fmt)
            )
            job_id = self._submit_request(
                request, jobs=jobs, cache=cache
            )
            static_units.append({"label": unit.label, "job_id": job_id})
            units.append(
                {
                    "label": unit.label,
                    "job": self.store.get(job_id).to_payload(),
                }
            )
        self.campaigns.add(
            Campaign(
                campaign_id,
                campaign.spec,
                campaign.sha256,
                campaign.notes,
                adaptive=None,
                static_units=static_units,
            )
        )
        obs_counters.increment("service.campaigns_accepted")
        self.hub.publish(
            "campaign.submitted",
            campaign_id=campaign_id,
            data={
                "scenario": campaign.spec.scenario.name,
                "adaptive": False,
                "units": len(units),
            },
        )
        return {
            "id": campaign_id,
            "scenario": campaign.spec.scenario.name,
            "spec_sha256": campaign.sha256,
            "notes": list(campaign.notes),
            "units": units,
        }

    def _submit_adaptive_campaign(
        self,
        spec: Any,
        cfg: AdaptiveConfig,
        jobs: int = 1,
        cache: bool = True,
    ) -> Dict[str, Any]:
        """Plan and enqueue one adaptive campaign: the base wave of
        dependency-chained batch jobs, rolled back wholesale when the
        queue cannot take it."""
        from repro.scenarios.compiler import scenario_analytic_reason
        from repro.scenarios.errors import ScenarioError
        from repro.scenarios.spec import spec_sha256

        if spec.failures.regime == "trace":
            raise ValidationError(
                "adaptive campaigns cannot compose with trace replay "
                "(replay forces trials = 1; there is nothing to adapt)"
            )
        notes = []
        reason = scenario_analytic_reason(spec)
        if reason is not None:
            notes.append(f"analytic model bypassed: {reason}")
        notes.append(
            f"adaptive campaign: up to {cfg.max_trials} trials per cell "
            f"in batches of {cfg.batch_size}, CI threshold "
            f"{cfg.ci_rel_threshold:g}, refine depth {cfg.refine_depth}"
        )
        campaign_id = uuid.uuid4().hex
        try:
            campaign = Campaign(
                campaign_id,
                spec,
                spec_sha256(spec),
                notes,
                adaptive=cfg,
            )
        except ScenarioError as exc:
            raise ValidationError(str(exc)) from None

        def submit(request: StudyRequest, parents: Optional[List[str]]) -> str:
            return self._submit_request(
                request, jobs=jobs, cache=cache, depends_on=parents
            )

        try:
            campaign.submit_base_wave(submit)
        except Exception:
            for job_id in campaign.all_job_ids():
                try:
                    self.store.cancel(job_id)
                except KeyError:
                    pass
            raise
        self.campaigns.add(campaign)
        obs_counters.increment("service.campaigns_accepted")
        obs_counters.increment("service.campaigns_adaptive")
        self.hub.publish(
            "campaign.submitted",
            campaign_id=campaign_id,
            data={
                "scenario": spec.scenario.name,
                "adaptive": True,
                "cells": len(campaign.cells),
            },
        )
        return {
            "id": campaign_id,
            "scenario": spec.scenario.name,
            "spec_sha256": campaign.sha256,
            "notes": list(campaign.notes),
            "adaptive": cfg.to_payload(),
            "units": [],
            "cells": len(campaign.cells),
            "jobs": len(campaign.all_job_ids()),
        }

    def _submit_request(
        self,
        request: StudyRequest,
        jobs: int = 1,
        cache: bool = True,
        depends_on: Optional[List[str]] = None,
    ) -> str:
        """Enqueue one study request as a job (optionally blocked on
        *depends_on* parents) and return its id."""
        job_payload = request.to_payload()
        job_payload["jobs"] = jobs
        job_payload["cache"] = cache
        job_spec = JobSpec.from_payload(job_payload)
        job_id = self.store.submit(
            job_spec.to_payload(), depends_on=depends_on
        )
        obs_counters.increment("service.jobs_accepted")
        return job_id

    def campaign_status(self, campaign_id: str) -> Dict[str, Any]:
        """``GET /v1/campaigns/{id}`` body; raises
        :class:`repro.campaigns.controller.UnknownCampaign` (404)."""
        return self.campaigns.status(campaign_id, self.store)

    def _controller_loop(self) -> None:
        """The adaptive-campaign controller thread: one
        :meth:`CampaignRegistry.step_all` tick per poll interval."""

        def submit(request: StudyRequest, parents: Optional[List[str]]) -> str:
            return self._submit_request(request, depends_on=parents)

        while not self._controller_stop.wait(self.config.poll_interval_s):
            if not self.campaigns.pending():
                continue
            try:
                self.campaigns.step_all(
                    self.store, submit, notify=self.hub.campaign_notify
                )
            except Exception as exc:  # pragma: no cover - defensive
                print(f"[campaigns] controller tick failed: {exc}", file=sys.stderr)

    def cancel(self, job_id: str) -> JobRecord:
        """Cancel *job_id* (see :meth:`JobStore.cancel`)."""
        record = self.store.cancel(job_id)
        if record.state == "cancelled":
            obs_counters.increment("service.jobs_cancelled")
        return record

    # ------------------------------------------------------------------
    # Fleet operations (sites + batch claim/complete, used by agents)
    # ------------------------------------------------------------------

    def register_site(self, payload: Any) -> Dict[str, Any]:
        """``POST /v1/sites``: register (or re-activate) an agent site."""
        registration = protocol.parse_site_registration(payload)
        record = self.store.register_site(registration.name, registration.meta)
        obs_counters.increment("service.sites_registered")
        return record.to_payload()

    def heartbeat_site(self, name: str) -> Dict[str, Any]:
        """``POST /v1/sites/{name}/heartbeat``: liveness ping; the
        response tells the agent whether the site is draining."""
        record = self.store.heartbeat_site(name)
        return {
            "site": record.to_payload(),
            "drain": record.state == "draining",
        }

    def drain_site(self, name: str) -> Dict[str, Any]:
        """``POST /v1/sites/{name}/drain``: stop handing this site
        work; its agents finish in-flight jobs and exit."""
        record = self.store.drain_site(name)
        return record.to_payload()

    def sites_payload(self) -> Dict[str, Any]:
        """``GET /v1/sites`` body."""
        return {
            "sites": [record.to_payload() for record in self.store.list_sites()]
        }

    def claim_jobs(self, payload: Any) -> Dict[str, Any]:
        """``POST /v1/jobs/claim``: lease a batch of runnable jobs.

        A claim doubles as a site heartbeat.  A draining site gets an
        empty batch plus ``draining: true`` so its agents wind down.
        """
        request = protocol.parse_claim_request(payload)
        site = self.store.heartbeat_site(request.site)
        if site.state == "draining":
            return {"jobs": [], "draining": True}
        batch = self.store.claim_batch(
            request.worker,
            request.lease_s,
            limit=request.limit,
            site=request.site,
        )
        if batch:
            obs_counters.increment("service.jobs_claimed_remote", len(batch))
        return {
            "jobs": [record.to_payload() for record in batch],
            # The subset of this batch that SSE consumers are watching:
            # the agent forwards live simulation events for exactly
            # these (everything else keeps the unobserved fast path).
            "watched": [
                record.id
                for record in batch
                if self.hub.is_watched(record.id)
            ],
            "draining": False,
        }

    def ingest_site_events(self, name: str, payload: Any) -> Dict[str, Any]:
        """``POST /v1/sites/{name}/events``: accept a batch of events
        forwarded by a remote agent into the telemetry ring.

        The push doubles as a site heartbeat (an agent shipping events
        is alive); an unknown site is a 404, a malformed batch a 400.
        """
        events = protocol.parse_site_events(payload)
        self.store.heartbeat_site(name)
        accepted = self.hub.ingest(name, events)
        if accepted:
            obs_counters.increment("service.events_ingested", accepted)
        return {"accepted": accepted}

    def complete_jobs(self, payload: Any) -> Dict[str, Any]:
        """``POST /v1/jobs/complete``: push a batch of job outcomes.

        Lease-holder-only and idempotent per item: a push from a
        worker that lost its lease (or retried a push that already
        landed) is answered ``accepted: false`` with the job's actual
        terminal state, never an error — so stale or duplicate agents
        stay harmless.
        """
        worker, items = protocol.parse_complete_request(payload)
        results = []
        for item in items:
            try:
                if item.ok:
                    accepted = self.store.complete(
                        item.job_id, worker, item.result
                    )
                else:
                    accepted = self.store.fail(item.job_id, worker, item.error)
                state = self.store.get(item.job_id).state
            except KeyError:
                accepted, state = False, "unknown"
            if accepted:
                if not item.ok:
                    obs_counters.increment("service.jobs_failed")
                elif state == JobState.CANCELLED:
                    obs_counters.increment("service.jobs_cancelled")
                else:
                    obs_counters.increment("service.jobs_completed")
                if item.ok and item.counters:
                    # Fold the remote worker's grid cost/carbon deltas
                    # into the fleet-wide totals.  Only the grid.*
                    # namespace is accepted — an agent cannot inflate
                    # arbitrary service counters — and only on the
                    # first accepted push (idempotence comes free from
                    # the lease-holder-only completion above).
                    for key, n in item.counters.items():
                        if key.startswith("grid."):
                            obs_counters.increment(key, n)
            results.append(
                {"id": item.job_id, "accepted": accepted, "state": state}
            )
        return {"results": results}

    def renew_jobs(self, payload: Any) -> Dict[str, Any]:
        """``POST /v1/jobs/renew``: batch lease renewal (heartbeat)."""
        worker, ids, lease_s = protocol.parse_renew_request(payload)
        return {
            "renewed": [
                {"id": job_id, "ok": self.store.renew(job_id, worker, lease_s)}
                for job_id in ids
            ]
        }

    def release_jobs(self, payload: Any) -> Dict[str, Any]:
        """``POST /v1/jobs/release``: return claimed-but-unstarted
        jobs to the queue (the agent drain path)."""
        worker, ids = protocol.parse_release_request(payload)
        released = []
        for job_id in ids:
            try:
                ok = self.store.release(job_id, worker)
            except KeyError:
                ok = False
            released.append({"id": job_id, "ok": ok})
        return {"released": released}

    def health_payload(self) -> Dict[str, Any]:
        """``GET /v1/healthz`` body."""
        return {
            "status": "ok",
            "version": _package_version(),
            "workers": self.config.workers,
            "protocol": protocol.PROTOCOL_VERSION,
        }

    def metrics_payload(self) -> Dict[str, Any]:
        """``GET /v1/metrics`` body: queue depth, job counts, cache
        hit rate, and the full :mod:`repro.obs` counter snapshot."""
        counts = self.store.counts()
        counters = obs_counters.snapshot()
        uptime = (
            time.monotonic() - self._started_monotonic
            if self._started_monotonic is not None
            else 0.0
        )
        return {
            "queue": {
                "depth": counts.get("queued", 0),
                "limit": self.config.queue_limit,
                "running": counts.get("running", 0),
            },
            "jobs": {
                "by_state": counts,
                "accepted": counters.get("service.jobs_accepted", 0),
                "completed": counters.get("service.jobs_completed", 0),
                "failed": counters.get("service.jobs_failed", 0),
                "cancelled": counters.get("service.jobs_cancelled", 0),
            },
            "cache": {
                "hits": self.metrics.cache_hits,
                "computed": self.metrics.cells_computed,
                "hit_rate": self.metrics.hit_rate,
            },
            "executor": {
                "cells_done": self.metrics.cells_done,
                "trials_done": self.metrics.trials_done,
                "trials_per_sec": self.metrics.trials_per_sec,
                "wall_s": self.metrics.wall_s,
            },
            "grid": {
                # Fleet-wide cumulative grid accounting, folded from
                # every grid-scenario cell this control plane has run
                # or accepted from an agent (integer micro-USD /
                # milligram / joule counters rendered in SI units).
                "cost_usd": counters.get("grid.cost_microusd", 0) / 1e6,
                "carbon_g": counters.get("grid.carbon_mg", 0) / 1e3,
                "energy_kwh": counters.get("grid.energy_j", 0) / 3.6e6,
                "cells_accounted": counters.get("grid.cells_accounted", 0),
            },
            "sites": self._sites_metrics(),
            "campaigns": self.campaigns.summary(),
            "telemetry": self.hub.stats(),
            "counters": counters,
            "uptime_s": uptime,
        }

    def _sites_metrics(self) -> Dict[str, Dict[str, Any]]:
        """Per-site fleet health: the job ledger of every site that
        ever claimed work, joined with registration state and the age
        of the last heartbeat."""
        stats = self.store.site_stats()
        now = self.store.clock()
        sites: Dict[str, Dict[str, Any]] = {}
        for record in self.store.list_sites():
            ledger = stats.get(
                record.name,
                {"completed": 0, "failed": 0, "inflight": 0, "cancelled": 0},
            )
            sites[record.name] = {
                **ledger,
                "state": record.state,
                "last_heartbeat_age_s": max(0.0, now - record.last_heartbeat),
            }
        for name, ledger in stats.items():
            sites.setdefault(name, dict(ledger))
        return sites

    def log_http(self, client: str, message: str) -> None:
        """HTTP request log hook (stderr when enabled)."""
        if self.config.log_requests:
            print(f"[http {client}] {message}", file=sys.stderr)


def _package_version() -> str:
    """The installed ``repro`` version string."""
    from repro import __version__

    return __version__


def default_db_path() -> Path:
    """The default on-disk store location, creating its directory."""
    path = Path(ServiceConfig.db_path)
    path.parent.mkdir(parents=True, exist_ok=True)
    return path
