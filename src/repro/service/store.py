"""The job-store interface and backend factory.

The service's control plane owns a durable queue of jobs moving
through ``queued -> running -> done/failed/cancelled``.  This module
defines the *contract* of that queue — :class:`JobStore`, an abstract
base class — plus the plain-data records, the store exceptions, and a
URL-based factory so backends can be swapped without touching the
service (``--store sqlite://results/service.db``).

The contract every backend must honour (the SQLite reference
implementation lives in :mod:`repro.service.store_sqlite`):

- **Atomic submission** — :meth:`JobStore.submit` either enqueues the
  whole job or raises (:class:`QueueFull` at the depth bound,
  :class:`DuplicateJob` on an id collision); nothing partial.
- **Atomic claims** — :meth:`JobStore.claim_batch` selects and leases
  up to *limit* runnable jobs inside ONE transaction, so two workers
  (threads, processes, or hosts) can never run the same job.
- **Lease timeouts** — a claim holds a lease; a worker that dies
  simply stops renewing, and once the lease expires the job is
  claimable again.  A job that burns ``max_attempts`` leases is marked
  failed rather than looping forever.
- **Lease-holder-only completion** — :meth:`JobStore.complete` /
  :meth:`JobStore.fail` succeed only for the current lease holder, so
  a stale or resurrected worker can never clobber a re-run's result.
- **Dependencies** — a job submitted with ``depends_on`` parents sits
  in ``blocked`` (never claimable) until every parent is terminal;
  release happens atomically inside the transaction that finished the
  last parent, and failed/cancelled parents cascade per
  :class:`DepPolicy`.
- **Sites** — remote worker agents register a named *site*; the store
  tracks its state (``active``/``draining``), last heartbeat, and the
  per-site job ledger that feeds ``/v1/metrics``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple


class QueueFull(RuntimeError):
    """Submission rejected: the queue is at its depth bound (the HTTP
    API maps this to ``429 Too Many Requests``)."""


class UnknownJob(KeyError):
    """No job with the requested id exists."""


class DuplicateJob(RuntimeError):
    """A submission reused an existing job id (the service turns this
    into an idempotent return of the original record)."""

    def __init__(self, job_id: str) -> None:
        super().__init__(f"job id {job_id!r} already exists")
        self.job_id = job_id


class UnknownSite(KeyError):
    """No registered site with the requested name exists."""


class JobState:
    """The six job states (plain strings, stored verbatim)."""

    QUEUED = "queued"
    BLOCKED = "blocked"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    #: States a job can still leave.
    ACTIVE = (QUEUED, BLOCKED, RUNNING)
    #: States a job never leaves.
    TERMINAL = (DONE, FAILED, CANCELLED)
    ALL = (QUEUED, BLOCKED, RUNNING, DONE, FAILED, CANCELLED)


class DepPolicy:
    """How a dependent job reacts to a parent that fails or is
    cancelled (its ``dep_policy`` field).

    ``CASCADE`` (the default) propagates the bad outcome: the child is
    failed (or cancelled) as soon as any parent fails (or is
    cancelled), recursively.  ``RUN`` releases the child once every
    parent is merely *terminal*, whatever the outcome — for cleanup or
    aggregation steps that must run regardless.
    """

    CASCADE = "cascade"
    RUN = "run"
    ALL = (CASCADE, RUN)


class SiteState:
    """States of a registered worker site."""

    ACTIVE = "active"
    DRAINING = "draining"
    ALL = (ACTIVE, DRAINING)


@dataclass(frozen=True)
class JobRecord:
    """One row of the store, as plain data."""

    id: str
    spec: Dict[str, Any]
    state: str
    created_at: float
    started_at: Optional[float]
    finished_at: Optional[float]
    attempts: int
    worker: Optional[str]
    lease_expires_at: Optional[float]
    cancel_requested: bool
    result: Optional[str]
    error: Optional[str]
    site: Optional[str] = None
    #: Parent job ids this job waits on (empty for independent jobs).
    depends_on: Tuple[str, ...] = ()
    #: Reaction to a failed/cancelled parent (:class:`DepPolicy`).
    dep_policy: str = DepPolicy.CASCADE

    def to_payload(self) -> Dict[str, Any]:
        """JSON-safe status dict (what ``GET /v1/jobs/{id}`` and the
        claim endpoint return; the result body itself is served by the
        ``/result`` route).  Dependency fields appear only on jobs that
        have them, so independent jobs' payloads are unchanged."""
        payload = {
            "id": self.id,
            "spec": self.spec,
            "state": self.state,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "attempts": self.attempts,
            "worker": self.worker,
            "lease_expires_at": self.lease_expires_at,
            "cancel_requested": self.cancel_requested,
            "error": self.error,
            "site": self.site,
        }
        if self.depends_on:
            payload["depends_on"] = list(self.depends_on)
            payload["dep_policy"] = self.dep_policy
        return payload

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "JobRecord":
        """Rebuild a record from :meth:`to_payload` output (what a
        remote agent receives from the claim endpoint; the result body
        is never carried)."""
        return cls(
            id=payload["id"],
            spec=payload["spec"],
            state=payload["state"],
            created_at=payload["created_at"],
            started_at=payload.get("started_at"),
            finished_at=payload.get("finished_at"),
            attempts=payload.get("attempts", 0),
            worker=payload.get("worker"),
            lease_expires_at=payload.get("lease_expires_at"),
            cancel_requested=bool(payload.get("cancel_requested", False)),
            result=None,
            error=payload.get("error"),
            site=payload.get("site"),
            depends_on=tuple(payload.get("depends_on", ())),
            dep_policy=payload.get("dep_policy", DepPolicy.CASCADE),
        )


@dataclass(frozen=True)
class SiteRecord:
    """One registered worker site."""

    name: str
    state: str
    registered_at: float
    last_heartbeat: float
    meta: Dict[str, Any] = field(default_factory=dict)

    def to_payload(self) -> Dict[str, Any]:
        """JSON-safe site dict (what ``GET /v1/sites`` returns)."""
        return {
            "name": self.name,
            "state": self.state,
            "registered_at": self.registered_at,
            "last_heartbeat": self.last_heartbeat,
            "meta": self.meta,
        }


class JobStore(abc.ABC):
    """Abstract durable job queue (see the module docstring for the
    semantics every backend must honour).

    Concrete backends are obtained through :func:`create_store`; the
    service never instantiates one directly.
    """

    #: Bound on *queued* jobs (running/finished don't count).
    queue_limit: int
    #: Leases a job may burn before it is marked failed.
    max_attempts: int
    #: Injectable time source (tests advance it without sleeping).
    clock: Callable[[], float]

    # -- lifecycle -----------------------------------------------------

    @abc.abstractmethod
    def close(self) -> None:
        """Release backend resources (idempotent)."""

    # -- submission / inspection ---------------------------------------

    @abc.abstractmethod
    def submit(
        self,
        spec: Dict[str, Any],
        job_id: Optional[str] = None,
        depends_on: Optional[Sequence[str]] = None,
        dep_policy: str = DepPolicy.CASCADE,
    ) -> str:
        """Enqueue *spec*; returns the job id.  Raises
        :class:`QueueFull` at the depth bound and :class:`DuplicateJob`
        when *job_id* is already taken.

        *depends_on* names parent jobs that must reach a terminal state
        first: the new job starts ``blocked`` (or ``queued`` directly
        when every parent is already terminal) and is released
        atomically, inside the same transaction that finishes the last
        parent.  A parent that fails or is cancelled propagates per
        *dep_policy* (:class:`DepPolicy`).  Unknown parent ids raise
        :class:`UnknownJob` — nothing partial is enqueued."""

    @abc.abstractmethod
    def get(self, job_id: str) -> JobRecord:
        """The job with *job_id*; raises :class:`UnknownJob` if absent."""

    @abc.abstractmethod
    def list_jobs(
        self, state: Optional[str] = None, limit: int = 100
    ) -> List[JobRecord]:
        """Most-recent-first listing, optionally filtered by state."""

    @abc.abstractmethod
    def counts(self) -> Dict[str, int]:
        """Job count per state (zero-filled for absent states)."""

    @abc.abstractmethod
    def queue_depth(self) -> int:
        """Number of jobs currently waiting to be claimed."""

    # -- claiming and completion (the worker protocol) -----------------

    @abc.abstractmethod
    def claim_batch(
        self,
        worker: str,
        lease_s: float,
        limit: int,
        site: Optional[str] = None,
    ) -> List[JobRecord]:
        """Atomically lease up to *limit* runnable jobs to *worker*.

        Runnable means: expired-lease ``running`` jobs (crash recovery
        — oldest first), then ``queued`` jobs in submission order.  An
        expired job that already burned ``max_attempts`` leases is
        marked failed instead of being handed out again.  The whole
        batch is ONE transaction: concurrent claimers can never
        overlap.  *site* is recorded on the claimed rows for the
        per-site metrics breakdown."""

    def claim(
        self, worker: str, lease_s: float, site: Optional[str] = None
    ) -> Optional[JobRecord]:
        """Single-job convenience over :meth:`claim_batch`."""
        batch = self.claim_batch(worker, lease_s, limit=1, site=site)
        return batch[0] if batch else None

    @abc.abstractmethod
    def renew(self, job_id: str, worker: str, lease_s: float) -> bool:
        """Extend *worker*'s lease on a running job (heartbeat).
        Returns False when the job is no longer leased to *worker*."""

    @abc.abstractmethod
    def complete(self, job_id: str, worker: str, result: str) -> bool:
        """Record a successful result from the current lease holder
        (False otherwise — the stale worker's result is discarded).  A
        completion racing a cancellation lands ``cancelled`` with the
        result attached."""

    @abc.abstractmethod
    def fail(self, job_id: str, worker: str, error: str) -> bool:
        """Record a failed execution from the current lease holder."""

    @abc.abstractmethod
    def release(self, job_id: str, worker: str) -> bool:
        """Return a claimed-but-unstarted job to the queue (shutdown
        path); the attempt is refunded so a drain/restart cycle never
        pushes a job toward its attempts bound."""

    @abc.abstractmethod
    def reassign(self, job_id: str, old_worker: str, new_worker: str) -> bool:
        """Transfer a running job's lease between worker names."""

    @abc.abstractmethod
    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a job: queued jobs flip to ``cancelled`` immediately,
        running jobs get ``cancel_requested`` set (the worker honours
        it), terminal jobs are left untouched."""

    @abc.abstractmethod
    def result_text(self, job_id: str) -> Optional[str]:
        """The stored result body (None unless the job finished with
        one)."""

    # -- sites (the fleet protocol) ------------------------------------

    @abc.abstractmethod
    def register_site(
        self, name: str, meta: Optional[Dict[str, Any]] = None
    ) -> SiteRecord:
        """Register (or re-activate) the site *name*; idempotent."""

    @abc.abstractmethod
    def heartbeat_site(self, name: str) -> SiteRecord:
        """Record a liveness heartbeat; raises :class:`UnknownSite`."""

    @abc.abstractmethod
    def drain_site(self, name: str) -> SiteRecord:
        """Mark the site draining: its agents stop receiving claims and
        shut down once their in-flight jobs finish."""

    @abc.abstractmethod
    def list_sites(self) -> List[SiteRecord]:
        """Every registered site, in registration order."""

    @abc.abstractmethod
    def site_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-site job ledger: ``{site: {completed, failed, inflight,
        cancelled}}`` for every site that ever claimed a job."""


# ---------------------------------------------------------------------------
# Backend factory
# ---------------------------------------------------------------------------

#: Registered backend constructors, keyed by URL scheme.
_BACKENDS: Dict[str, Callable[..., JobStore]] = {}


def register_store_backend(
    scheme: str, factory: Callable[..., JobStore]
) -> None:
    """Register *factory* for ``{scheme}://...`` store URLs.  The
    factory receives the URL remainder (the path) plus the keyword
    arguments of :func:`create_store`."""
    _BACKENDS[scheme] = factory


def store_backends() -> List[str]:
    """The registered backend schemes (for error messages and docs)."""
    return sorted(_BACKENDS)


def create_store(
    url: str,
    *,
    queue_limit: int = 256,
    max_attempts: int = 3,
    clock: Optional[Callable[[], float]] = None,
) -> JobStore:
    """Construct a job store from a backend URL.

    ``sqlite://results/service.db`` selects the SQLite backend with
    that database path (``sqlite://:memory:`` for an ephemeral store).
    A bare path with no scheme is accepted as SQLite for backwards
    compatibility with ``--db``.  This factory is the only place
    backends are constructed.
    """
    url = str(url)
    if "://" in url:
        scheme, _, rest = url.partition("://")
    else:
        scheme, rest = "sqlite", url
    try:
        factory = _BACKENDS[scheme]
    except KeyError:
        raise ValueError(
            f"unknown store backend {scheme!r} in {url!r} "
            f"(registered: {', '.join(store_backends())})"
        ) from None
    kwargs: Dict[str, Any] = {
        "queue_limit": queue_limit,
        "max_attempts": max_attempts,
    }
    if clock is not None:
        kwargs["clock"] = clock
    return factory(rest, **kwargs)


def _sqlite_factory(path: str, **kwargs: Any) -> JobStore:
    """Lazy-import constructor for the reference SQLite backend."""
    from repro.service.store_sqlite import SQLiteJobStore

    return SQLiteJobStore(path or ":memory:", **kwargs)


register_store_backend("sqlite", _sqlite_factory)
