"""Durable job store: SQLite-backed queue with leases.

One table holds every job the service has ever accepted, moving
through ``queued -> running -> done/failed/cancelled``.  Durability
and crash recovery come from three properties:

- **WAL journaling** — a killed process never corrupts the store, and
  readers (the HTTP API) don't block the writer (the worker pool).
- **Atomic claims** — :meth:`JobStore.claim` selects and marks the
  next runnable job inside one ``BEGIN IMMEDIATE`` transaction, so two
  workers can never run the same job.
- **Lease timeouts** — a claim holds a lease; a worker that dies
  mid-job simply stops renewing, and once the lease expires the job is
  claimable again (``attempts`` counts the re-leases, and a job that
  burns :attr:`JobStore.max_attempts` leases is marked failed rather
  than looping forever).

All methods are thread-safe: one connection guarded by a lock keeps
the store usable from the HTTP threads, the scheduler, and the workers
of a single service process, while WAL keeps concurrent *processes*
(e.g. an operator's ``sqlite3`` shell) safe too.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional


class QueueFull(RuntimeError):
    """Submission rejected: the queue is at its depth bound (the HTTP
    API maps this to ``429 Too Many Requests``)."""


class UnknownJob(KeyError):
    """No job with the requested id exists."""


class JobState:
    """The five job states (plain strings, stored verbatim)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    #: States a job can still leave.
    ACTIVE = (QUEUED, RUNNING)
    #: States a job never leaves.
    TERMINAL = (DONE, FAILED, CANCELLED)
    ALL = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)


@dataclass(frozen=True)
class JobRecord:
    """One row of the store, as plain data."""

    id: str
    spec: Dict[str, Any]
    state: str
    created_at: float
    started_at: Optional[float]
    finished_at: Optional[float]
    attempts: int
    worker: Optional[str]
    lease_expires_at: Optional[float]
    cancel_requested: bool
    result: Optional[str]
    error: Optional[str]

    def to_payload(self) -> Dict[str, Any]:
        """JSON-safe status dict (what ``GET /v1/jobs/{id}`` returns;
        the result body itself is served by the ``/result`` route)."""
        return {
            "id": self.id,
            "spec": self.spec,
            "state": self.state,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "attempts": self.attempts,
            "worker": self.worker,
            "cancel_requested": self.cancel_requested,
            "error": self.error,
        }


_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id TEXT PRIMARY KEY,
    spec TEXT NOT NULL,
    state TEXT NOT NULL DEFAULT 'queued',
    created_at REAL NOT NULL,
    started_at REAL,
    finished_at REAL,
    attempts INTEGER NOT NULL DEFAULT 0,
    worker TEXT,
    lease_expires_at REAL,
    cancel_requested INTEGER NOT NULL DEFAULT 0,
    result TEXT,
    error TEXT
);
CREATE INDEX IF NOT EXISTS idx_jobs_state_created
    ON jobs (state, created_at);
"""


class JobStore:
    """The durable queue (see module docstring for the semantics).

    *clock* is injectable for tests (lease expiry without sleeping).
    ``queue_limit`` bounds the number of *queued* jobs — running and
    finished jobs don't count against it — and ``max_attempts`` bounds
    how many leases a job may burn before it is marked failed.
    """

    def __init__(
        self,
        path: os.PathLike = ":memory:",
        *,
        queue_limit: int = 256,
        max_attempts: int = 3,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.path = str(path)
        self.queue_limit = queue_limit
        self.max_attempts = max_attempts
        self.clock = clock
        self._lock = threading.RLock()
        if self.path != ":memory:":
            Path(self.path).parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(
            self.path, check_same_thread=False, isolation_level=None
        )
        self._conn.row_factory = sqlite3.Row
        with self._lock:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.executescript(_SCHEMA)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        with self._lock:
            try:
                self._conn.close()
            except sqlite3.Error:  # pragma: no cover - close is best-effort
                pass

    # ------------------------------------------------------------------
    # Submission / inspection
    # ------------------------------------------------------------------

    def submit(self, spec: Dict[str, Any], job_id: Optional[str] = None) -> str:
        """Enqueue *spec*; returns the new job id.

        Raises :class:`QueueFull` when ``queued`` jobs are already at
        the depth bound (backpressure, not data loss: nothing is
        partially written).
        """
        job_id = job_id or uuid.uuid4().hex
        payload = json.dumps(spec, sort_keys=True)
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                (depth,) = self._conn.execute(
                    "SELECT COUNT(*) FROM jobs WHERE state = ?",
                    (JobState.QUEUED,),
                ).fetchone()
                if depth >= self.queue_limit:
                    raise QueueFull(
                        f"queue is full ({depth}/{self.queue_limit} jobs queued)"
                    )
                self._conn.execute(
                    "INSERT INTO jobs (id, spec, state, created_at)"
                    " VALUES (?, ?, ?, ?)",
                    (job_id, payload, JobState.QUEUED, self.clock()),
                )
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
            self._conn.execute("COMMIT")
        return job_id

    def get(self, job_id: str) -> JobRecord:
        """The job with *job_id*; raises :class:`UnknownJob` if absent."""
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
        if row is None:
            raise UnknownJob(job_id)
        return self._record(row)

    def list_jobs(
        self, state: Optional[str] = None, limit: int = 100
    ) -> List[JobRecord]:
        """Most-recent-first listing, optionally filtered by state."""
        query = "SELECT * FROM jobs"
        params: tuple = ()
        if state is not None:
            query += " WHERE state = ?"
            params = (state,)
        query += " ORDER BY created_at DESC, rowid DESC LIMIT ?"
        with self._lock:
            rows = self._conn.execute(query, params + (limit,)).fetchall()
        return [self._record(row) for row in rows]

    def counts(self) -> Dict[str, int]:
        """Job count per state (zero-filled for absent states)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"
            ).fetchall()
        out = {state: 0 for state in JobState.ALL}
        for row in rows:
            out[row["state"]] = row["n"]
        return out

    def queue_depth(self) -> int:
        """Number of jobs currently waiting to be claimed."""
        with self._lock:
            (depth,) = self._conn.execute(
                "SELECT COUNT(*) FROM jobs WHERE state = ?",
                (JobState.QUEUED,),
            ).fetchone()
        return depth

    # ------------------------------------------------------------------
    # Claiming and completion (the worker protocol)
    # ------------------------------------------------------------------

    def claim(self, worker: str, lease_s: float) -> Optional[JobRecord]:
        """Atomically lease the next runnable job to *worker*.

        Runnable means: an expired-lease ``running`` job (crash
        recovery — oldest first), else the oldest ``queued`` job.  An
        expired job that already burned ``max_attempts`` leases is
        marked failed instead of being handed out again.  Returns the
        claimed record, or None when nothing is runnable.
        """
        now = self.clock()
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                # Retire jobs whose leases expired too many times.
                self._conn.execute(
                    "UPDATE jobs SET state = ?, finished_at = ?, worker = NULL,"
                    " lease_expires_at = NULL,"
                    " error = 'lease expired after ' || attempts || ' attempts'"
                    " WHERE state = ? AND lease_expires_at < ? AND attempts >= ?",
                    (
                        JobState.FAILED,
                        now,
                        JobState.RUNNING,
                        now,
                        self.max_attempts,
                    ),
                )
                row = self._conn.execute(
                    "SELECT id FROM jobs"
                    " WHERE (state = ? AND lease_expires_at < ?) OR state = ?"
                    " ORDER BY state != ?, created_at, rowid LIMIT 1",
                    (JobState.RUNNING, now, JobState.QUEUED, JobState.RUNNING),
                ).fetchone()
                if row is None:
                    self._conn.execute("COMMIT")
                    return None
                job_id = row["id"]
                self._conn.execute(
                    "UPDATE jobs SET state = ?, worker = ?, attempts = attempts + 1,"
                    " started_at = COALESCE(started_at, ?), lease_expires_at = ?"
                    " WHERE id = ?",
                    (JobState.RUNNING, worker, now, now + lease_s, job_id),
                )
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
            self._conn.execute("COMMIT")
            return self.get(job_id)

    def renew(self, job_id: str, worker: str, lease_s: float) -> bool:
        """Extend *worker*'s lease on a running job (heartbeat).

        Returns False when the job is no longer leased to *worker*
        (lease stolen after expiry, job cancelled, ...), which tells
        the worker its result will be discarded.
        """
        with self._lock:
            cursor = self._conn.execute(
                "UPDATE jobs SET lease_expires_at = ?"
                " WHERE id = ? AND state = ? AND worker = ?",
                (self.clock() + lease_s, job_id, JobState.RUNNING, worker),
            )
        return cursor.rowcount == 1

    def complete(self, job_id: str, worker: str, result: str) -> bool:
        """Record a successful result from *worker*.

        Only the current lease holder may complete a job (a worker
        whose lease was reassigned after a stall must not clobber the
        re-run's result).  A completion racing a cancellation request
        lands as ``cancelled`` with the result attached.  Returns True
        when this call finalized the job.
        """
        now = self.clock()
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                row = self._conn.execute(
                    "SELECT cancel_requested FROM jobs"
                    " WHERE id = ? AND state = ? AND worker = ?",
                    (job_id, JobState.RUNNING, worker),
                ).fetchone()
                if row is None:
                    self._conn.execute("COMMIT")
                    return False
                state = (
                    JobState.CANCELLED
                    if row["cancel_requested"]
                    else JobState.DONE
                )
                self._conn.execute(
                    "UPDATE jobs SET state = ?, result = ?, finished_at = ?,"
                    " lease_expires_at = NULL WHERE id = ?",
                    (state, result, now, job_id),
                )
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
            self._conn.execute("COMMIT")
        return True

    def fail(self, job_id: str, worker: str, error: str) -> bool:
        """Record a failed execution from the current lease holder."""
        with self._lock:
            cursor = self._conn.execute(
                "UPDATE jobs SET state = ?, error = ?, finished_at = ?,"
                " lease_expires_at = NULL"
                " WHERE id = ? AND state = ? AND worker = ?",
                (
                    JobState.FAILED,
                    error,
                    self.clock(),
                    job_id,
                    JobState.RUNNING,
                    worker,
                ),
            )
        return cursor.rowcount == 1

    def release(self, job_id: str, worker: str) -> bool:
        """Return a claimed-but-unstarted job to the queue (shutdown
        path); the attempt is refunded so a drain/restart cycle never
        pushes a job toward its attempts bound."""
        with self._lock:
            cursor = self._conn.execute(
                "UPDATE jobs SET state = ?, worker = NULL,"
                " lease_expires_at = NULL, attempts = MAX(attempts - 1, 0)"
                " WHERE id = ? AND state = ? AND worker = ?",
                (JobState.QUEUED, job_id, JobState.RUNNING, worker),
            )
        return cursor.rowcount == 1

    def reassign(self, job_id: str, old_worker: str, new_worker: str) -> bool:
        """Transfer a running job's lease between worker names (the
        scheduler claims under its own name, then hands the lease to
        the executing worker so completion authority follows the
        thread doing the work)."""
        with self._lock:
            cursor = self._conn.execute(
                "UPDATE jobs SET worker = ?"
                " WHERE id = ? AND state = ? AND worker = ?",
                (new_worker, job_id, JobState.RUNNING, old_worker),
            )
        return cursor.rowcount == 1

    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a job: queued jobs flip to ``cancelled`` immediately,
        running jobs get ``cancel_requested`` set (the worker honours
        it at its next checkpoint), terminal jobs are left untouched.
        Returns the record after the transition."""
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                self._conn.execute(
                    "UPDATE jobs SET state = ?, finished_at = ?,"
                    " cancel_requested = 1, lease_expires_at = NULL"
                    " WHERE id = ? AND state = ?",
                    (JobState.CANCELLED, self.clock(), job_id, JobState.QUEUED),
                )
                self._conn.execute(
                    "UPDATE jobs SET cancel_requested = 1"
                    " WHERE id = ? AND state = ?",
                    (job_id, JobState.RUNNING),
                )
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
            self._conn.execute("COMMIT")
        return self.get(job_id)

    def result_text(self, job_id: str) -> Optional[str]:
        """The stored result body (None unless the job finished with
        one)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT result FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
        if row is None:
            raise UnknownJob(job_id)
        return row["result"]

    # ------------------------------------------------------------------

    @staticmethod
    def _record(row: sqlite3.Row) -> JobRecord:
        return JobRecord(
            id=row["id"],
            spec=json.loads(row["spec"]),
            state=row["state"],
            created_at=row["created_at"],
            started_at=row["started_at"],
            finished_at=row["finished_at"],
            attempts=row["attempts"],
            worker=row["worker"],
            lease_expires_at=row["lease_expires_at"],
            cancel_requested=bool(row["cancel_requested"]),
            result=row["result"],
            error=row["error"],
        )
