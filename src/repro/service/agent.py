"""Worker agents: the execution half of the split service.

The control plane (:class:`repro.service.app.ReproService`) owns the
durable queue; *agents* execute.  An agent claims **batches** of
leased jobs, runs them through :meth:`repro.service.jobs.JobSpec
.execute` (the shared entrypoint, so results match the CLI byte for
byte), renews its leases mid-run, and pushes results back
idempotently.  Two deployments of the same engine:

- **Remote** (``repro agent``): a separate process — usually a
  separate host — registers a named *site* over the HTTP API and
  drives :class:`RemoteJobSource`.  Many agents against one control
  plane form the worker fleet.
- **Local** (:class:`repro.service.worker.WorkerPool`): the in-process
  worker pool inside ``repro serve`` drives :class:`LocalJobSource` —
  the same engine calling the :class:`repro.service.store.JobStore`
  interface directly, so ``repro serve`` with no fleet behaves exactly
  as before the split.

Safety never depends on agent behaviour: claims are leases, a dead
agent's jobs are re-claimable after lease expiry, and completion is
lease-holder-only, so a stale or duplicate agent is harmless.  Result
pushes are idempotent — a retried completion whose first attempt
already landed is acknowledged as "already terminal" and dropped.
"""

from __future__ import annotations

import abc
import queue
import signal
import socket
import sys
import threading
import traceback
import uuid
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.experiments.parallel import ExecutorMetrics, ResultCache
from repro.obs import counters as obs_counters
from repro.obs import live
from repro.service.jobs import JobSpec, ValidationError
from repro.service.protocol import PROTOCOL_VERSION
from repro.service.store import JobRecord, JobState, JobStore


class JobSource(abc.ABC):
    """Where an agent gets work and pushes results.

    The two implementations are :class:`LocalJobSource` (direct
    :class:`JobStore` calls, in-process) and :class:`RemoteJobSource`
    (the HTTP API, cross-host).  Both expose the same lease-based
    verbs, so :class:`WorkerAgent` is deployment-agnostic.
    """

    #: The registered site name (None for the in-process pool).
    site: Optional[str] = None

    @abc.abstractmethod
    def register(self, meta: Dict[str, Any]) -> None:
        """Announce this agent (idempotent; no-op locally)."""

    @abc.abstractmethod
    def claim_batch(
        self, worker: str, lease_s: float, limit: int
    ) -> List[JobRecord]:
        """Lease up to *limit* runnable jobs to *worker*."""

    @abc.abstractmethod
    def renew_many(
        self, worker: str, job_ids: List[str], lease_s: float
    ) -> Dict[str, bool]:
        """Extend the leases on *job_ids*; per-id success map."""

    @abc.abstractmethod
    def complete(
        self,
        worker: str,
        job_id: str,
        result: str,
        counters: Optional[Dict[str, int]] = None,
    ) -> Tuple[bool, str]:
        """Push a success; returns ``(accepted, final_state)``.

        *counters* optionally carries the job's instrumentation-counter
        increments (the ``grid.*`` accounting deltas) for sources whose
        control plane lives in another process."""

    @abc.abstractmethod
    def fail(self, worker: str, job_id: str, error: str) -> Tuple[bool, str]:
        """Push a failure; returns ``(accepted, final_state)``."""

    @abc.abstractmethod
    def release(self, worker: str, job_id: str) -> bool:
        """Return a claimed-but-unstarted job to the queue."""

    @abc.abstractmethod
    def heartbeat(self) -> bool:
        """Site liveness ping; returns True when the control plane
        asks this agent to drain."""

    @abc.abstractmethod
    def cancel_requested(self, job_id: str) -> bool:
        """Whether a cancellation is pending for *job_id*."""


class LocalJobSource(JobSource):
    """Direct store-interface calls (the in-process pool's source)."""

    def __init__(self, store: JobStore) -> None:
        self.store = store
        self.site = None

    def register(self, meta: Dict[str, Any]) -> None:
        """Nothing to announce: the store is right here."""

    def claim_batch(
        self, worker: str, lease_s: float, limit: int
    ) -> List[JobRecord]:
        """Lease up to *limit* jobs straight from the store."""
        return self.store.claim_batch(worker, lease_s, limit, site=self.site)

    def renew_many(
        self, worker: str, job_ids: List[str], lease_s: float
    ) -> Dict[str, bool]:
        """Renew each lease individually against the store."""
        return {
            job_id: self.store.renew(job_id, worker, lease_s)
            for job_id in job_ids
        }

    def _final_state(self, job_id: str) -> str:
        try:
            return self.store.get(job_id).state
        except KeyError:
            return "unknown"

    def complete(
        self,
        worker: str,
        job_id: str,
        result: str,
        counters: Optional[Dict[str, int]] = None,
    ) -> Tuple[bool, str]:
        """Store the result (lease-holder-only) and report the state.

        *counters* is ignored: the job ran in this process, so its
        increments already landed on the process-global counters."""
        accepted = self.store.complete(job_id, worker, result)
        return accepted, self._final_state(job_id)

    def fail(self, worker: str, job_id: str, error: str) -> Tuple[bool, str]:
        """Store the failure (lease-holder-only) and report the state."""
        accepted = self.store.fail(job_id, worker, error)
        return accepted, self._final_state(job_id)

    def release(self, worker: str, job_id: str) -> bool:
        """Requeue an unstarted claim, refunding its attempt."""
        return self.store.release(job_id, worker)

    def heartbeat(self) -> bool:
        """No site concept in-process; never asked to drain."""
        return False

    def cancel_requested(self, job_id: str) -> bool:
        """Read the cancellation flag off the job row."""
        try:
            return self.store.get(job_id).cancel_requested
        except KeyError:
            return False


class RemoteJobSource(JobSource):
    """The HTTP API as a job source (what ``repro agent`` drives).

    *client* is a :class:`repro.service.client.ServiceClient`; its
    retry policy makes the claim/renew/complete calls resilient to
    transient connection failures, and the server's lease-holder-only
    completion makes retried pushes idempotent.
    """

    def __init__(self, client: Any, site: str) -> None:
        self.client = client
        self.site = site
        self._watched: set = set()
        self._watched_lock = threading.Lock()

    def register(self, meta: Dict[str, Any]) -> None:
        """Register (or re-register) this agent's site."""
        self.client.register_site(self.site, meta=meta)

    def claim_batch(
        self, worker: str, lease_s: float, limit: int
    ) -> List[JobRecord]:
        """Claim a batch over HTTP; raises :class:`DrainRequested`
        when the control plane wants this site to wind down."""
        response = self.client.claim_jobs(
            self.site, worker, limit=limit, lease_s=lease_s
        )
        if response.get("draining"):
            raise DrainRequested(self.site)
        # The control plane annotates each claim with the subset of
        # claimed job ids that SSE consumers are watching, so the
        # agent knows whose simulation events to forward back.
        watched = response.get("watched") or ()
        if watched:
            with self._watched_lock:
                self._watched.update(watched)
        return [JobRecord.from_payload(j) for j in response.get("jobs", ())]

    def is_watched(self, job_id: str) -> bool:
        """Whether the claim response flagged *job_id* as watched."""
        with self._watched_lock:
            return job_id in self._watched

    def _forget_watch(self, job_id: str) -> None:
        with self._watched_lock:
            self._watched.discard(job_id)

    def renew_many(
        self, worker: str, job_ids: List[str], lease_s: float
    ) -> Dict[str, bool]:
        """Renew leases in one ``POST /v1/jobs/renew`` call."""
        response = self.client.renew_jobs(worker, job_ids, lease_s)
        return {
            entry["id"]: bool(entry["ok"])
            for entry in response.get("renewed", ())
        }

    def _push(self, worker: str, item: Dict[str, Any]) -> Tuple[bool, str]:
        response = self.client.complete_jobs(worker, [item])
        [entry] = response["results"]
        return bool(entry["accepted"]), entry.get("state", "unknown")

    def complete(
        self,
        worker: str,
        job_id: str,
        result: str,
        counters: Optional[Dict[str, int]] = None,
    ) -> Tuple[bool, str]:
        """Push a success; idempotent server-side.  Any *counters*
        ride the completion item so the control plane can fold the
        job's grid accounting into its fleet-wide totals."""
        self._forget_watch(job_id)
        item: Dict[str, Any] = {"id": job_id, "ok": True, "result": result}
        if counters:
            item["counters"] = dict(counters)
        return self._push(worker, item)

    def fail(self, worker: str, job_id: str, error: str) -> Tuple[bool, str]:
        """Push a failure; idempotent server-side."""
        self._forget_watch(job_id)
        return self._push(worker, {"id": job_id, "ok": False, "error": error})

    def release(self, worker: str, job_id: str) -> bool:
        """Return an unstarted claim over ``POST /v1/jobs/release``."""
        response = self.client.release_jobs(worker, [job_id])
        [entry] = response["released"]
        return bool(entry["ok"])

    def heartbeat(self) -> bool:
        """Ping the site; True when the server set the drain flag."""
        response = self.client.site_heartbeat(self.site)
        return bool(response.get("drain", False))

    def cancel_requested(self, job_id: str) -> bool:
        """Poll the job record; unreachable server reads as False."""
        try:
            return bool(self.client.status(job_id)["cancel_requested"])
        except Exception:
            return False


class DrainRequested(Exception):
    """The control plane marked this agent's site draining."""


def agent_meta(workers: int, batch_size: int) -> Dict[str, Any]:
    """The registration metadata one agent announces."""
    from repro import __version__

    return {
        "hostname": socket.gethostname(),
        "pid": __import__("os").getpid(),
        "workers": workers,
        "batch_size": batch_size,
        "version": __version__,
        "protocol": PROTOCOL_VERSION,
    }


class WorkerAgent:
    """The agent engine: claim batches, execute, push, renew, drain.

    Three kinds of threads cooperate:

    - the **puller** claims runnable jobs in batches (sized to the
      free executor capacity, capped at *batch_size*) into an
      in-memory hand-off queue;
    - **executors** take claimed jobs off the hand-off queue and run
      them through :meth:`JobSpec.execute`;
    - a **heartbeat** renews the leases of every in-flight job and
      pings the site, picking up a server-side drain request.

    Shutdown is graceful and lossless: the puller stops claiming,
    claimed-but-unstarted jobs are released back to the queue (their
    attempt refunded), and executors finish the jobs they already
    started before the agent joins them.

    ``workers=0`` is a valid paused agent (jobs queue up but never
    run — used by tests and by operators staging work).  *on_idle* is
    an optional test hook called when the puller finds nothing to
    claim; *on_tick* runs once per puller iteration (the in-process
    pool hangs cache pruning on it).
    """

    def __init__(
        self,
        source: JobSource,
        *,
        workers: int = 1,
        batch_size: Optional[int] = None,
        lease_s: float = 60.0,
        poll_interval_s: float = 0.05,
        heartbeat_interval_s: Optional[float] = None,
        metrics: Optional[ExecutorMetrics] = None,
        cache: Optional[ResultCache] = None,
        identity: Optional[str] = None,
        telemetry: Optional[Any] = None,
        on_idle: Optional[Callable[[], None]] = None,
        on_tick: Optional[Callable[[], None]] = None,
    ) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if batch_size is not None and batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.source = source
        self.workers = workers
        self.batch_size = batch_size or max(workers, 1)
        self.lease_s = lease_s
        self.poll_interval_s = poll_interval_s
        self.heartbeat_interval_s = heartbeat_interval_s
        self.metrics = metrics if metrics is not None else ExecutorMetrics()
        self.cache = cache
        #: The lease-holder name every claim/renew/complete uses.  One
        #: identity per agent *instance*: a resurrected agent gets a
        #: fresh identity, so its stale pushes are rejected.
        self.identity = identity or (
            f"{source.site or 'local'}-{uuid.uuid4().hex[:8]}"
        )
        #: Optional live-event surface (``job_sink``/``flush`` duck
        #: type): :class:`repro.telemetry.hub.TelemetryHub` in-process,
        #: :class:`repro.telemetry.forwarder.ForwardingTelemetry` on a
        #: remote agent.  None keeps the engine telemetry-free.
        self.telemetry = telemetry
        self.on_idle = on_idle
        self.on_tick = on_tick
        self._handoff: "queue.Queue[JobRecord]" = queue.Queue(
            maxsize=max(workers, 1)
        )
        self._inflight: Dict[str, str] = {}
        self._inflight_lock = threading.Lock()
        self._stop = threading.Event()
        self._draining = threading.Event()
        self._threads: list = []

    # ------------------------------------------------------------------

    def start(self) -> None:
        """Register the site and launch puller, executors, heartbeat."""
        if self._threads:
            raise RuntimeError("agent already started")
        self._stop.clear()
        self.source.register(agent_meta(self.workers, self.batch_size))
        if self.workers > 0:
            self._threads.append(
                threading.Thread(
                    target=self._puller_loop, name="repro-puller", daemon=True
                )
            )
            for index in range(self.workers):
                self._threads.append(
                    threading.Thread(
                        target=self._executor_loop,
                        args=(f"{self.identity}/w{index}",),
                        name=f"repro-exec-{index}",
                        daemon=True,
                    )
                )
            self._threads.append(
                threading.Thread(
                    target=self._heartbeat_loop,
                    name="repro-heartbeat",
                    daemon=True,
                )
            )
        for thread in self._threads:
            thread.start()

    def drain(self) -> None:
        """Stop claiming new jobs; running jobs finish normally."""
        self._draining.set()

    @property
    def draining(self) -> bool:
        """Whether a wind-down has been requested."""
        return self._draining.is_set()

    def idle(self) -> bool:
        """No job claimed and nothing running (drain-completion test)."""
        with self._inflight_lock:
            busy = bool(self._inflight)
        return not busy and self._handoff.empty()

    def shutdown(self, timeout: Optional[float] = None) -> None:
        """Stop claiming, release unstarted claims, drain running jobs.

        Blocks until every thread has joined (up to *timeout* per
        thread).  No accepted job is lost: anything not finished is
        back in (or still in) the queue afterwards.
        """
        self.drain()
        self._stop.set()
        self._release_handoff()
        for thread in self._threads:
            thread.join(timeout=timeout)
        # The puller may have claimed one last batch after the first
        # sweep; sweep again now that every thread is gone.
        self._release_handoff()
        if self.telemetry is not None:
            self.telemetry.flush()
        self._threads = []

    def run_forever(self, install_signal_handlers: bool = True) -> None:
        """Start (if needed) and block until SIGTERM/SIGINT or until a
        server-requested drain completes.

        The signal handlers trigger :meth:`shutdown` — running jobs
        drain, claimed-but-unstarted jobs go back to the queue — so a
        ``kill -TERM`` never loses an accepted job.
        """
        if not self._threads:
            self.start()
        stop = threading.Event()
        if install_signal_handlers:

            def _handle(signum: int, frame: Any) -> None:
                stop.set()

            signal.signal(signal.SIGTERM, _handle)
            signal.signal(signal.SIGINT, _handle)
        try:
            while not stop.wait(0.2):
                if self.draining and self.idle():
                    break
        finally:
            self.shutdown()

    def inflight(self) -> Dict[str, str]:
        """Snapshot of running jobs: ``{job_id: executor_name}``."""
        with self._inflight_lock:
            return dict(self._inflight)

    def _release_handoff(self) -> None:
        """Requeue jobs that were claimed but never handed to an
        executor."""
        while True:
            try:
                record = self._handoff.get_nowait()
            except queue.Empty:
                return
            try:
                self.source.release(self.identity, record.id)
            except Exception:
                # Best effort: an unreachable control plane just means
                # the lease expires on its own.
                self._log(f"release of {record.id} failed; lease will expire")

    def _log(self, message: str) -> None:
        print(f"[agent {self.identity}] {message}", file=sys.stderr)

    # ------------------------------------------------------------------
    # Thread bodies
    # ------------------------------------------------------------------

    def _puller_loop(self) -> None:
        while not self._stop.is_set():
            if self.on_tick is not None:
                self.on_tick()
            if self.telemetry is not None:
                self.telemetry.flush()
            claimed: List[JobRecord] = []
            if not self.draining:
                free = self._handoff.maxsize - self._handoff.qsize()
                limit = min(self.batch_size, max(free, 0))
                if limit > 0:
                    try:
                        claimed = self.source.claim_batch(
                            self.identity, self.lease_s, limit
                        )
                    except DrainRequested:
                        self.drain()
                    except Exception as exc:
                        self._log(f"claim failed ({exc}); backing off")
                        self._stop.wait(self.poll_interval_s)
                        continue
            if claimed:
                obs_counters.increment("agent.jobs_claimed", len(claimed))
                for record in claimed:
                    try:
                        self._handoff.put(record, timeout=self.lease_s)
                    except queue.Full:  # pragma: no cover - free slots held
                        self.source.release(self.identity, record.id)
            else:
                if self.on_idle is not None:
                    self.on_idle()
                self._stop.wait(self.poll_interval_s)

    def _executor_loop(self, name: str) -> None:
        while True:
            try:
                record = self._handoff.get(timeout=self.poll_interval_s)
            except queue.Empty:
                if self._stop.is_set():
                    return
                continue
            try:
                self._run_job(record, name)
            except Exception:
                # A completely unexpected executor error must not kill
                # the thread; the job's lease expires and it is re-run.
                self._log(
                    f"executor error on {record.id}:\n"
                    + traceback.format_exc(limit=10)
                )

    def _run_job(self, record: JobRecord, executor: str) -> None:
        # Confirm the lease is still ours before spending compute (it
        # may have expired while the job sat in the hand-off queue).
        renewed = self.source.renew_many(
            self.identity, [record.id], self.lease_s
        )
        if not renewed.get(record.id):
            return
        if self.source.cancel_requested(record.id):
            self.source.complete(self.identity, record.id, "")
            obs_counters.increment("service.jobs_cancelled")
            return
        with self._inflight_lock:
            self._inflight[record.id] = executor
        try:
            spec = JobSpec.from_payload(record.spec)
            cache_dir = self.cache.directory if self.cache is not None else None
            # Watched jobs get a live simulation-event sink activated
            # thread-locally around execute(); job_sink returns None
            # for unwatched jobs (and activated() filters the None),
            # so their trials keep the unobserved fast path.
            sink = (
                self.telemetry.job_sink(record.id)
                if self.telemetry is not None
                else None
            )
            before = obs_counters.snapshot()
            with live.activated(sink):
                outcome = spec.execute(
                    metrics=self.metrics, cache_dir=cache_dir
                )
            # Grid cost/carbon accounting increments locally during
            # execute(); a remote control plane only learns about them
            # through the completion push.
            grid_delta = {
                key: n
                for key, n in obs_counters.delta_since(before).items()
                if key.startswith("grid.")
            }
        except ValidationError as exc:
            self._push_failure(record.id, f"invalid job spec: {exc}")
        except Exception:
            self._push_failure(record.id, traceback.format_exc(limit=20))
        else:
            self._push_result(record.id, outcome.text, counters=grid_delta)
        finally:
            with self._inflight_lock:
                self._inflight.pop(record.id, None)

    def _push_result(
        self,
        job_id: str,
        text: str,
        counters: Optional[Dict[str, int]] = None,
    ) -> None:
        """Push a success idempotently: an "already terminal" answer
        (a retried push whose first attempt landed, or a re-run that
        beat us) is dropped, never an error."""
        try:
            accepted, state = self.source.complete(
                self.identity, job_id, text, counters=counters
            )
        except Exception as exc:
            self._log(
                f"result push for {job_id} failed ({exc}); "
                "lease will expire and the job will be re-run"
            )
            return
        if accepted:
            if state == JobState.CANCELLED:
                obs_counters.increment("service.jobs_cancelled")
            else:
                obs_counters.increment("service.jobs_completed")
        elif state in JobState.TERMINAL:
            obs_counters.increment("agent.jobs_stale_push")
        else:
            self._log(f"lease on {job_id} lost; result discarded")

    def _push_failure(self, job_id: str, error: str) -> None:
        try:
            accepted, _ = self.source.fail(self.identity, job_id, error)
        except Exception as exc:
            self._log(f"failure push for {job_id} failed ({exc})")
            return
        if accepted:
            obs_counters.increment("service.jobs_failed")

    def _heartbeat_loop(self) -> None:
        interval = self.heartbeat_interval_s
        if interval is None:
            interval = max(self.lease_s / 3.0, self.poll_interval_s)
        while not self._stop.wait(interval):
            self._heartbeat_once()
        # One final renewal round so draining jobs keep their leases
        # while shutdown waits for them.
        self._heartbeat_once(final=True)

    def _heartbeat_once(self, final: bool = False) -> None:
        ids = list(self.inflight())
        try:
            if ids:
                self.source.renew_many(self.identity, ids, self.lease_s)
            if self.telemetry is not None:
                self.telemetry.flush()
            if not final and self.source.heartbeat():
                self.drain()
        except Exception as exc:
            self._log(f"heartbeat failed ({exc})")
