"""Job specifications: what one service job runs, and how.

A :class:`JobSpec` is a validated :class:`repro.experiments.entry
.StudyRequest` plus the executor settings the worker should use
(worker-process count and cache policy).  The wire format is a flat
JSON object — the request fields at top level next to ``jobs`` /
``cache`` — and :meth:`JobSpec.from_payload` is the single strict
parser used by the HTTP API, the CLI's ``repro submit``, and the
store's rehydration path, so a spec that was accepted always
re-parses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.experiments.entry import RequestError, StudyOutcome, StudyRequest, run_request
from repro.experiments.parallel import ExecutorMetrics, ExecutorOptions


class ValidationError(ValueError):
    """A malformed job payload (HTTP 400); one human-readable line."""


@dataclass(frozen=True)
class JobSpec:
    """One job: the artifact request plus executor settings.

    ``jobs`` is the per-job worker-process fan-out (forwarded to
    :class:`ExecutorOptions`; results are bit-identical for any
    value), ``cache`` enables the shared on-disk result cache (on by
    default, so re-submitting the same request is a cache hit).
    """

    request: StudyRequest
    jobs: int = 1
    cache: bool = True

    def to_payload(self) -> Dict[str, Any]:
        """Flat JSON-safe dict (inverse of :meth:`from_payload`)."""
        payload = self.request.to_payload()
        payload["jobs"] = self.jobs
        payload["cache"] = self.cache
        return payload

    @classmethod
    def from_payload(cls, payload: Any) -> "JobSpec":
        """Parse and validate a wire payload; raises
        :class:`ValidationError` with a one-line message on any
        unknown field, wrong type, or out-of-range value."""
        if not isinstance(payload, dict):
            raise ValidationError("job payload must be a JSON object")
        data = dict(payload)
        jobs = data.pop("jobs", 1)
        cache = data.pop("cache", True)
        if isinstance(jobs, bool) or not isinstance(jobs, int) or jobs < 1:
            raise ValidationError(f"field 'jobs' must be an integer >= 1, got {jobs!r}")
        if not isinstance(cache, bool):
            raise ValidationError(f"field 'cache' must be a boolean, got {cache!r}")
        try:
            request = StudyRequest.from_payload(data)
        except RequestError as exc:
            raise ValidationError(str(exc)) from exc
        return cls(request=request, jobs=jobs, cache=cache)

    def execute(
        self,
        metrics: Optional[ExecutorMetrics] = None,
        cache_dir: Optional[Any] = None,
    ) -> StudyOutcome:
        """Run this job through the shared experiment entrypoint.

        *metrics* (usually the service-wide sink) accumulates executor
        counters across jobs; *cache_dir* overrides the result-cache
        location (the service forwards its configured directory).
        Execution is a pure function of the spec, so the rendered text
        is byte-identical to the direct CLI invocation of the same
        request.
        """
        options = ExecutorOptions(
            jobs=self.jobs,
            cache=self.cache,
            cache_dir=cache_dir,
            metrics=metrics,
        )
        return run_request(self.request, options=options)
