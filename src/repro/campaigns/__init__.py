"""Campaign-level orchestration on top of the job service.

A *campaign* is one scenario submitted for execution.  Static
campaigns compile to a fixed job list up front; *adaptive* campaigns
(:mod:`repro.campaigns.controller`) submit their trial budget in
dependency-chained batches and run a server-side controller loop that
early-stops converged cells and bisects toward technique-crossover
boundaries, spending simulation time only where the paper's headline
question — which resilience technique wins where — is still open.
"""

from repro.campaigns.controller import (
    AdaptiveConfig,
    Campaign,
    CampaignRegistry,
    UnknownCampaign,
    best_map_from_results,
    parse_cell_result,
    render_best_technique_table,
)

__all__ = [
    "AdaptiveConfig",
    "Campaign",
    "CampaignRegistry",
    "UnknownCampaign",
    "best_map_from_results",
    "parse_cell_result",
    "render_best_technique_table",
]
