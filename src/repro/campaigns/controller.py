"""Server-side adaptive campaign controller.

An adaptive campaign turns a scenario's study grid into independent
*cells* — (sweep-axis value, system fraction, technique) triples — and
submits each cell's trial budget as a chain of batch jobs linked by
server-side job dependencies (batch *k+1* ``depends_on`` batch *k*),
so at most one batch per cell is ever runnable and the chain survives
a controller restart.  The controller loop then:

- **Early-stops** a cell once the 95% confidence interval of its
  accumulated efficiency falls below a relative threshold, cancelling
  the remaining batches of the chain (the cancellation cascades down
  the dependency chain inside the store);
- **Refines** technique-crossover boundaries: wherever two adjacent
  fractions settle on different best techniques, a probe wave is
  submitted between them — at the analytic prior from
  :func:`repro.analysis.regimes.crossover_fraction` when the paper's
  Poisson assumptions hold, at the midpoint otherwise — and bisection
  recurses up to ``refine_depth`` rounds.

Determinism: batch *k* of a cell runs trials ``[k*b, (k+1)*b)`` of the
same per-``(seed, trial-index)`` streams an exhaustive run uses, so
every adaptive cell result is byte-identical to a prefix of the
exhaustive run, and the winning-technique map is rendered by the same
code path (:func:`render_best_technique_table`) on both sides.
"""

from __future__ import annotations

import json
import math
import threading
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.experiments.entry import StudyRequest
from repro.experiments.stats import SummaryStats
from repro.scenarios.compiler import (
    CampaignCell,
    compile_cell_request,
    scenario_analytic_reason,
    scenario_cells,
)
from repro.scenarios.spec import AdaptiveSpec, ScenarioSpec

# repro.service.app imports this module, and importing any
# repro.service submodule executes the repro.service package __init__
# (which imports app) — so the service names used at runtime are
# imported lazily inside the handful of methods that need them.
if TYPE_CHECKING:
    from repro.service.store import JobStore

#: A key identifying one cell: (axis value, fraction, technique).
CellKey = Tuple[Optional[float], float, str]

#: Submits one batch request with optional parents; returns the job id.
SubmitFn = Callable[[StudyRequest, Optional[List[str]]], str]

#: Controller progress callback: ``notify(kind, campaign_id, data)``.
#: The service hangs its telemetry hub here so SSE consumers see
#: ``campaign.cell_settled`` / ``campaign.probe`` / ``campaign.done``.
NotifyFn = Callable[[str, str, Dict[str, Any]], None]


def _no_notify(kind: str, campaign_id: str, data: Dict[str, Any]) -> None:
    """The default (absent) progress callback."""

#: Display tags for the paper's techniques (fallback: first two
#: letters, uppercased).
_TECH_TAGS = {
    "checkpoint_restart": "CR",
    "multilevel": "ML",
    "parallel_recovery": "PR",
    "redundancy": "RD",
}


class UnknownCampaign(KeyError):
    """No campaign with the requested id exists (HTTP 404)."""


@dataclass(frozen=True)
class AdaptiveConfig:
    """Controller knobs of one adaptive campaign (defaults mirror the
    scenario schema's ``[adaptive]`` section)."""

    max_trials: int = 200
    batch_size: int = 25
    ci_rel_threshold: float = 0.02
    refine_depth: int = 1

    @classmethod
    def from_spec(cls, adaptive: Optional[AdaptiveSpec]) -> "AdaptiveConfig":
        """The config a spec's ``[adaptive]`` section asks for (the
        defaults when the section is absent)."""
        if adaptive is None:
            return cls()
        return cls(
            max_trials=adaptive.max_trials,
            batch_size=adaptive.batch_size,
            ci_rel_threshold=adaptive.ci_rel_threshold,
            refine_depth=adaptive.refine_depth,
        )

    @classmethod
    def from_payload(
        cls, payload: Any, defaults: Optional["AdaptiveConfig"] = None
    ) -> "AdaptiveConfig":
        """Strictly parse the ``adaptive`` object of a ``POST
        /v1/campaigns`` body, overriding *defaults* field-wise; raises
        :class:`~repro.service.jobs.ValidationError` (HTTP 400) on
        unknown fields, wrong types, or out-of-range values."""
        from repro.service.jobs import ValidationError

        base = defaults if defaults is not None else cls()
        if not isinstance(payload, dict):
            raise ValidationError("field 'adaptive' must be an object")
        data = dict(payload)
        max_trials = data.pop("max_trials", base.max_trials)
        if (
            isinstance(max_trials, bool)
            or not isinstance(max_trials, int)
            or max_trials < 2
        ):
            raise ValidationError(
                f"field 'adaptive.max_trials' must be an integer >= 2, "
                f"got {max_trials!r}"
            )
        batch_size = data.pop("batch_size", base.batch_size)
        if (
            isinstance(batch_size, bool)
            or not isinstance(batch_size, int)
            or batch_size < 2
        ):
            raise ValidationError(
                f"field 'adaptive.batch_size' must be an integer >= 2, "
                f"got {batch_size!r}"
            )
        if batch_size > max_trials:
            raise ValidationError(
                f"field 'adaptive.batch_size' must be <= max_trials "
                f"({max_trials}), got {batch_size}"
            )
        threshold = data.pop("ci_rel_threshold", base.ci_rel_threshold)
        if (
            isinstance(threshold, bool)
            or not isinstance(threshold, (int, float))
            or not 0.0 < float(threshold) < 1.0
        ):
            raise ValidationError(
                f"field 'adaptive.ci_rel_threshold' must be a number in "
                f"(0, 1), got {threshold!r}"
            )
        refine_depth = data.pop("refine_depth", base.refine_depth)
        if (
            isinstance(refine_depth, bool)
            or not isinstance(refine_depth, int)
            or refine_depth < 0
        ):
            raise ValidationError(
                f"field 'adaptive.refine_depth' must be an integer >= 0, "
                f"got {refine_depth!r}"
            )
        if data:
            raise ValidationError(
                f"unknown adaptive field {sorted(data)[0]!r}"
            )
        return cls(
            max_trials=max_trials,
            batch_size=batch_size,
            ci_rel_threshold=float(threshold),
            refine_depth=refine_depth,
        )

    def to_payload(self) -> Dict[str, Any]:
        """JSON-safe dict (echoed in campaign responses)."""
        return {
            "max_trials": self.max_trials,
            "batch_size": self.batch_size,
            "ci_rel_threshold": self.ci_rel_threshold,
            "refine_depth": self.refine_depth,
        }

    def batch_sizes(self) -> List[int]:
        """Trial counts of the batch chain covering ``max_trials``
        (all ``batch_size`` except a possibly short last batch)."""
        sizes = [self.batch_size] * (self.max_trials // self.batch_size)
        rest = self.max_trials % self.batch_size
        if rest:
            sizes.append(rest)
        return sizes


def parse_cell_result(text: str) -> Tuple[int, float, float, bool]:
    """Extract ``(trials, mean, std, infeasible)`` from one batch
    job's rendered JSON artifact (a single-cell scenario run)."""
    payload = json.loads(text)
    cell = payload["results"][0]["cells"][0]
    return (
        int(cell["trials"]),
        float(cell["mean_efficiency"]),
        float(cell["std_efficiency"]),
        bool(cell["infeasible"]),
    )


def technique_tag(name: str) -> str:
    """Two-letter display tag of a technique name."""
    return _TECH_TAGS.get(name, name[:2].upper())


def render_best_technique_table(
    axis: Optional[str],
    axis_values: Sequence[Optional[float]],
    fractions: Sequence[float],
    best: Dict[Tuple[Optional[float], float], Optional[str]],
) -> str:
    """Fixed-width winning-technique table: one row per sweep-axis
    value (a single ``-`` row without a sweep), one column per system
    fraction; infeasible-everywhere cells render ``--``.

    This is the single renderer for both adaptive campaign status and
    exhaustive-run comparisons (via :func:`best_map_from_results`), so
    agreeing selections produce byte-identical tables.
    """
    label = axis if axis is not None else "sweep"
    header = f"{label:<14}" + "".join(f"{100 * f:>7.0f}%" for f in fractions)
    lines = [header, "-" * len(header)]
    for value in axis_values:
        row_label = f"{value:g}" if value is not None else "-"
        row = [f"{row_label:<14}"]
        for fraction in fractions:
            name = best.get((value, fraction))
            row.append((technique_tag(name) if name else "--").rjust(8))
        lines.append("".join(row))
    return "\n".join(lines)


def _best_of(entries: Sequence[Tuple[str, float, bool]]) -> Optional[str]:
    """The winning technique of one (axis value, fraction) cell from
    ``(technique, mean, infeasible)`` entries in technique order:
    highest feasible mean, first-in-order on exact ties, None when
    nothing fits."""
    best_name: Optional[str] = None
    best_mean = -math.inf
    for technique, mean, infeasible in entries:
        if infeasible:
            continue
        if mean > best_mean:
            best_name, best_mean = technique, mean
    return best_name


def best_map_from_results(
    payload: Dict[str, Any],
) -> Dict[Tuple[Optional[float], float], Optional[str]]:
    """The winning-technique map of a scenario run's JSON artifact
    (``{(axis_value, fraction): technique_or_None}``), using the same
    tie-breaking as the adaptive controller — feed the result to
    :func:`render_best_technique_table` to compare an exhaustive run
    against an adaptive campaign byte-for-byte."""
    out: Dict[Tuple[Optional[float], float], Optional[str]] = {}
    for block in payload["results"]:
        value = block["axis_value"]
        groups: Dict[float, List[Tuple[str, float, bool]]] = {}
        for cell in block["cells"]:
            groups.setdefault(cell["fraction"], []).append(
                (
                    cell["technique"],
                    cell["mean_efficiency"],
                    cell["infeasible"],
                )
            )
        for fraction, entries in groups.items():
            out[(value, fraction)] = _best_of(entries)
    return out


@dataclass
class CellRun:
    """Mutable controller-side state of one campaign cell: its batch
    chain, the accumulated summary, and how it settled."""

    cell: CampaignCell
    job_ids: List[str]
    batch_trials: List[int]
    probe: bool = False
    #: Index of the next chain job whose result is still unconsumed.
    next_index: int = 0
    stats: Optional[SummaryStats] = None
    infeasible: bool = False
    settled: bool = False
    stop_reason: Optional[str] = None
    failed: bool = False

    @property
    def trials_done(self) -> int:
        """Trials accumulated into the summary so far."""
        return self.stats.n if self.stats is not None else 0

    def ci_rel(self) -> Optional[float]:
        """Relative 95% CI half-width (None before any result or at a
        zero mean; ``inf`` on a single trial)."""
        if self.stats is None or self.stats.mean == 0.0:
            return None
        return 1.96 * self.stats.sem / abs(self.stats.mean)

    def to_payload(self) -> Dict[str, Any]:
        """JSON-safe per-cell status (one entry of ``GET
        /v1/campaigns/{id}``'s ``cells`` list)."""
        return {
            "axis_value": self.cell.axis_value,
            "fraction": self.cell.fraction,
            "technique": self.cell.technique,
            "probe": self.probe,
            "trials": self.trials_done,
            "mean_efficiency": (
                self.stats.mean if self.stats is not None else None
            ),
            "std_efficiency": (
                self.stats.std if self.stats is not None else None
            ),
            "ci95_rel": self.ci_rel(),
            "settled": self.settled,
            "converged": self.settled and self.stop_reason == "converged",
            "infeasible": self.infeasible,
            "stop_reason": self.stop_reason,
            "jobs_total": len(self.job_ids),
            "jobs_consumed": self.next_index,
        }


@dataclass
class RefinementInterval:
    """One bisection bracket between two fractions whose best
    techniques differ, and the probe resolving it."""

    axis_value: Optional[float]
    lo: float
    hi: float
    depth: int
    probe_fraction: float
    #: ``analytic`` when the probe came from the regimes prior,
    #: ``midpoint`` otherwise.
    source: str = "midpoint"
    state: str = "probing"

    def to_payload(self) -> Dict[str, Any]:
        """JSON-safe interval status (campaign ``refinements`` list)."""
        return {
            "axis_value": self.axis_value,
            "lo": self.lo,
            "hi": self.hi,
            "depth": self.depth,
            "probe_fraction": self.probe_fraction,
            "source": self.source,
            "state": self.state,
        }


class Campaign:
    """One registered campaign: either a static job list or an
    adaptive cell grid under controller management.

    Mutated only by :meth:`step` (the controller thread) and read by
    :meth:`status` (HTTP threads); the owning
    :class:`CampaignRegistry` serializes both under its lock.
    """

    def __init__(
        self,
        campaign_id: str,
        spec: ScenarioSpec,
        sha256: str,
        notes: Sequence[str],
        adaptive: Optional[AdaptiveConfig] = None,
        static_units: Optional[List[Dict[str, str]]] = None,
    ) -> None:
        self.id = campaign_id
        self.spec = spec
        self.sha256 = sha256
        self.notes = list(notes)
        self.adaptive = adaptive
        self.static_units = list(static_units or [])
        self.cells: Dict[CellKey, CellRun] = {}
        self.intervals: List[RefinementInterval] = []
        self.done = False
        self.trials_executed = 0
        self._refined_values: set = set()
        self._notify: NotifyFn = _no_notify
        if adaptive is not None:
            base = scenario_cells(spec)
            self.technique_order: Tuple[str, ...] = tuple(
                dict.fromkeys(c.technique for c in base)
            )
            self.base_fractions: Tuple[float, ...] = tuple(
                sorted(dict.fromkeys(c.fraction for c in base))
            )
            self.axis: Optional[str] = (
                spec.sweep.axis if spec.sweep is not None else None
            )
            self.axis_values: Tuple[Optional[float], ...] = tuple(
                dict.fromkeys(c.axis_value for c in base)
            )
            total_nodes = spec.platform.total_nodes
            if total_nodes is None:
                from repro.constants import EXASCALE_NODES

                total_nodes = EXASCALE_NODES
            self._min_width = max(1.0 / total_nodes, 1e-4)
            self._base_cells = base
        else:
            self.technique_order = ()
            self.base_fractions = ()
            self.axis = None
            self.axis_values = ()
            self._min_width = 0.0
            self._base_cells = ()

    # -- planning ------------------------------------------------------

    def submit_base_wave(self, submit: SubmitFn) -> None:
        """Submit every base cell's batch chain (campaign creation)."""
        for cell in self._base_cells:
            self._submit_cell_chain(cell, probe=False, submit=submit)

    def all_job_ids(self) -> List[str]:
        """Every job id this campaign has submitted (chain order)."""
        ids = [unit["job_id"] for unit in self.static_units]
        for run in self.cells.values():
            ids.extend(run.job_ids)
        return ids

    def _submit_cell_chain(
        self, cell: CampaignCell, probe: bool, submit: SubmitFn
    ) -> CellRun:
        """Submit one cell's dependency-chained batch jobs."""
        assert self.adaptive is not None
        sizes = self.adaptive.batch_sizes()
        job_ids: List[str] = []
        offset = 0
        for size in sizes:
            request = compile_cell_request(
                self.spec, cell, trials=size, trial_offset=offset
            )
            parents = [job_ids[-1]] if job_ids else None
            job_ids.append(submit(request, parents))
            offset += size
        run = CellRun(
            cell=cell, job_ids=job_ids, batch_trials=list(sizes), probe=probe
        )
        self.cells[(cell.axis_value, cell.fraction, cell.technique)] = run
        return run

    # -- the controller loop -------------------------------------------

    def step(
        self,
        store: JobStore,
        submit: SubmitFn,
        notify: Optional[NotifyFn] = None,
    ) -> None:
        """One controller tick: consume finished batches, early-stop
        converged cells, advance refinement, detect completion.
        *notify* receives progress events (cell settled, probe wave
        submitted, campaign done) as they happen."""
        if self.adaptive is None or self.done:
            return
        self._notify = notify if notify is not None else _no_notify
        for run in list(self.cells.values()):
            self._advance_cell(run, store)
        self._advance_refinement(store, submit)
        if all(run.settled for run in self.cells.values()) and all(
            interval.state != "probing" for interval in self.intervals
        ):
            self.done = True
            self._notify(
                "campaign.done",
                self.id,
                {
                    "scenario": self.spec.scenario.name,
                    "trials_executed": self.trials_executed,
                    "cells": len(self.cells),
                },
            )

    def _advance_cell(self, run: CellRun, store: JobStore) -> None:
        """Consume as many finished chain batches as are available."""
        from repro.service.store import JobState

        assert self.adaptive is not None
        while not run.settled and run.next_index < len(run.job_ids):
            try:
                record = store.get(run.job_ids[run.next_index])
            except KeyError:  # pragma: no cover - ids come from submit
                self._settle(run, store, "error: job vanished", failed=True)
                return
            if record.state == JobState.DONE:
                self._consume_batch(run, store)
            elif record.state in (JobState.FAILED, JobState.CANCELLED):
                self._settle(
                    run,
                    store,
                    f"{record.state}: {record.error or 'batch job lost'}",
                    failed=True,
                )
            else:
                return
        if not run.settled and run.next_index >= len(run.job_ids):
            self._settle(run, store, "max_trials")

    def _consume_batch(self, run: CellRun, store: JobStore) -> None:
        """Merge one finished batch into the cell's running summary and
        settle the cell when its budget or threshold is met."""
        assert self.adaptive is not None
        job_id = run.job_ids[run.next_index]
        text = store.result_text(job_id)
        try:
            n, mean, std, infeasible = parse_cell_result(text or "")
        except (ValueError, KeyError, IndexError, TypeError):
            self._settle(
                run, store, f"error: unparseable result of {job_id}",
                failed=True,
            )
            return
        run.next_index += 1
        if infeasible:
            run.infeasible = True
            self._settle(run, store, "infeasible")
            return
        batch = SummaryStats(n=n, mean=mean, std=std)
        run.stats = batch if run.stats is None else run.stats.merge(batch)
        self.trials_executed += n
        rel = run.ci_rel()
        if run.stats.n >= self.adaptive.max_trials:
            self._settle(run, store, "max_trials")
        elif (
            run.stats.n > 1
            and rel is not None
            and rel <= self.adaptive.ci_rel_threshold
        ):
            self._settle(run, store, "converged")

    def _settle(
        self,
        run: CellRun,
        store: JobStore,
        reason: str,
        failed: bool = False,
    ) -> None:
        """Mark a cell settled and cancel its unconsumed chain tail
        (the cancellation cascades through the dependency chain)."""
        run.settled = True
        run.stop_reason = reason
        run.failed = failed
        if run.next_index < len(run.job_ids):
            try:
                store.cancel(run.job_ids[run.next_index])
            except KeyError:  # pragma: no cover - ids come from submit
                pass
        self._notify(
            "campaign.cell_settled",
            self.id,
            {
                "axis_value": run.cell.axis_value,
                "fraction": run.cell.fraction,
                "technique": run.cell.technique,
                "probe": run.probe,
                "reason": reason,
                "failed": failed,
                "trials": run.trials_done,
            },
        )

    # -- refinement ----------------------------------------------------

    def _best(
        self, axis_value: Optional[float], fraction: float
    ) -> Optional[str]:
        """Winning technique at one settled grid point (None when
        every technique is infeasible or failed)."""
        entries: List[Tuple[str, float, bool]] = []
        for technique in self.technique_order:
            run = self.cells.get((axis_value, fraction, technique))
            if run is None or run.stats is None or run.failed:
                continue
            entries.append((technique, run.stats.mean, run.infeasible))
        return _best_of(entries)

    def _advance_refinement(self, store: JobStore, submit: SubmitFn) -> None:
        """Kick off and advance crossover bisection."""
        assert self.adaptive is not None
        if self.adaptive.refine_depth < 1:
            return
        for value in self.axis_values:
            if value in self._refined_values:
                continue
            base_runs = [
                self.cells.get((value, fraction, technique))
                for fraction in self.base_fractions
                for technique in self.technique_order
            ]
            if any(run is None or not run.settled for run in base_runs):
                continue
            self._refined_values.add(value)
            for lo, hi in zip(self.base_fractions, self.base_fractions[1:]):
                self._maybe_probe(
                    value, lo, hi, self.adaptive.refine_depth, store, submit
                )
        for interval in self.intervals:
            if interval.state != "probing":
                continue
            probe_runs = [
                self.cells.get(
                    (interval.axis_value, interval.probe_fraction, technique)
                )
                for technique in self.technique_order
            ]
            if any(run is None or not run.settled for run in probe_runs):
                continue
            interval.state = "done"
            best_probe = self._best(
                interval.axis_value, interval.probe_fraction
            )
            if interval.depth > 1 and best_probe is not None:
                if best_probe != self._best(interval.axis_value, interval.lo):
                    self._maybe_probe(
                        interval.axis_value,
                        interval.lo,
                        interval.probe_fraction,
                        interval.depth - 1,
                        store,
                        submit,
                    )
                if best_probe != self._best(interval.axis_value, interval.hi):
                    self._maybe_probe(
                        interval.axis_value,
                        interval.probe_fraction,
                        interval.hi,
                        interval.depth - 1,
                        store,
                        submit,
                    )

    def _maybe_probe(
        self,
        axis_value: Optional[float],
        lo: float,
        hi: float,
        depth: int,
        store: JobStore,
        submit: SubmitFn,
    ) -> None:
        """Submit a probe wave inside ``(lo, hi)`` when its endpoints
        disagree on the best technique and the bracket is wider than
        the machine's fraction resolution."""
        assert self.adaptive is not None
        if hi - lo <= self._min_width:
            return
        best_lo = self._best(axis_value, lo)
        best_hi = self._best(axis_value, hi)
        if best_lo is None or best_hi is None or best_lo == best_hi:
            return
        probe, source = self._probe_fraction(axis_value, lo, hi, best_lo, best_hi)
        if any(
            (axis_value, probe, technique) in self.cells
            for technique in self.technique_order
        ):
            probe, source = (lo + hi) / 2.0, "midpoint"
            if any(
                (axis_value, probe, technique) in self.cells
                for technique in self.technique_order
            ):
                return
        interval = RefinementInterval(
            axis_value=axis_value,
            lo=lo,
            hi=hi,
            depth=depth,
            probe_fraction=probe,
            source=source,
        )
        submitted: List[str] = []
        try:
            for technique in self.technique_order:
                cell = CampaignCell(
                    axis_value=axis_value, fraction=probe, technique=technique
                )
                run = self._submit_cell_chain(cell, probe=True, submit=submit)
                submitted.extend(run.job_ids)
        except Exception as exc:
            # Roll the half-submitted wave back; refinement is
            # best-effort on top of an already-answered grid.
            for job_id in submitted:
                try:
                    store.cancel(job_id)
                except KeyError:  # pragma: no cover - ids come from submit
                    pass
            for technique in self.technique_order:
                self.cells.pop((axis_value, probe, technique), None)
            interval.state = f"skipped: {exc}"
            self.notes.append(
                f"refinement probe at fraction {probe:g} skipped: {exc}"
            )
        self.intervals.append(interval)
        if interval.state == "probing":
            self._notify(
                "campaign.probe", self.id, interval.to_payload()
            )

    def _probe_fraction(
        self,
        axis_value: Optional[float],
        lo: float,
        hi: float,
        best_lo: str,
        best_hi: str,
    ) -> Tuple[float, str]:
        """Where to probe ``(lo, hi)``: the analytic crossover prior
        when the paper's Poisson assumptions hold and the prior falls
        strictly inside the bracket, the midpoint otherwise.  Grid
        scenarios ranking by cost or carbon get the grid-aware
        crossover locator instead — the boundary being refined is where
        the *objective* winner changes, not the efficiency winner."""
        midpoint = (lo + hi) / 2.0
        if scenario_analytic_reason(self.spec) is not None:
            return midpoint, "midpoint"
        try:
            from repro.analysis.regimes import (
                crossover_fraction,
                grid_crossover_fraction,
            )
            from repro.failures.severity import SeverityModel
            from repro.platform.presets import exascale_system
            from repro.units import years

            mtbf_years = (
                axis_value
                if self.axis == "mtbf_years" and axis_value is not None
                else self.spec.failures.mtbf_years
            )
            severity = (
                SeverityModel.from_probabilities(
                    self.spec.failures.severity_pmf
                )
                if self.spec.failures.severity_pmf is not None
                else None
            )
            total_nodes = self.spec.platform.total_nodes
            system = (
                exascale_system(total_nodes)
                if total_nodes is not None
                else exascale_system()
            )
            grid = self.spec.grid
            if grid is not None and grid.objective in ("cost", "carbon"):
                from repro.scenarios.compiler import _load_grid_traces
                from repro.scenarios.runtime import grid_context

                ctx = grid_context(self.spec, _load_grid_traces(self.spec))
                prior = grid_crossover_fraction(
                    self.spec.workload.app_type,
                    system,
                    years(mtbf_years),
                    technique_small=best_lo,
                    technique_large=best_hi,
                    objective=grid.objective,
                    price=ctx.price,
                    carbon=ctx.carbon,
                    power=ctx.power,
                    start_s=ctx.offset_s,
                    severity=severity,
                )
                if prior is not None and lo < prior < hi:
                    return float(prior), "analytic-grid"
                return midpoint, "midpoint"
            prior = crossover_fraction(
                self.spec.workload.app_type,
                system,
                years(mtbf_years),
                technique_small=best_lo,
                technique_large=best_hi,
                severity=severity,
            )
        except Exception:
            return midpoint, "midpoint"
        if prior is not None and lo < prior < hi:
            return float(prior), "analytic"
        return midpoint, "midpoint"

    # -- status --------------------------------------------------------

    def status(self, store: JobStore) -> Dict[str, Any]:
        """The ``GET /v1/campaigns/{id}`` body."""
        from repro.service.store import JobState

        payload: Dict[str, Any] = {
            "id": self.id,
            "scenario": self.spec.scenario.name,
            "spec_sha256": self.sha256,
            "notes": list(self.notes),
            "adaptive": (
                self.adaptive.to_payload()
                if self.adaptive is not None
                else None
            ),
        }
        job_states: Dict[str, int] = {state: 0 for state in JobState.ALL}
        for job_id in self.all_job_ids():
            try:
                job_states[store.get(job_id).state] += 1
            except KeyError:  # pragma: no cover - ids come from submit
                pass
        payload["jobs"] = {
            "total": sum(job_states.values()),
            "by_state": job_states,
        }
        if self.adaptive is None:
            units = []
            terminal = True
            for unit in self.static_units:
                try:
                    record = store.get(unit["job_id"])
                except KeyError:  # pragma: no cover - ids come from submit
                    continue
                terminal = terminal and record.state in JobState.TERMINAL
                units.append(
                    {"label": unit["label"], "job": record.to_payload()}
                )
            payload["units"] = units
            payload["state"] = "done" if terminal else "running"
            return payload

        def sort_key(run: CellRun) -> Tuple:
            value = run.cell.axis_value
            return (
                (0, 0.0) if value is None else (1, value),
                run.cell.fraction,
                self.technique_order.index(run.cell.technique),
            )

        runs = sorted(self.cells.values(), key=sort_key)
        payload["cells"] = [run.to_payload() for run in runs]
        payload["refinements"] = [
            interval.to_payload() for interval in self.intervals
        ]
        exhaustive = len(self._base_cells) * self.adaptive.max_trials
        payload["trials"] = {
            "executed": self.trials_executed,
            "exhaustive": exhaustive,
            "reduction": (
                exhaustive / self.trials_executed
                if self.trials_executed
                else None
            ),
        }
        payload["state"] = "done" if self.done else "running"
        payload["table"] = self.render_table() if self.done else None
        return payload

    def render_table(self) -> str:
        """The base-grid winning-technique table (probes refine the
        crossover brackets but keep the grid comparable to an
        exhaustive run of the same spec)."""
        best = {
            (value, fraction): self._best(value, fraction)
            for value in self.axis_values
            for fraction in self.base_fractions
        }
        return render_best_technique_table(
            self.axis, self.axis_values, self.base_fractions, best
        )


class CampaignRegistry:
    """The service's in-memory campaign table.

    Jobs are durable in the store; the campaign bookkeeping (cell
    summaries, refinement state) lives in process memory — a restarted
    service keeps every submitted job but forgets campaign-level
    status, which ``docs/SERVICE.md`` documents as a known limitation.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._campaigns: Dict[str, Campaign] = {}

    def add(self, campaign: Campaign) -> None:
        """Register *campaign* (id collisions are a programming error)."""
        with self._lock:
            self._campaigns[campaign.id] = campaign

    def get(self, campaign_id: str) -> Campaign:
        """The campaign with *campaign_id*; raises
        :class:`UnknownCampaign` if absent."""
        with self._lock:
            try:
                return self._campaigns[campaign_id]
            except KeyError:
                raise UnknownCampaign(campaign_id) from None

    def status(self, campaign_id: str, store: JobStore) -> Dict[str, Any]:
        """Status payload of one campaign (see :meth:`Campaign.status`)."""
        with self._lock:
            try:
                campaign = self._campaigns[campaign_id]
            except KeyError:
                raise UnknownCampaign(campaign_id) from None
            return campaign.status(store)

    def step_all(
        self,
        store: JobStore,
        submit: SubmitFn,
        notify: Optional[NotifyFn] = None,
    ) -> None:
        """One controller tick over every adaptive campaign."""
        with self._lock:
            for campaign in self._campaigns.values():
                campaign.step(store, submit, notify=notify)

    def pending(self) -> bool:
        """Whether any adaptive campaign still has work in flight."""
        with self._lock:
            return any(
                campaign.adaptive is not None and not campaign.done
                for campaign in self._campaigns.values()
            )

    def summary(self) -> Dict[str, Any]:
        """The ``campaigns`` block of ``GET /v1/metrics``: a light
        progress list (no store reads) the dashboard renders from."""
        with self._lock:
            campaigns: List[Dict[str, Any]] = []
            for campaign in self._campaigns.values():
                entry: Dict[str, Any] = {
                    "id": campaign.id,
                    "scenario": campaign.spec.scenario.name,
                    "adaptive": campaign.adaptive is not None,
                }
                if campaign.adaptive is not None:
                    entry.update(
                        state="done" if campaign.done else "running",
                        cells=len(campaign.cells),
                        cells_settled=sum(
                            1
                            for run in campaign.cells.values()
                            if run.settled
                        ),
                        trials_executed=campaign.trials_executed,
                    )
                else:
                    entry.update(
                        state="static", units=len(campaign.static_units)
                    )
                campaigns.append(entry)
            return {
                "total": len(campaigns),
                "active": sum(
                    1
                    for campaign in self._campaigns.values()
                    if campaign.adaptive is not None and not campaign.done
                ),
                "campaigns": campaigns,
            }
