"""A job-store decorator that narrates the job lifecycle.

:class:`TelemetryStore` wraps any :class:`repro.service.store
.JobStore` and publishes one telemetry event per state transition —
``job.submitted``, ``job.claimed``, ``job.done``, ``job.failed``,
``job.retrying`` (a failed attempt that was requeued),
``job.released``, ``job.cancelled``, ``job.cancel_requested``,
``site.registered``, ``site.draining`` — to a
:class:`repro.telemetry.hub.TelemetryHub`.

Wrapping the store is the one choke point both execution paths share:
the in-process worker pool calls the store directly and remote agents
reach it through the fleet API, so a single decorator makes every
job's lifecycle observable regardless of where it runs.  Events are
published *after* the underlying transition commits, so a stream
consumer that reacts to ``job.done`` always sees the terminal record
(and its result) on a follow-up GET.

Everything not overridden delegates verbatim; the wrapper adds no
locking of its own (the hub's ring is thread-safe and the delegate
already serialises its transitions).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence

from repro.telemetry.hub import TelemetryHub

# Importing repro.service.store at module level would execute the
# repro.service package __init__ (which imports app, which imports
# this package) — so the store types stay TYPE_CHECKING-only and the
# state/policy strings are inlined (the store stores them verbatim;
# tests pin the wrapper against the real constants).
if TYPE_CHECKING:
    from repro.service.store import JobRecord, SiteRecord

#: Mirrors :class:`repro.service.store.JobState` / ``DepPolicy``.
_CANCELLED = "cancelled"
_QUEUED = "queued"
_TERMINAL = ("done", "failed", "cancelled")
_CASCADE = "cascade"


def _error_line(error: str, limit: int = 200) -> str:
    """The first line of an error blob, bounded for the event feed."""
    line = (error or "").strip().splitlines()
    return line[0][:limit] if line else ""


class TelemetryStore:
    """See module docstring.  Not a :class:`JobStore` subclass on
    purpose: ``__getattr__`` delegation keeps it transparently in sync
    with the delegate's full surface (attributes included)."""

    def __init__(self, store: Any, hub: TelemetryHub) -> None:
        self._store = store
        self._hub = hub

    def __getattr__(self, name: str) -> Any:
        return getattr(self._store, name)

    # -- submission ----------------------------------------------------

    def submit(
        self,
        spec: Dict[str, Any],
        job_id: Optional[str] = None,
        depends_on: Optional[Sequence[str]] = None,
        dep_policy: str = _CASCADE,
    ) -> str:
        """Delegate, then publish ``job.submitted``."""
        new_id = self._store.submit(
            spec, job_id=job_id, depends_on=depends_on, dep_policy=dep_policy
        )
        try:
            state = self._store.get(new_id).state
        except KeyError:  # pragma: no cover - just submitted
            state = _QUEUED
        self._hub.publish(
            "job.submitted",
            job_id=new_id,
            data={"state": state, "experiment": spec.get("experiment")},
        )
        return new_id

    # -- claiming and completion ---------------------------------------

    def claim_batch(
        self,
        worker: str,
        lease_s: float,
        limit: int,
        site: Optional[str] = None,
    ) -> List[JobRecord]:
        """Delegate, then publish ``job.claimed`` per leased job."""
        batch = self._store.claim_batch(worker, lease_s, limit, site=site)
        for record in batch:
            self._hub.publish(
                "job.claimed",
                job_id=record.id,
                site=site,
                data={"worker": worker, "attempts": record.attempts},
            )
        return batch

    def claim(
        self, worker: str, lease_s: float, site: Optional[str] = None
    ) -> Optional[JobRecord]:
        """Single-job convenience over :meth:`claim_batch`."""
        batch = self.claim_batch(worker, lease_s, 1, site=site)
        return batch[0] if batch else None

    def complete(self, job_id: str, worker: str, result: str) -> bool:
        """Delegate, then publish ``job.done`` (or ``job.cancelled``
        when a cancellation raced the completion)."""
        accepted = self._store.complete(job_id, worker, result)
        if accepted:
            state = self._final_state(job_id)
            kind = (
                "job.cancelled" if state == _CANCELLED else "job.done"
            )
            self._hub.publish(kind, job_id=job_id, data={"state": state})
        return accepted

    def fail(self, job_id: str, worker: str, error: str) -> bool:
        """Delegate, then publish ``job.failed`` (``job.retrying``
        for backends that requeue failed attempts)."""
        accepted = self._store.fail(job_id, worker, error)
        if accepted:
            state = self._final_state(job_id)
            kind = "job.failed" if state in _TERMINAL else "job.retrying"
            self._hub.publish(
                kind,
                job_id=job_id,
                data={"state": state, "error": _error_line(error)},
            )
        return accepted

    def release(self, job_id: str, worker: str) -> bool:
        """Delegate, then publish ``job.released``."""
        ok = self._store.release(job_id, worker)
        if ok:
            self._hub.publish(
                "job.released", job_id=job_id, data={"worker": worker}
            )
        return ok

    def cancel(self, job_id: str) -> JobRecord:
        """Delegate, then publish ``job.cancelled`` or
        ``job.cancel_requested`` depending on where the cancel landed."""
        record = self._store.cancel(job_id)
        if record.state == _CANCELLED:
            self._hub.publish(
                "job.cancelled", job_id=job_id, data={"state": record.state}
            )
        elif record.cancel_requested:
            self._hub.publish(
                "job.cancel_requested",
                job_id=job_id,
                data={"state": record.state},
            )
        return record

    def _final_state(self, job_id: str) -> str:
        try:
            return self._store.get(job_id).state
        except KeyError:  # pragma: no cover - just transitioned
            return "unknown"

    # -- sites ---------------------------------------------------------

    def register_site(
        self, name: str, meta: Optional[Dict[str, Any]] = None
    ) -> SiteRecord:
        """Delegate, then publish ``site.registered``."""
        record = self._store.register_site(name, meta)
        self._hub.publish("site.registered", site=name)
        return record

    def drain_site(self, name: str) -> SiteRecord:
        """Delegate, then publish ``site.draining``."""
        record = self._store.drain_site(name)
        self._hub.publish("site.draining", site=name)
        return record
