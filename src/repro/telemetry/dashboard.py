"""The fleet status dashboard served at ``GET /``.

One self-contained HTML page, zero external assets (no CDN, no build
step — it must work on an air-gapped cluster head node).  Two
``EventSource`` consumers drive it:

- ``/v1/metrics/stream`` refreshes the summary cards (queue depth,
  running jobs, cache hit rate, uptime), the per-site fleet health
  table (state, ledger, heartbeat age), the campaign convergence
  list, and the telemetry-ring occupancy footer;
- ``/v1/events`` feeds the live ticker — job lifecycle transitions,
  failure injections and restarts of watched jobs, campaign progress
  — newest first, bounded to the last 200 rows.

The page is intentionally plain: rendering happens client-side from
the same JSON the API serves, so the dashboard can never disagree
with ``GET /v1/metrics``.
"""

DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro fleet status</title>
<style>
  :root { color-scheme: dark; }
  body { margin: 0; background: #14181d; color: #d8dee6;
         font: 14px/1.45 system-ui, sans-serif; }
  header { display: flex; align-items: baseline; gap: 1rem;
           padding: 0.8rem 1.2rem; background: #1b2026;
           border-bottom: 1px solid #2c333b; }
  header h1 { font-size: 1.05rem; margin: 0; font-weight: 600; }
  #conn { font-size: 0.8rem; color: #8a93a0; }
  #conn.live { color: #6fc177; }
  main { display: grid; gap: 1rem; padding: 1rem 1.2rem;
         grid-template-columns: 1fr 1fr; max-width: 1100px; }
  section { background: #1b2026; border: 1px solid #2c333b;
            border-radius: 6px; padding: 0.7rem 0.9rem; }
  section h2 { font-size: 0.8rem; margin: 0 0 0.5rem;
               text-transform: uppercase; letter-spacing: 0.06em;
               color: #8a93a0; }
  #cards { grid-column: 1 / -1; display: flex; flex-wrap: wrap;
           gap: 1rem; background: none; border: none; padding: 0; }
  .card { flex: 1 1 8rem; background: #1b2026; border: 1px solid
          #2c333b; border-radius: 6px; padding: 0.6rem 0.9rem; }
  .card .v { font-size: 1.45rem; font-weight: 600; }
  .card .k { font-size: 0.75rem; color: #8a93a0; }
  table { width: 100%; border-collapse: collapse; font-size: 0.85rem; }
  th, td { text-align: left; padding: 0.25rem 0.5rem 0.25rem 0; }
  th { color: #8a93a0; font-weight: 500; }
  tr + tr td { border-top: 1px solid #242b33; }
  .ok { color: #6fc177; } .warn { color: #e0b858; }
  .bad { color: #e06c75; } .dim { color: #8a93a0; }
  #ticker { grid-column: 1 / -1; }
  #events { list-style: none; margin: 0; padding: 0; max-height: 22rem;
            overflow-y: auto; font: 12px/1.5 ui-monospace, monospace; }
  #events li { padding: 0.1rem 0; border-bottom: 1px solid #20262d;
               white-space: nowrap; overflow: hidden;
               text-overflow: ellipsis; }
  .kind { display: inline-block; min-width: 11em; }
  footer { padding: 0.4rem 1.2rem 1rem; color: #8a93a0;
           font-size: 0.75rem; }
</style>
</head>
<body>
<header>
  <h1>repro fleet status</h1>
  <span id="conn">connecting&hellip;</span>
</header>
<main>
  <section id="cards">
    <div class="card"><div class="v" id="c-queued">&ndash;</div>
      <div class="k">queued</div></div>
    <div class="card"><div class="v" id="c-running">&ndash;</div>
      <div class="k">running</div></div>
    <div class="card"><div class="v" id="c-done">&ndash;</div>
      <div class="k">completed</div></div>
    <div class="card"><div class="v" id="c-failed">&ndash;</div>
      <div class="k">failed</div></div>
    <div class="card"><div class="v" id="c-hit">&ndash;</div>
      <div class="k">cache hit rate</div></div>
    <div class="card"><div class="v" id="c-cost">&ndash;</div>
      <div class="k">grid cost (USD)</div></div>
    <div class="card"><div class="v" id="c-carbon">&ndash;</div>
      <div class="k">grid carbon (kg)</div></div>
    <div class="card"><div class="v" id="c-uptime">&ndash;</div>
      <div class="k">uptime</div></div>
  </section>
  <section>
    <h2>Sites</h2>
    <table><thead><tr><th>site</th><th>state</th><th>heartbeat</th>
      <th>inflight</th><th>done</th><th>failed</th></tr></thead>
      <tbody id="sites"><tr><td class="dim" colspan="6">no sites
      registered (local workers only)</td></tr></tbody></table>
  </section>
  <section>
    <h2>Campaigns</h2>
    <table><thead><tr><th>scenario</th><th>state</th><th>cells</th>
      <th>trials</th></tr></thead>
      <tbody id="campaigns"><tr><td class="dim" colspan="4">no
      campaigns submitted</td></tr></tbody></table>
  </section>
  <section id="ticker">
    <h2>Live events</h2>
    <ul id="events"></ul>
  </section>
</main>
<footer id="ring">telemetry ring: &ndash;</footer>
<script>
"use strict";
var $ = function (id) { return document.getElementById(id); };
var esc = function (s) {
  return String(s).replace(/[&<>"]/g, function (c) {
    return {"&": "&amp;", "<": "&lt;", ">": "&gt;", '"': "&quot;"}[c];
  });
};
function fmtDur(s) {
  if (s == null) return "\\u2013";
  s = Math.floor(s);
  if (s < 90) return s + "s";
  if (s < 5400) return Math.floor(s / 60) + "m";
  return Math.floor(s / 3600) + "h" + Math.floor((s % 3600) / 60) + "m";
}
function hbClass(age) {
  return age < 30 ? "ok" : (age < 120 ? "warn" : "bad");
}
function renderMetrics(m) {
  $("c-queued").textContent = m.queue.depth;
  $("c-running").textContent = m.queue.running;
  $("c-done").textContent = m.jobs.completed;
  $("c-failed").textContent = m.jobs.failed;
  $("c-hit").textContent = m.cache.hit_rate == null
    ? "\\u2013" : Math.round(100 * m.cache.hit_rate) + "%";
  var g = m.grid || {};
  $("c-cost").textContent = g.cells_accounted
    ? "$" + Number(g.cost_usd).toLocaleString(
        undefined, {maximumFractionDigits: 0})
    : "\\u2013";
  $("c-carbon").textContent = g.cells_accounted
    ? Number(g.carbon_g / 1000).toLocaleString(
        undefined, {maximumFractionDigits: 0})
    : "\\u2013";
  $("c-uptime").textContent = fmtDur(m.uptime_s);
  var names = Object.keys(m.sites || {}).sort();
  if (names.length) {
    $("sites").innerHTML = names.map(function (n) {
      var s = m.sites[n];
      var age = s.last_heartbeat_age_s;
      return "<tr><td>" + esc(n) + "</td><td>" + esc(s.state || "?")
        + "</td><td class=" + hbClass(age == null ? 1e9 : age) + ">"
        + fmtDur(age) + " ago</td><td>" + (s.inflight || 0)
        + "</td><td>" + (s.completed || 0) + "</td><td>"
        + (s.failed || 0) + "</td></tr>";
    }).join("");
  }
  var cs = (m.campaigns && m.campaigns.campaigns) || [];
  if (cs.length) {
    $("campaigns").innerHTML = cs.map(function (c) {
      var cells = c.adaptive
        ? c.cells_settled + "/" + c.cells + " settled"
        : (c.units || 0) + " units";
      var trials = c.adaptive ? c.trials_executed : "\\u2013";
      return "<tr><td>" + esc(c.scenario) + "</td><td class="
        + (c.state === "done" ? "ok" : "dim") + ">" + esc(c.state)
        + "</td><td>" + cells + "</td><td>" + trials + "</td></tr>";
    }).join("");
  }
  var r = m.telemetry && m.telemetry.ring;
  if (r) {
    $("ring").textContent = "telemetry ring: " + r.size + "/"
      + r.capacity + " events, seq " + r.last_seq + ", "
      + r.dropped + " dropped, " + (m.telemetry.watched_jobs || 0)
      + " watched job(s)";
  }
}
var MAX_ROWS = 200;
function tickerClass(kind) {
  if (kind === "job.failed" || kind.indexOf("Failure") >= 0) return "bad";
  if (kind === "job.retrying" || kind === "site.draining") return "warn";
  if (kind === "job.done" || kind === "campaign.done") return "ok";
  return "dim";
}
function describe(e) {
  var bits = [];
  if (e.job_id) bits.push("job " + e.job_id.slice(0, 10));
  if (e.site) bits.push("site " + e.site);
  if (e.campaign_id) bits.push("campaign " + e.campaign_id.slice(0, 8));
  var d = e.data || {};
  ["state", "worker", "technique", "fraction", "reason", "error",
   "node", "level", "downtime", "scenario"].forEach(function (k) {
    if (d[k] !== undefined && d[k] !== null) bits.push(k + "=" + d[k]);
  });
  return bits.join("  ");
}
function addEvent(e) {
  var li = document.createElement("li");
  var t = new Date(1000 * e.ts).toTimeString().slice(0, 8);
  li.innerHTML = '<span class="dim">' + t + "</span> "
    + '<span class="kind ' + tickerClass(e.kind) + '">'
    + esc(e.kind) + "</span> " + esc(describe(e));
  var list = $("events");
  list.insertBefore(li, list.firstChild);
  while (list.children.length > MAX_ROWS) {
    list.removeChild(list.lastChild);
  }
}
var metricsSource = new EventSource("/v1/metrics/stream");
metricsSource.addEventListener("metrics", function (msg) {
  renderMetrics(JSON.parse(msg.data));
  $("conn").textContent = "live";
  $("conn").className = "live";
});
metricsSource.onerror = function () {
  $("conn").textContent = "reconnecting\\u2026";
  $("conn").className = "";
};
var eventSource = new EventSource("/v1/events");
eventSource.addEventListener("event", function (msg) {
  addEvent(JSON.parse(msg.data));
});
eventSource.addEventListener("gap", function (msg) {
  var gap = JSON.parse(msg.data);
  addEvent({ts: Date.now() / 1000, kind: "feed.gap",
            data: {missed: gap.missed}});
});
</script>
</body>
</html>
"""
