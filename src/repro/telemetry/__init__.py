"""Live telemetry: ring-buffer event feed, SSE streaming, dashboard.

The subsystem that makes long service runs observable *while they
run* (ROADMAP open item 1; monitoring is a first-class resilience
pattern alongside checkpointing and replication in the HPC pattern
literature):

- :mod:`repro.telemetry.ring` — the bounded, thread-safe event ring
  with monotonic sequence numbers and dropped-event accounting;
- :mod:`repro.telemetry.hub` — the control-plane hub: the ring, the
  per-job watch registry, and the publish surface the other layers
  feed;
- :mod:`repro.telemetry.store` — the job-store decorator narrating
  every lifecycle transition (both the in-process pool and the remote
  fleet go through it);
- :mod:`repro.telemetry.forwarder` — the agent-side bounded buffer
  batching events back over ``POST /v1/sites/{name}/events``;
- :mod:`repro.telemetry.dashboard` — the dependency-free HTML/JS
  status page served at ``GET /``.

Streaming never perturbs results: live simulation-event sinks attach
only to *watched* jobs' trials (via :mod:`repro.obs.live`), so every
other simulation keeps its unobserved failure-horizon fast path, and
sinks are passive observers, so watched runs stay byte-identical too.
See ``docs/OBSERVABILITY.md`` (streaming section) and
``docs/SERVICE.md`` (API table).
"""

from repro.telemetry.forwarder import EventForwarder, ForwardingTelemetry
from repro.telemetry.hub import SKIP_SIM_EVENTS, TERMINAL_KINDS, TelemetryHub
from repro.telemetry.ring import TelemetryEvent, TelemetryRing
from repro.telemetry.store import TelemetryStore

__all__ = [
    "EventForwarder",
    "ForwardingTelemetry",
    "SKIP_SIM_EVENTS",
    "TERMINAL_KINDS",
    "TelemetryEvent",
    "TelemetryHub",
    "TelemetryRing",
    "TelemetryStore",
]
