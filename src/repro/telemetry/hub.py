"""The control-plane telemetry hub: one ring, one watch registry.

:class:`TelemetryHub` is the single point every live event flows
through on its way to SSE consumers:

- the :class:`repro.telemetry.store.TelemetryStore` wrapper publishes
  job lifecycle transitions (submitted/claimed/done/failed/...) for
  both the in-process pool and the remote fleet, because both paths
  go through the one :class:`repro.service.store.JobStore`;
- the fleet-events route feeds forwarded agent events in
  (:meth:`ingest`), tagged with the originating site;
- the in-process worker pool asks :meth:`job_sink` for a live
  simulation-event sink around each job it runs — non-None only for
  *watched* jobs, so unwatched trials never observe their bus and
  keep the failure-horizon fast path;
- the adaptive campaign controller reports progress through
  :meth:`campaign_notify`.

Watches are refcounted per job id: each open SSE stream on ``GET
/v1/jobs/{id}/events`` registers one, and the claim response tells
remote agents which of their freshly leased jobs are watched.  A
watch must exist when a job *starts executing* for its simulation
events to stream (lifecycle events always stream).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional

from repro.obs.sinks import LiveEventSink

from repro.telemetry.ring import TelemetryRing

#: Lifecycle kinds that end a job's event stream.
TERMINAL_KINDS = ("job.done", "job.failed", "job.cancelled")

#: Simulation event classes too chatty for a live feed (one
#: ``ActivitySpan`` per compute segment, one ``CheckpointTaken`` per
#: checkpoint interval — tens of thousands per trial between them);
#: both the hub's and the forwarder's job sinks drop them.  Rare,
#: decision-relevant events (``FailureInjected``, ``CheckpointFailed``,
#: restarts, recoveries) still stream; ``--trace-out`` keeps the
#: exhaustive record.
SKIP_SIM_EVENTS = ("ActivitySpan", "CheckpointTaken")


class TelemetryHub:
    """See module docstring."""

    def __init__(self, capacity: int = 2048) -> None:
        self.ring = TelemetryRing(capacity=capacity)
        self._watch_lock = threading.Lock()
        self._watches: Dict[str, int] = {}

    # -- publishing ----------------------------------------------------

    def publish(
        self,
        kind: str,
        job_id: Optional[str] = None,
        site: Optional[str] = None,
        campaign_id: Optional[str] = None,
        data: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Append one event to the ring (never blocks, never raises)."""
        self.ring.append(
            kind, job_id=job_id, site=site, campaign_id=campaign_id, data=data
        )

    def ingest(
        self, site: str, events: List[Dict[str, Any]]
    ) -> int:
        """Feed a batch of forwarded agent events in (already strictly
        parsed by :func:`repro.service.protocol.parse_site_events`);
        returns the number accepted."""
        for entry in events:
            self.publish(
                entry["kind"],
                job_id=entry.get("job_id"),
                site=site,
                data=entry.get("data"),
            )
        return len(events)

    def campaign_notify(
        self, kind: str, campaign_id: str, data: Dict[str, Any]
    ) -> None:
        """The adaptive controller's progress callback."""
        self.publish(kind, campaign_id=campaign_id, data=data)

    # -- watches -------------------------------------------------------

    def watch(self, job_id: str) -> None:
        """Register interest in *job_id*'s live simulation events."""
        with self._watch_lock:
            self._watches[job_id] = self._watches.get(job_id, 0) + 1

    def unwatch(self, job_id: str) -> None:
        """Drop one watch on *job_id* (refcounted)."""
        with self._watch_lock:
            count = self._watches.get(job_id, 0) - 1
            if count > 0:
                self._watches[job_id] = count
            else:
                self._watches.pop(job_id, None)

    def is_watched(self, job_id: str) -> bool:
        """Whether any stream currently watches *job_id*."""
        with self._watch_lock:
            return job_id in self._watches

    def watched(self) -> List[str]:
        """Every currently watched job id."""
        with self._watch_lock:
            return sorted(self._watches)

    # -- worker integration --------------------------------------------

    def job_sink(self, job_id: str) -> Optional[LiveEventSink]:
        """A live simulation-event sink for *job_id*, or None when the
        job is unwatched (so its trials keep the unobserved fast
        path).  The in-process pool activates the sink thread-locally
        around :meth:`repro.service.jobs.JobSpec.execute`."""
        if not self.is_watched(job_id):
            return None

        def emit(kind: str, record: Dict[str, Any]) -> None:
            self.publish(kind, job_id=job_id, data=record)

        return LiveEventSink(emit, skip=SKIP_SIM_EVENTS)

    def flush(self) -> None:
        """No-op: local publishes land in the ring immediately (the
        agent engine calls this uniformly; the remote counterpart,
        :class:`repro.telemetry.forwarder.ForwardingTelemetry`, ships
        its buffered batch here)."""

    # -- introspection -------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """The ``telemetry`` block of ``GET /v1/metrics``."""
        ring = self.ring
        return {
            "ring": {
                "capacity": ring.capacity,
                "size": ring.occupancy(),
                "dropped": ring.dropped,
                "last_seq": ring.last_seq,
            },
            "watched_jobs": len(self.watched()),
        }

    def close(self) -> None:
        """Wake and wind down every stream (service shutdown)."""
        self.ring.close()


#: The signature campaign controllers call back on.
CampaignNotify = Callable[[str, str, Dict[str, Any]], None]
