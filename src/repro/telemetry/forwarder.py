"""Agent-side event forwarding: remote jobs feed the same stream.

A remote ``repro agent`` runs watched jobs on another host, so its
live simulation events must travel back to the control plane before
SSE consumers can see them.  :class:`EventForwarder` is the agent half
of that path: a bounded in-memory buffer whose :meth:`offer` never
blocks the executing simulation (at capacity the oldest entry is
dropped and counted), flushed in batches over ``POST
/v1/sites/{name}/events`` from the agent's housekeeping threads
(puller tick, heartbeat, shutdown).

Delivery is best-effort by design: telemetry must never be able to
stall or fail a job.  An unreachable control plane drops the batch
(counted in :attr:`dropped`) and execution continues untouched.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Dict, List, Optional

#: Largest number of events one flush POST carries.
MAX_BATCH = 256


class EventForwarder:
    """See module docstring.

    *client* is a :class:`repro.service.client.ServiceClient`; *site*
    the agent's registered site name.
    """

    def __init__(
        self,
        client: Any,
        site: str,
        capacity: int = 2048,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.client = client
        self.site = site
        self.capacity = capacity
        self._lock = threading.Lock()
        self._buffer: deque = deque()
        self._dropped = 0
        self._forwarded = 0

    # -- producer side (simulation threads) ----------------------------

    def offer(self, kind: str, data: Optional[Dict[str, Any]] = None,
              job_id: Optional[str] = None) -> None:
        """Buffer one event; never blocks, drops oldest at capacity."""
        entry: Dict[str, Any] = {"kind": kind}
        if job_id is not None:
            entry["job_id"] = job_id
        if data:
            entry["data"] = data
        with self._lock:
            self._buffer.append(entry)
            if len(self._buffer) > self.capacity:
                self._buffer.popleft()
                self._dropped += 1

    # -- consumer side (agent housekeeping threads) --------------------

    def flush(self) -> int:
        """Ship buffered events in batches; returns how many landed.

        A failed POST drops its batch (counted) rather than retrying:
        the feed is best-effort and the buffer must never grow without
        bound against a dead control plane.
        """
        sent = 0
        while True:
            with self._lock:
                if not self._buffer:
                    return sent
                batch: List[Dict[str, Any]] = [
                    self._buffer.popleft()
                    for _ in range(min(MAX_BATCH, len(self._buffer)))
                ]
            try:
                self.client.post_site_events(self.site, batch)
            except Exception:
                with self._lock:
                    self._dropped += len(batch)
                return sent
            sent += len(batch)
            self._forwarded += len(batch)

    def close(self) -> None:
        """Final flush (agent shutdown)."""
        self.flush()

    # -- introspection -------------------------------------------------

    @property
    def dropped(self) -> int:
        """Events lost to overflow or failed flushes."""
        with self._lock:
            return self._dropped

    @property
    def forwarded(self) -> int:
        """Events successfully shipped so far."""
        return self._forwarded

    def pending(self) -> int:
        """Events currently buffered."""
        with self._lock:
            return len(self._buffer)


class ForwardingTelemetry:
    """The remote agent's telemetry surface (what ``repro agent``
    hands its :class:`repro.service.agent.WorkerAgent`).

    Mirrors the duck type of :class:`repro.telemetry.hub.TelemetryHub`
    as the agent engine sees it: :meth:`job_sink` returns a live
    simulation-event sink for watched jobs (watch status arrives with
    the claim response — see ``RemoteJobSource.is_watched``), and
    :meth:`flush` ships the buffered batch from the agent's
    housekeeping threads.
    """

    def __init__(self, forwarder: EventForwarder, is_watched) -> None:
        self.forwarder = forwarder
        self._is_watched = is_watched

    def job_sink(self, job_id: str):
        """A forwarding sink for *job_id*, or None when unwatched."""
        from repro.obs.sinks import LiveEventSink
        from repro.telemetry.hub import SKIP_SIM_EVENTS

        if not self._is_watched(job_id):
            return None

        def emit(kind: str, record: Dict[str, Any]) -> None:
            self.forwarder.offer(kind, record, job_id=job_id)

        return LiveEventSink(emit, skip=SKIP_SIM_EVENTS)

    def flush(self) -> None:
        """Ship whatever the simulations buffered since the last tick."""
        self.forwarder.flush()
