"""The bounded telemetry ring: the service's live event feed store.

One :class:`TelemetryRing` sits at the centre of the telemetry
subsystem.  Every live event — job lifecycle transitions, forwarded
agent events, in-flight simulation events of watched jobs, campaign
controller progress — is appended as a :class:`TelemetryEvent` with a
monotonically increasing sequence number.  The ring is bounded:
appends never block and never fail; once capacity is reached the
oldest event is evicted and counted as dropped, so a slow (or absent)
consumer can never back-pressure the workers that publish.

Consumers poll with :meth:`read_since` (resume from any sequence
number; an eviction gap is reported, never silently skipped) and
block efficiently with :meth:`wait_for` on the ring's condition
variable.  The SSE streaming layer is a thin loop over exactly those
two calls.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class TelemetryEvent:
    """One entry of the live feed.

    ``seq`` is process-unique and strictly increasing; ``ts`` is wall
    time (telemetry describes the service, not the simulation, so wall
    time is correct here — simulated times live inside ``data``).
    """

    seq: int
    ts: float
    kind: str
    job_id: Optional[str] = None
    site: Optional[str] = None
    campaign_id: Optional[str] = None
    data: Dict[str, Any] = field(default_factory=dict)

    def to_payload(self) -> Dict[str, Any]:
        """JSON-safe dict (None scopes omitted; what SSE ships)."""
        payload: Dict[str, Any] = {
            "seq": self.seq,
            "ts": self.ts,
            "kind": self.kind,
            "data": self.data,
        }
        if self.job_id is not None:
            payload["job_id"] = self.job_id
        if self.site is not None:
            payload["site"] = self.site
        if self.campaign_id is not None:
            payload["campaign_id"] = self.campaign_id
        return payload


class TelemetryRing:
    """Bounded, thread-safe event ring with monotonic sequencing.

    - :meth:`append` is O(1), never blocks, never raises: at capacity
      the oldest event is evicted (counted in :attr:`dropped`).
    - :meth:`read_since` returns everything after a sequence number,
      plus how many requested events were already evicted — the
      streaming layer turns a non-zero count into a ``gap`` marker.
    - :meth:`wait_for` blocks on the ring's condition variable until
      something newer than a sequence number exists (or the ring is
      closed, or the timeout elapses) — SSE heartbeats hang on the
      timeout path.
    """

    def __init__(self, capacity: int = 2048, clock=time.time) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._clock = clock
        self._events: Deque[TelemetryEvent] = deque()
        self._cond = threading.Condition()
        self._next_seq = 1
        self._dropped = 0
        self._closed = False

    # -- producers -----------------------------------------------------

    def append(
        self,
        kind: str,
        job_id: Optional[str] = None,
        site: Optional[str] = None,
        campaign_id: Optional[str] = None,
        data: Optional[Dict[str, Any]] = None,
    ) -> TelemetryEvent:
        """Append one event; evicts the oldest at capacity."""
        with self._cond:
            event = TelemetryEvent(
                seq=self._next_seq,
                ts=self._clock(),
                kind=kind,
                job_id=job_id,
                site=site,
                campaign_id=campaign_id,
                data=dict(data or {}),
            )
            self._next_seq += 1
            self._events.append(event)
            if len(self._events) > self.capacity:
                self._events.popleft()
                self._dropped += 1
            self._cond.notify_all()
            return event

    def close(self) -> None:
        """Mark the ring closed and wake every waiter (shutdown path);
        appends after close still work, but waiters stop blocking."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    # -- consumers -----------------------------------------------------

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        with self._cond:
            return self._closed

    @property
    def last_seq(self) -> int:
        """Sequence number of the newest event (0 when none yet)."""
        with self._cond:
            return self._next_seq - 1

    @property
    def dropped(self) -> int:
        """Events evicted by overflow since the ring was created."""
        with self._cond:
            return self._dropped

    def occupancy(self) -> int:
        """Events currently held (<= capacity)."""
        with self._cond:
            return len(self._events)

    def read_since(
        self, last_seq: int, limit: Optional[int] = None
    ) -> Tuple[List[TelemetryEvent], int]:
        """Events with ``seq > last_seq`` plus the eviction gap.

        Returns ``(events, missed)`` where *missed* counts requested
        events that were already evicted: non-zero exactly when
        ``last_seq`` lies before the oldest retained event's
        predecessor.  *limit* bounds the batch (None = everything).
        """
        with self._cond:
            if not self._events:
                return [], 0
            oldest = self._events[0].seq
            missed = max(0, oldest - last_seq - 1)
            events = [e for e in self._events if e.seq > last_seq]
            if limit is not None:
                events = events[:limit]
            return events, missed

    def wait_for(self, last_seq: int, timeout: float) -> bool:
        """Block until an event newer than *last_seq* exists.

        Returns True when newer events are available, False on timeout
        or when the ring has been closed (callers re-check
        :attr:`closed` and wind their streams down).
        """
        deadline = time.monotonic() + timeout
        with self._cond:
            while not self._closed and self._next_seq - 1 <= last_seq:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(remaining)
            return not self._closed and self._next_seq - 1 > last_seq
