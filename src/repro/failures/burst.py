"""Spatially correlated (burst) failures — an extension stressor.

The paper's failure model takes down one uniformly random node per
event.  Real machines also lose *groups* of adjacent nodes — a PDU, a
cooling loop, a switch — and spatial correlation interacts viciously
with the multilevel technique's and redundancy's *contiguous partner
placement*: a burst that spans both replicas of a virtual node (which
sit side by side) defeats the replication entirely, and a burst that
takes a node *and its level-2 partner* defeats the partner checkpoint.

:class:`BurstModel` draws a geometric burst width per failure event
(mean ``1/(1-p)``); width 1 with probability ``1-p`` recovers the
paper's independent model.  The burst-failure ablation bench quantifies
how quickly redundancy's advantage erodes as bursts widen.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BurstModel:
    """Geometric burst-width distribution.

    Attributes
    ----------
    continue_probability:
        p: after each struck node, the burst extends to the next
        adjacent node with probability p.  Width ~ Geometric(1-p),
        mean ``1 / (1-p)``; p = 0 gives the paper's width-1 failures.
    max_width:
        Safety cap on a single burst.
    """

    continue_probability: float = 0.0
    max_width: int = 64

    def __post_init__(self) -> None:
        if not 0.0 <= self.continue_probability < 1.0:
            raise ValueError(
                f"continue_probability must be in [0, 1), "
                f"got {self.continue_probability}"
            )
        if self.max_width < 1:
            raise ValueError(f"max_width must be >= 1, got {self.max_width}")

    @property
    def mean_width(self) -> float:
        """Expected burst width (ignoring the cap)."""
        return 1.0 / (1.0 - self.continue_probability)

    def sample_width(self, rng: np.random.Generator) -> int:
        """Draw one burst width."""
        if self.continue_probability == 0.0:
            return 1
        width = 1
        while width < self.max_width and rng.random() < self.continue_probability:
            width += 1
        return width

    @classmethod
    def independent(cls) -> "BurstModel":
        """The paper's model: every failure hits exactly one node."""
        return cls(continue_probability=0.0)

    @classmethod
    def with_mean_width(cls, mean_width: float, max_width: int = 64) -> "BurstModel":
        """Construct from a target mean width (>= 1)."""
        if mean_width < 1.0:
            raise ValueError(f"mean_width must be >= 1, got {mean_width}")
        return cls(
            continue_probability=1.0 - 1.0 / mean_width, max_width=max_width
        )
