"""Failure-rate arithmetic (Sec. III-E, Eq. 2 and Sec. IV-B).

All rates are in failures per second; MTBFs in seconds.
"""

from __future__ import annotations


def system_failure_rate(active_nodes: int, node_mtbf_s: float) -> float:
    """Eq. 2: ``lambda_s = N_s / M_n``.

    The system-wide failure rate counts only non-idle nodes.
    """
    if active_nodes < 0:
        raise ValueError(f"active_nodes must be >= 0, got {active_nodes}")
    if node_mtbf_s <= 0:
        raise ValueError(f"node_mtbf_s must be > 0, got {node_mtbf_s}")
    return active_nodes / node_mtbf_s


def application_failure_rate(app_nodes: int, node_mtbf_s: float) -> float:
    """Sec. IV-B: ``lambda_a = N_a / M_n`` — the rate at which failures
    strike a given application's allocation."""
    if app_nodes <= 0:
        raise ValueError(f"app_nodes must be > 0, got {app_nodes}")
    if node_mtbf_s <= 0:
        raise ValueError(f"node_mtbf_s must be > 0, got {node_mtbf_s}")
    return app_nodes / node_mtbf_s


def mtbf_from_rate(rate: float) -> float:
    """Mean time between failures for a Poisson process of *rate*."""
    if rate <= 0:
        raise ValueError(f"rate must be > 0, got {rate}")
    return 1.0 / rate
