"""System-wide failure injection for the datacenter simulator.

The injector runs on the DES and generates failures at the Eq. 2 rate
``lambda_s = N_s / M_n`` where ``N_s`` is the *current* number of active
nodes.  Because the active-node count changes whenever an application
maps or finishes, the rate is piecewise constant; on every change the
pending failure is cancelled and the gap re-drawn at the new rate (valid
by the memorylessness of the exponential — see
:class:`repro.rng.VariableRatePoisson`).

Each fired failure picks a uniformly random active node, draws a
severity, and hands ``(owner, Failure)`` to the registered callback,
which routes it to the owning application's execution process as an
:class:`repro.sim.Interrupt`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Hashable, Optional

import numpy as np

from repro.failures.generator import Failure
from repro.failures.rates import system_failure_rate
from repro.failures.severity import SeverityModel
from repro.platform.system import HPCSystem
from repro.rng.distributions import exponential
from repro.sim.engine import Simulator
from repro.sim.events import Event, EventKind, FAILURE_PRIORITY

if TYPE_CHECKING:  # pragma: no cover
    from repro.failures.burst import BurstModel

FailureHandler = Callable[[Hashable, Failure], None]


class FailureInjector:
    """Generates system failures and dispatches them to owners."""

    def __init__(
        self,
        sim: Simulator,
        system: HPCSystem,
        node_mtbf_s: float,
        rng: np.random.Generator,
        on_failure: FailureHandler,
        severity: Optional[SeverityModel] = None,
        burst: Optional["BurstModel"] = None,
    ) -> None:
        if node_mtbf_s <= 0:
            raise ValueError(f"node_mtbf_s must be > 0, got {node_mtbf_s}")
        self._sim = sim
        self._system = system
        self._mtbf = node_mtbf_s
        self._rng = rng
        self._on_failure = on_failure
        self._severity = severity if severity is not None else SeverityModel.default()
        self._burst = burst
        self._pending: Optional[Event] = None
        self.failures_injected = 0
        self._started = False

    @property
    def current_rate(self) -> float:
        """The instantaneous system failure rate (per second)."""
        return system_failure_rate(self._system.active_nodes, self._mtbf)

    def start(self) -> None:
        """Arm the injector (idempotent)."""
        self._started = True
        self._reschedule()

    def stop(self) -> None:
        """Disarm the injector and cancel any pending failure."""
        self._started = False
        if self._pending is not None:
            self._sim.cancel(self._pending)
            self._pending = None

    def next_fire_time(self) -> Optional[float]:
        """Absolute simulated time of the pending failure event, or
        None when the injector is disarmed or the machine is idle.

        This is the horizon the execution engine's fast path skips to.
        The pending gap is re-drawn on every allocation change, so the
        value is only valid until the caller next yields to the kernel
        — the engine handles an interrupt landing earlier than a stale
        horizon by snapshotting before each jump and replaying.
        """
        pending = self._pending
        if pending is None or pending.cancelled:
            return None
        return pending.time

    def notify_allocation_change(self) -> None:
        """Must be called whenever the active-node count changes; the
        pending failure gap is re-drawn at the new rate."""
        if self._started:
            self._reschedule()

    # -- internal -----------------------------------------------------------

    def _reschedule(self) -> None:
        if self._pending is not None:
            self._sim.cancel(self._pending)
            self._pending = None
        rate = self.current_rate
        if rate <= 0.0:
            return  # fully idle machine: failures suspended
        delay = exponential(self._rng, rate)
        self._pending = self._sim.schedule(
            delay,
            self._fire,
            kind=EventKind.FAILURE,
            priority=FAILURE_PRIORITY,
        )

    def _fire(self, event: Event) -> None:
        self._pending = None
        owner, node_id = self._system.sample_active_node(self._rng)
        severity = self._severity.sample(self._rng)
        width = 1 if self._burst is None else self._burst.sample_width(self._rng)
        self.failures_injected += 1
        if width == 1:
            self._on_failure(
                owner, Failure(time=self._sim.now, node_id=node_id, severity=severity)
            )
        else:
            self._fire_burst(node_id, severity, width)
        # The handler may have changed allocations (it usually does not —
        # applications hold their nodes through restart/recovery), so
        # re-arm from the post-handler state.
        self._reschedule()

    def _fire_burst(self, start: int, severity: int, width: int) -> None:
        """Deliver a burst of adjacent node failures, split per owner.

        A burst can straddle allocation boundaries: every affected
        application receives one failure covering its contiguous chunk
        of the burst; idle nodes in the range absorb their share.
        """
        stop = min(start + width, self._system.total_nodes)
        chunk_owner: Optional[Hashable] = None
        chunk_start = start
        for node in range(start, stop + 1):
            owner = (
                self._system.owner_of_node(node) if node < stop else None
            )
            if owner != chunk_owner:
                if chunk_owner is not None:
                    self._on_failure(
                        chunk_owner,
                        Failure(
                            time=self._sim.now,
                            node_id=chunk_start,
                            severity=severity,
                            width=node - chunk_start,
                        ),
                    )
                chunk_owner = owner
                chunk_start = node
