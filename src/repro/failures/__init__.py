"""Failure modeling: Poisson occurrences, locations, severities, and the
datacenter failure injector (Sec. III-E)."""

from repro.failures.burst import BurstModel
from repro.failures.generator import AppFailureGenerator, Failure, sample_failure_times
from repro.failures.injector import FailureInjector
from repro.failures.trace import FailureTrace, TracedFailure, record_trace
from repro.failures.rates import (
    application_failure_rate,
    mtbf_from_rate,
    system_failure_rate,
)
from repro.failures.severity import (
    MAX_SEVERITY,
    MIN_SEVERITY,
    NUM_LEVELS,
    SeverityModel,
)

__all__ = [
    "AppFailureGenerator",
    "BurstModel",
    "Failure",
    "FailureTrace",
    "TracedFailure",
    "FailureInjector",
    "MAX_SEVERITY",
    "MIN_SEVERITY",
    "NUM_LEVELS",
    "SeverityModel",
    "application_failure_rate",
    "mtbf_from_rate",
    "record_trace",
    "sample_failure_times",
    "system_failure_rate",
]
