"""Failure occurrence generation (Sec. III-E).

A failure is characterized by three independent random attributes: its
*time* (Poisson process), its *location* (uniform over active nodes) and
its *severity* (drawn from the severity PMF).  This module provides

- :class:`Failure` — the immutable failure record;
- :class:`AppFailureGenerator` — a fixed-rate stream of failures hitting
  one application (used by the Sec. V single-application studies, where
  the application's allocation is the only active part of the machine);
- the interarrival regimes (:class:`ExponentialInterarrivals`,
  :class:`WeibullInterarrivals`, :class:`LognormalInterarrivals`) — the
  renewal-gap distributions a scenario can select; the paper's Poisson
  process is the exponential default;
- :func:`sample_failure_times` — vectorized batch generation for the
  analytical validation tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Optional, Union

import numpy as np

from repro.failures.rates import application_failure_rate
from repro.failures.severity import SeverityModel
from repro.rng.distributions import (
    exponential,
    lognormal,
    lognormal_mu_for_mean,
    weibull,
    weibull_scale_for_mean,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.failures.burst import BurstModel


@dataclass(frozen=True)
class ExponentialInterarrivals:
    """The paper's failure process: gaps ~ Exp(rate) (Sec. III-E).

    Memoryless, so the analytic model's renewal-reward arguments and
    the datacenter injector's rate-change redraws are exact.
    """

    #: Only the exponential regime satisfies the analytic model's
    #: memorylessness assumption.
    memoryless = True

    def sample_gap(self, rng: np.random.Generator, rate: float) -> float:
        """One interarrival gap at the given total failure *rate*."""
        return exponential(rng, rate)


@dataclass(frozen=True)
class WeibullInterarrivals:
    """Weibull renewal gaps with the same mean ``1/rate`` as the paper's
    exponential, reshaped by *shape*.

    ``shape < 1`` models infant mortality (clustered early failures),
    ``shape > 1`` aging hardware (quiet early life, then wear-out);
    ``shape == 1`` is bit-identical to
    :class:`ExponentialInterarrivals` (same underlying NumPy variate).
    Each failure restarts the renewal clock — the standard
    renewal-process semantics for non-memoryless gaps.
    """

    shape: float = 1.0

    memoryless = False

    def __post_init__(self) -> None:
        if self.shape <= 0:
            raise ValueError(f"shape must be > 0, got {self.shape}")

    def sample_gap(self, rng: np.random.Generator, rate: float) -> float:
        """One gap with mean ``1/rate`` from the shaped Weibull."""
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        return weibull(
            rng, self.shape, weibull_scale_for_mean(self.shape, 1.0 / rate)
        )


@dataclass(frozen=True)
class LognormalInterarrivals:
    """Lognormal renewal gaps with mean ``1/rate`` and log-scale spread
    *sigma* — a heavy-tailed regime (long quiet stretches punctuated by
    clustered failures) often fit to real HPC failure logs.
    """

    sigma: float = 1.0

    memoryless = False

    def __post_init__(self) -> None:
        if self.sigma <= 0:
            raise ValueError(f"sigma must be > 0, got {self.sigma}")

    def sample_gap(self, rng: np.random.Generator, rate: float) -> float:
        """One gap with mean ``1/rate`` from the heavy-tailed lognormal."""
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        return lognormal(
            rng, lognormal_mu_for_mean(1.0 / rate, self.sigma), self.sigma
        )


#: Any renewal-gap distribution accepted by :class:`AppFailureGenerator`.
InterarrivalModel = Union[
    ExponentialInterarrivals, WeibullInterarrivals, LognormalInterarrivals
]


@dataclass(frozen=True)
class Failure:
    """One failure occurrence.

    Attributes
    ----------
    time:
        Absolute simulated time of occurrence, seconds.
    node_id:
        The failed node (an index into the owning allocation for
        single-app studies; a machine-global id in the datacenter sim).
    severity:
        Severity level, 1 (mildest) .. 3 (needs PFS recovery).
    width:
        Number of *contiguous* nodes taken down together, starting at
        ``node_id``.  1 (the default, and the paper's model) is an
        independent single-node failure; larger widths model spatially
        correlated faults (shared power/cooling/switch domains) — see
        :mod:`repro.failures.burst`.
    """

    time: float
    node_id: int
    severity: int
    width: int = 1

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"time must be >= 0, got {self.time}")
        if self.severity < 1:
            raise ValueError(f"severity must be >= 1, got {self.severity}")
        if self.width < 1:
            raise ValueError(f"width must be >= 1, got {self.width}")


class AppFailureGenerator:
    """Sequential failures striking a fixed allocation of ``nodes``.

    Failure inter-arrival ~ Exp(lambda_a) with ``lambda_a = nodes/MTBF``
    (Sec. IV-B); locations uniform over the allocation; severities from
    the given :class:`SeverityModel`.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        nodes: int,
        node_mtbf_s: float,
        severity: Optional[SeverityModel] = None,
        burst: Optional["BurstModel"] = None,
        interarrival: Optional[InterarrivalModel] = None,
    ) -> None:
        self._rng = rng
        self.nodes = nodes
        self.rate = application_failure_rate(nodes, node_mtbf_s)
        self.severity_model = severity if severity is not None else SeverityModel.default()
        self.burst_model = burst
        #: None keeps the historical direct-exponential draw (the
        #: paper's Poisson process, bit-identical to the pre-regime
        #: code); a model reshapes the renewal gaps at the same mean.
        self.interarrival = interarrival
        self._last_time = 0.0

    def _sample_width(self) -> int:
        if self.burst_model is None:
            return 1
        return self.burst_model.sample_width(self._rng)

    def next_failure(self) -> Failure:
        """Generate the next failure (advances the internal clock)."""
        self._last_time += self.next_interarrival()
        return Failure(
            time=self._last_time,
            node_id=int(self._rng.integers(0, self.nodes)),
            severity=self.severity_model.sample(self._rng),
            width=self._sample_width(),
        )

    def next_interarrival(self) -> float:
        """Only the time gap to the next failure (no location/severity).

        Useful for techniques that re-draw the gap after a recovery.
        """
        if self.interarrival is None:
            return exponential(self._rng, self.rate)
        return self.interarrival.sample_gap(self._rng, self.rate)

    def failure_at(self, time: float) -> Failure:
        """A failure record at an externally supplied *time* (location,
        severity, and width drawn from this generator's streams)."""
        return Failure(
            time=time,
            node_id=int(self._rng.integers(0, self.nodes)),
            severity=self.severity_model.sample(self._rng),
            width=self._sample_width(),
        )

    def __iter__(self) -> Iterator[Failure]:
        while True:
            yield self.next_failure()


def sample_failure_times(
    rng: np.random.Generator, rate: float, horizon_s: float
) -> np.ndarray:
    """All failure times in ``[0, horizon_s)`` for a Poisson process of
    *rate*, generated vectorized (for Monte-Carlo validation)."""
    if rate < 0:
        raise ValueError(f"rate must be >= 0, got {rate}")
    if horizon_s < 0:
        raise ValueError(f"horizon_s must be >= 0, got {horizon_s}")
    if rate == 0.0 or horizon_s == 0.0:
        return np.empty(0)
    # Draw a generous batch, extend if needed, then clip to the horizon.
    expected = rate * horizon_s
    batch = max(16, int(expected + 6 * np.sqrt(expected) + 10))
    gaps = rng.exponential(1.0 / rate, size=batch)
    times = np.cumsum(gaps)
    while times[-1] < horizon_s:  # pragma: no cover - statistically rare
        more = rng.exponential(1.0 / rate, size=batch)
        times = np.concatenate([times, times[-1] + np.cumsum(more)])
    return times[times < horizon_s]
