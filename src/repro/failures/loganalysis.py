"""Failure-log analysis: estimating the failure model from observations.

Sec. III-E builds the severity PMF from measured logs: "the probability
of experiencing a failure at a failure severity of level j is
determined according to the ratio of the number of failures that occur
at each failure severity level, lambda_Lj, to the total number of
failures, lambda_Lt, measured for an extended interval of time" (the
paper uses BlueGene/L logs via Moody et al.).  This module implements
that estimation step — the inverse of the failure generator — so a user
with their own machine's logs can configure the simulator from data:

    summary = analyze_failure_log(failures, duration_s=..., nodes=...)
    severity = summary.severity_model()
    config = SingleAppConfig(node_mtbf_s=summary.node_mtbf_s, ...)

Round-trip correctness (generate -> estimate recovers the parameters)
is covered by the test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.failures.generator import Failure
from repro.failures.severity import MAX_SEVERITY, SeverityModel


@dataclass(frozen=True)
class FailureLogSummary:
    """Estimated failure-model parameters from one observation window.

    Attributes
    ----------
    count:
        Failures observed.
    duration_s:
        Observation window length.
    nodes:
        Number of nodes the window covers (None if unknown; per-node
        quantities are then unavailable).
    severity_counts:
        Observed failures per severity level (lambda_Lj of Sec. III-E).
    """

    count: int
    duration_s: float
    nodes: Optional[int]
    severity_counts: Tuple[int, ...]

    @property
    def system_rate(self) -> float:
        """Estimated system failure rate lambda_s, failures/second."""
        return self.count / self.duration_s

    @property
    def system_mtbf_s(self) -> float:
        """Estimated system MTBF (inf when no failures observed)."""
        if self.count == 0:
            return math.inf
        return self.duration_s / self.count

    @property
    def node_mtbf_s(self) -> float:
        """Estimated per-node MTBF M_n (Eq. 2 inverted)."""
        if self.nodes is None:
            raise ValueError("per-node MTBF needs the node count")
        return self.system_mtbf_s * self.nodes

    def rate_ci95(self) -> Tuple[float, float]:
        """Normal-approximation 95% CI for the system rate (a Poisson
        count has variance equal to its mean)."""
        if self.count == 0:
            return (0.0, 3.689 / self.duration_s)  # exact upper for k=0
        half = 1.96 * math.sqrt(self.count) / self.duration_s
        return (max(0.0, self.system_rate - half), self.system_rate + half)

    def severity_ratios(self) -> Tuple[float, ...]:
        """lambda_Lj / lambda_Lt, the Sec. III-E PMF estimate."""
        if self.count == 0:
            raise ValueError("cannot estimate severities from an empty log")
        return tuple(c / self.count for c in self.severity_counts)

    def severity_model(self) -> SeverityModel:
        """A :class:`SeverityModel` built from the observed ratios."""
        return SeverityModel.from_probabilities(self.severity_ratios())

    def __str__(self) -> str:
        parts = [
            f"{self.count} failures over {self.duration_s:.3g} s",
            f"system MTBF {self.system_mtbf_s:.3g} s",
        ]
        if self.nodes is not None:
            parts.append(f"node MTBF {self.node_mtbf_s:.3g} s ({self.nodes} nodes)")
        if self.count:
            ratios = ", ".join(f"{r:.3f}" for r in self.severity_ratios())
            parts.append(f"severity ratios ({ratios})")
        return "; ".join(parts)


def analyze_failure_log(
    failures: Sequence[Failure],
    duration_s: float,
    nodes: Optional[int] = None,
    levels: int = MAX_SEVERITY,
) -> FailureLogSummary:
    """Estimate the failure model from an observed log.

    Parameters
    ----------
    failures:
        Observed failures; must fall inside ``[0, duration_s)``.
    duration_s:
        Length of the observation window ("an extended interval of
        time", Sec. III-E).
    nodes:
        Active node count over the window, if known (enables the
        per-node MTBF estimate via Eq. 2).
    levels:
        Number of severity levels to bin into.
    """
    if duration_s <= 0:
        raise ValueError(f"duration_s must be > 0, got {duration_s}")
    if nodes is not None and nodes <= 0:
        raise ValueError(f"nodes must be > 0, got {nodes}")
    if levels < 1:
        raise ValueError(f"levels must be >= 1, got {levels}")
    counts = [0] * levels
    for failure in failures:
        if not 0 <= failure.time < duration_s:
            raise ValueError(
                f"failure at t={failure.time} outside [0, {duration_s})"
            )
        if failure.severity > levels:
            raise ValueError(
                f"failure severity {failure.severity} exceeds {levels} levels"
            )
        counts[failure.severity - 1] += 1
    return FailureLogSummary(
        count=len(failures),
        duration_s=duration_s,
        nodes=nodes,
        severity_counts=tuple(counts),
    )


def interarrival_statistics(failures: Sequence[Failure]) -> Dict[str, float]:
    """Mean/CV of inter-arrival gaps — a quick exponentiality check
    (a Poisson process has coefficient of variation ~1)."""
    if len(failures) < 2:
        raise ValueError("need at least two failures for inter-arrival stats")
    times = sorted(f.time for f in failures)
    gaps = [b - a for a, b in zip(times, times[1:])]
    mean = sum(gaps) / len(gaps)
    if mean == 0:
        raise ValueError("degenerate log: all failures simultaneous")
    variance = sum((g - mean) ** 2 for g in gaps) / max(1, len(gaps) - 1)
    return {
        "mean_gap_s": mean,
        "cv": math.sqrt(variance) / mean,
        "count": float(len(gaps)),
    }
