"""Failure traces: record once, replay everywhere.

The paper compares techniques "using the same sets of arriving
applications" (Sec. VI); the analogous variance-reduction device for
the Sec. V studies is to expose every technique to the *same failure
realization*.  A :class:`FailureTrace` stores failures in a
technique-independent form — absolute time, location as a uniform [0,1)
draw (scaled to whatever node count the consumer uses), and severity —
so one trace drives Checkpoint Restart and Redundancy alike even though
they occupy different numbers of physical nodes.

Used by :func:`repro.core.paired.paired_compare` for common-random-
numbers comparisons, by the scenario engine's trace-replay failure
regime, and handy for regression debugging (replay the exact failure
sequence that produced an anomaly).

Traces round-trip through a versioned JSON-Lines file format
(:func:`save_trace` / :func:`load_trace`): one header record naming the
format, version, unit rate, and horizon, then one record per failure.
Floats serialise with full ``repr`` precision, so a loaded trace
replays bit-identically to the recorded one at any node count.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.failures.generator import Failure
from repro.failures.severity import SeverityModel
from repro.rng.distributions import exponential


@dataclass(frozen=True)
class TracedFailure:
    """One technique-independent failure record."""

    time: float
    location_u: float  # uniform [0, 1) draw; scaled by the consumer
    severity: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"time must be >= 0, got {self.time}")
        if not 0.0 <= self.location_u < 1.0:
            raise ValueError(f"location_u must be in [0, 1), got {self.location_u}")
        if self.severity < 1:
            raise ValueError(f"severity must be >= 1, got {self.severity}")

    def materialize(self, nodes: int) -> Failure:
        """Bind the failure to an allocation of *nodes* physical nodes."""
        if nodes <= 0:
            raise ValueError(f"nodes must be > 0, got {nodes}")
        return Failure(
            time=self.time,
            node_id=int(self.location_u * nodes),
            severity=self.severity,
        )


@dataclass(frozen=True)
class FailureTrace:
    """An ordered failure realization over ``[0, horizon_s)``.

    The per-node rate is part of the trace's identity: a trace recorded
    at ``unit_rate`` failures/second *per node* is replayed against a
    ``nodes``-node allocation by time-scaling — a Poisson process of
    rate ``n * r`` is a rate-``r`` process with time compressed by
    ``n`` — so the same realization drives allocations of any size.
    """

    unit_rate: float  # failures per second per node
    horizon_s: float  # horizon in *unit* (single-node) time
    failures: Tuple[TracedFailure, ...]

    def __post_init__(self) -> None:
        if self.unit_rate <= 0:
            raise ValueError(f"unit_rate must be > 0, got {self.unit_rate}")
        if self.horizon_s <= 0:
            raise ValueError(f"horizon_s must be > 0, got {self.horizon_s}")
        times = [f.time for f in self.failures]
        if times != sorted(times):
            raise ValueError("failures must be in non-decreasing time order")
        if times and times[-1] >= self.horizon_s:
            raise ValueError("failures must fall inside the horizon")

    def __len__(self) -> int:
        return len(self.failures)

    def scaled(self, nodes: int) -> Iterator[Failure]:
        """Failures bound to a *nodes*-node allocation, with times
        compressed by the node count (rate ``nodes * unit_rate``)."""
        if nodes <= 0:
            raise ValueError(f"nodes must be > 0, got {nodes}")
        for traced in self.failures:
            yield Failure(
                time=traced.time / nodes,
                node_id=int(traced.location_u * nodes),
                severity=traced.severity,
            )

    def scaled_horizon(self, nodes: int) -> float:
        """The replay horizon for a *nodes*-node allocation."""
        return self.horizon_s / nodes


def record_trace(
    rng: np.random.Generator,
    node_mtbf_s: float,
    horizon_s: float,
    severity: Optional[SeverityModel] = None,
) -> FailureTrace:
    """Sample a single-node failure realization over ``[0, horizon_s)``.

    ``horizon_s`` is in *single-node* time; when replayed against an
    ``n``-node allocation it covers ``horizon_s / n`` seconds of
    simulated time (see :meth:`FailureTrace.scaled`).
    """
    if node_mtbf_s <= 0:
        raise ValueError(f"node_mtbf_s must be > 0, got {node_mtbf_s}")
    if horizon_s <= 0:
        raise ValueError(f"horizon_s must be > 0, got {horizon_s}")
    severity = severity if severity is not None else SeverityModel.default()
    rate = 1.0 / node_mtbf_s
    failures: List[TracedFailure] = []
    t = exponential(rng, rate)
    while t < horizon_s:
        failures.append(
            TracedFailure(
                time=t,
                location_u=float(rng.random()),
                severity=severity.sample(rng),
            )
        )
        t += exponential(rng, rate)
    return FailureTrace(
        unit_rate=rate, horizon_s=horizon_s, failures=tuple(failures)
    )


# ---------------------------------------------------------------------------
# Versioned JSONL persistence
# ---------------------------------------------------------------------------

#: Format marker in the header record of every trace file.
TRACE_FORMAT = "repro-failure-trace"

#: Bumped whenever the on-disk layout changes; mismatches are errors,
#: never silent misreads.
TRACE_FORMAT_VERSION = 1


class TraceFormatError(ValueError):
    """A malformed or version-skewed trace file; one-line message."""


def trace_to_jsonl(trace: FailureTrace) -> str:
    """The canonical JSONL text of *trace* (what :func:`save_trace`
    writes); stable byte-for-byte for equal traces."""
    lines = [
        json.dumps(
            {
                "format": TRACE_FORMAT,
                "version": TRACE_FORMAT_VERSION,
                "unit_rate": trace.unit_rate,
                "horizon_s": trace.horizon_s,
                "failures": len(trace),
            },
            sort_keys=True,
            separators=(",", ":"),
        )
    ]
    for f in trace.failures:
        lines.append(
            json.dumps(
                {"t": f.time, "u": f.location_u, "s": f.severity},
                sort_keys=True,
                separators=(",", ":"),
            )
        )
    return "\n".join(lines) + "\n"


def trace_digest(trace: FailureTrace) -> str:
    """SHA-256 of the canonical JSONL text — the trace's identity for
    cache keys and provenance stamps."""
    return hashlib.sha256(trace_to_jsonl(trace).encode("utf-8")).hexdigest()


def save_trace(trace: FailureTrace, path: "os.PathLike | str") -> None:
    """Write *trace* to *path* in the versioned JSONL format."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(trace_to_jsonl(trace))


def trace_from_jsonl(text: str, source: str = "<trace>") -> FailureTrace:
    """Parse the JSONL text of a trace (inverse of
    :func:`trace_to_jsonl`).

    Raises :class:`TraceFormatError` with a one-line message on any
    malformed header, record, or version mismatch (the scenario
    validator surfaces it field-qualified); *source* names the origin
    in the message.
    """
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise TraceFormatError(f"{source}: empty trace file")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"{source}: header is not valid JSON: {exc}")
    if not isinstance(header, dict) or header.get("format") != TRACE_FORMAT:
        raise TraceFormatError(
            f"{source}: not a {TRACE_FORMAT} file (missing format header)"
        )
    if header.get("version") != TRACE_FORMAT_VERSION:
        raise TraceFormatError(
            f"{source}: trace format version {header.get('version')!r} "
            f"unsupported (expected {TRACE_FORMAT_VERSION})"
        )
    declared = header.get("failures")
    if not isinstance(declared, int) or declared != len(lines) - 1:
        raise TraceFormatError(
            f"{source}: header declares {declared!r} failures "
            f"but the file holds {len(lines) - 1} (truncated?)"
        )
    failures: List[TracedFailure] = []
    for number, line in enumerate(lines[1:], start=2):
        try:
            record = json.loads(line)
            failures.append(
                TracedFailure(
                    time=float(record["t"]),
                    location_u=float(record["u"]),
                    severity=int(record["s"]),
                )
            )
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise TraceFormatError(f"{source}: line {number}: bad record: {exc}")
    try:
        return FailureTrace(
            unit_rate=float(header["unit_rate"]),
            horizon_s=float(header["horizon_s"]),
            failures=tuple(failures),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceFormatError(f"{source}: invalid trace: {exc}")


def load_trace(path: "os.PathLike | str") -> FailureTrace:
    """Read a trace written by :func:`save_trace`.

    Raises :class:`TraceFormatError` with a one-line message on any
    unreadable file or malformed content.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
    except OSError as exc:
        raise TraceFormatError(f"cannot read trace file: {exc}") from None
    return trace_from_jsonl(text, source=str(path))
