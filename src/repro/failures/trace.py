"""Failure traces: record once, replay everywhere.

The paper compares techniques "using the same sets of arriving
applications" (Sec. VI); the analogous variance-reduction device for
the Sec. V studies is to expose every technique to the *same failure
realization*.  A :class:`FailureTrace` stores failures in a
technique-independent form — absolute time, location as a uniform [0,1)
draw (scaled to whatever node count the consumer uses), and severity —
so one trace drives Checkpoint Restart and Redundancy alike even though
they occupy different numbers of physical nodes.

Used by :func:`repro.core.paired.paired_compare` for common-random-
numbers comparisons, and handy for regression debugging (replay the
exact failure sequence that produced an anomaly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.failures.generator import Failure
from repro.failures.severity import SeverityModel
from repro.rng.distributions import exponential


@dataclass(frozen=True)
class TracedFailure:
    """One technique-independent failure record."""

    time: float
    location_u: float  # uniform [0, 1) draw; scaled by the consumer
    severity: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"time must be >= 0, got {self.time}")
        if not 0.0 <= self.location_u < 1.0:
            raise ValueError(f"location_u must be in [0, 1), got {self.location_u}")
        if self.severity < 1:
            raise ValueError(f"severity must be >= 1, got {self.severity}")

    def materialize(self, nodes: int) -> Failure:
        """Bind the failure to an allocation of *nodes* physical nodes."""
        if nodes <= 0:
            raise ValueError(f"nodes must be > 0, got {nodes}")
        return Failure(
            time=self.time,
            node_id=int(self.location_u * nodes),
            severity=self.severity,
        )


@dataclass(frozen=True)
class FailureTrace:
    """An ordered failure realization over ``[0, horizon_s)``.

    The per-node rate is part of the trace's identity: a trace recorded
    at ``unit_rate`` failures/second *per node* is replayed against a
    ``nodes``-node allocation by time-scaling — a Poisson process of
    rate ``n * r`` is a rate-``r`` process with time compressed by
    ``n`` — so the same realization drives allocations of any size.
    """

    unit_rate: float  # failures per second per node
    horizon_s: float  # horizon in *unit* (single-node) time
    failures: Tuple[TracedFailure, ...]

    def __post_init__(self) -> None:
        if self.unit_rate <= 0:
            raise ValueError(f"unit_rate must be > 0, got {self.unit_rate}")
        if self.horizon_s <= 0:
            raise ValueError(f"horizon_s must be > 0, got {self.horizon_s}")
        times = [f.time for f in self.failures]
        if times != sorted(times):
            raise ValueError("failures must be in non-decreasing time order")
        if times and times[-1] >= self.horizon_s:
            raise ValueError("failures must fall inside the horizon")

    def __len__(self) -> int:
        return len(self.failures)

    def scaled(self, nodes: int) -> Iterator[Failure]:
        """Failures bound to a *nodes*-node allocation, with times
        compressed by the node count (rate ``nodes * unit_rate``)."""
        if nodes <= 0:
            raise ValueError(f"nodes must be > 0, got {nodes}")
        for traced in self.failures:
            yield Failure(
                time=traced.time / nodes,
                node_id=int(traced.location_u * nodes),
                severity=traced.severity,
            )

    def scaled_horizon(self, nodes: int) -> float:
        """The replay horizon for a *nodes*-node allocation."""
        return self.horizon_s / nodes


def record_trace(
    rng: np.random.Generator,
    node_mtbf_s: float,
    horizon_s: float,
    severity: Optional[SeverityModel] = None,
) -> FailureTrace:
    """Sample a single-node failure realization over ``[0, horizon_s)``.

    ``horizon_s`` is in *single-node* time; when replayed against an
    ``n``-node allocation it covers ``horizon_s / n`` seconds of
    simulated time (see :meth:`FailureTrace.scaled`).
    """
    if node_mtbf_s <= 0:
        raise ValueError(f"node_mtbf_s must be > 0, got {node_mtbf_s}")
    if horizon_s <= 0:
        raise ValueError(f"horizon_s must be > 0, got {horizon_s}")
    severity = severity if severity is not None else SeverityModel.default()
    rate = 1.0 / node_mtbf_s
    failures: List[TracedFailure] = []
    t = exponential(rng, rate)
    while t < horizon_s:
        failures.append(
            TracedFailure(
                time=t,
                location_u=float(rng.random()),
                severity=severity.sample(rng),
            )
        )
        t += exponential(rng, rate)
    return FailureTrace(
        unit_rate=rate, horizon_s=horizon_s, failures=tuple(failures)
    )
