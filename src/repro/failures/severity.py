"""Failure severity levels (Sec. III-E).

A failure's severity decides which checkpoint level can recover it.
Level 1 failures (e.g. transient software faults) can be recovered from
a checkpoint in local RAM; level 2 failures (node loss) need the partner
copy; level 3 failures (correlated/multi-node loss) need the parallel
file system.  The paper samples severities from a PMF built from the
ratios lambda_Lj / lambda_Lt measured on BlueGene/L logs (via Moody et
al. [3]); the raw table is not reproduced, so :data:`DEFAULT_SEVERITY_PMF`
in :mod:`repro.constants` supplies configurable defaults (DESIGN.md
substitution #1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro import constants
from repro.rng.distributions import DiscretePMF

#: Number of checkpoint levels in the multilevel scheme of Sec. IV-C.
NUM_LEVELS = 3

#: Severity values: 1 (mildest) .. 3 (worst).
MIN_SEVERITY = 1
MAX_SEVERITY = NUM_LEVELS


@dataclass(frozen=True)
class SeverityModel:
    """Maps failure occurrences to severity levels 1..K.

    Parameters
    ----------
    pmf:
        ``P(severity = k+1) = pmf[k]``; normalized at construction.
    """

    pmf: DiscretePMF

    @classmethod
    def from_probabilities(cls, probabilities: Sequence[float]) -> "SeverityModel":
        """Build a model from raw (unnormalized) level weights."""
        return cls(DiscretePMF(probabilities))

    @classmethod
    def default(cls) -> "SeverityModel":
        """The DESIGN.md substitution-#1 default (0.80, 0.15, 0.05)."""
        return cls.from_probabilities(constants.DEFAULT_SEVERITY_PMF)

    @property
    def levels(self) -> int:
        """Number of severity levels."""
        return len(self.pmf)

    def sample(self, rng: np.random.Generator) -> int:
        """Draw one severity in {1, ..., levels}."""
        return self.pmf.sample(rng) + 1

    def probability(self, level: int) -> float:
        """P(severity == level)."""
        self._check_level(level)
        return self.pmf.probability(level - 1)

    def probability_at_least(self, level: int) -> float:
        """P(severity >= level): the fraction of failures that require a
        checkpoint of at least this level to recover."""
        self._check_level(level)
        return self.pmf.tail(level - 1)

    def level_rate(self, level: int, total_rate: float) -> float:
        """Failure rate of severity-*level* failures given the total
        failure rate (lambda_Lj = ratio_j * lambda)."""
        if total_rate < 0:
            raise ValueError(f"total_rate must be >= 0, got {total_rate}")
        return self.probability(level) * total_rate

    def _check_level(self, level: int) -> None:
        if not 1 <= level <= self.levels:
            raise ValueError(f"level must be in 1..{self.levels}, got {level}")
