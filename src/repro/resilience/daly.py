"""Optimal checkpoint intervals and expected runtimes (Young/Daly).

Eq. 4 of the paper is Daly's first-order optimum [Daly 2006]:

    tau = sqrt(2 * C / lambda) - C

where ``C`` is the checkpoint cost and ``lambda`` the application
failure rate.  This module also provides Daly's *exact* expected
completion time under exponential failures, used by the analytical
validation layer (:mod:`repro.analysis.analytic`) and by the
Resilience Selection predictor.
"""

from __future__ import annotations

import math


def young_interval(checkpoint_cost_s: float, failure_rate: float) -> float:
    """Young's first-order optimum ``sqrt(2C/lambda)`` [Young 1974].

    Daly's Eq. 4 refines this by subtracting the checkpoint cost; both
    are provided so the ablation benches can compare them in-simulator.
    """
    if checkpoint_cost_s <= 0:
        raise ValueError(f"checkpoint_cost_s must be > 0, got {checkpoint_cost_s}")
    if failure_rate <= 0:
        raise ValueError(f"failure_rate must be > 0, got {failure_rate}")
    return math.sqrt(2.0 * checkpoint_cost_s / failure_rate)


def optimal_checkpoint_interval(checkpoint_cost_s: float, failure_rate: float) -> float:
    """Eq. 4: the Daly first-order optimal compute interval between
    checkpoints, seconds.

    In the thrashing regime (failure inter-arrivals comparable to the
    checkpoint cost) Eq. 4 goes non-positive; we then fall back to the
    Young form ``sqrt(2C/lambda)`` which stays positive — the system is
    doomed to terrible efficiency either way, which is exactly the
    behaviour the paper reports for Checkpoint Restart at exascale with
    a 2.5-year MTBF (Sec. V, Fig. 3).
    """
    if checkpoint_cost_s <= 0:
        raise ValueError(f"checkpoint_cost_s must be > 0, got {checkpoint_cost_s}")
    if failure_rate <= 0:
        raise ValueError(f"failure_rate must be > 0, got {failure_rate}")
    young = young_interval(checkpoint_cost_s, failure_rate)
    daly = young - checkpoint_cost_s
    return daly if daly > 0 else young


def expected_segment_time(
    interval_s: float, checkpoint_cost_s: float, restart_s: float, failure_rate: float
) -> float:
    """Exact expected wall time to commit one checkpoint segment
    (``interval_s`` of work plus one checkpoint) under exponential
    failures of *failure_rate*, paying *restart_s* per failure and
    losing all in-segment progress.

    Standard renewal result:  E = (1/l) * e^(l*R) * (e^(l*(t+C)) - 1).
    """
    if interval_s <= 0:
        raise ValueError(f"interval_s must be > 0, got {interval_s}")
    if checkpoint_cost_s < 0:
        raise ValueError(f"checkpoint_cost_s must be >= 0, got {checkpoint_cost_s}")
    if restart_s < 0:
        raise ValueError(f"restart_s must be >= 0, got {restart_s}")
    if failure_rate < 0:
        raise ValueError(f"failure_rate must be >= 0, got {failure_rate}")
    if failure_rate == 0.0:
        return interval_s + checkpoint_cost_s
    lam = failure_rate
    return (1.0 / lam) * math.exp(lam * restart_s) * math.expm1(lam * (interval_s + checkpoint_cost_s))


def expected_completion_time(
    work_s: float,
    interval_s: float,
    checkpoint_cost_s: float,
    restart_s: float,
    failure_rate: float,
) -> float:
    """Exact expected wall time to complete ``work_s`` seconds of work
    checkpointing every ``interval_s`` seconds.

    The final partial segment (if any) is accounted with its own
    length; the last segment needs no trailing checkpoint."""
    if work_s <= 0:
        raise ValueError(f"work_s must be > 0, got {work_s}")
    full_segments, remainder = divmod(work_s, interval_s)
    full_segments = int(full_segments)
    total = 0.0
    if full_segments > 0:
        per = expected_segment_time(
            interval_s, checkpoint_cost_s, restart_s, failure_rate
        )
        total += full_segments * per
        # The last full segment does not need its checkpoint if it
        # finishes the job; subtracting the *failure-free* cost is a
        # second-order correction we keep for the remainder==0 case.
        if remainder == 0.0:
            total -= checkpoint_cost_s
    if remainder > 0.0:
        total += expected_segment_time(remainder, 0.0, restart_s, failure_rate)
    return total


def expected_efficiency(
    work_s: float,
    interval_s: float,
    checkpoint_cost_s: float,
    restart_s: float,
    failure_rate: float,
) -> float:
    """``work_s / E[completion]`` for the given checkpointing scheme."""
    elapsed = expected_completion_time(
        work_s, interval_s, checkpoint_cost_s, restart_s, failure_rate
    )
    return work_s / elapsed
