"""Grid-aware Resilience Selection: pick the cheapest plan, not the
fastest.

The paper's selector (:class:`repro.core.selection.ResilienceSelection`)
maximizes predicted node-efficiency.  This variant prices each
candidate's expected execution against time-varying grid curves and
minimizes expected **USD or gCO2 per completed work unit** instead —
one completed application run is the work unit, so every candidate is
normalized over the same delivered science and the ranking reduces to
expected cost per run.

The expectation composes the analytic renewal-reward model
(:func:`repro.analysis.analytic.predict`) with the energy split of
:func:`repro.energy.model.energy_of`: expected work, checkpoint, and
rework node-seconds become joules under the busy/idle power model
(techniques whose recovery parallelizes idle the non-recovering nodes,
which is exactly the Sec. II-D energy argument), and the joules are
charged at the curve's exact closed-form mean over the expected
execution window.  Because efficiency ranks by *time* while cost ranks
by *curve-weighted energy*, the two selectors genuinely disagree under
peaked tariffs — the crossover boundaries are located by
:mod:`repro.analysis.regimes`.

Expected restart time is folded into the rework term (the analytic
model accounts it inside ``rework_overhead``), so quotes report
``restart_j = 0``; the simulation-backed accountant
(:mod:`repro.grid.accountant`) splits it out exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.analytic import predict
from repro.energy.model import EnergyBreakdown, PowerModel
from repro.failures.severity import SeverityModel
from repro.grid.accountant import CostBreakdown, account_energy
from repro.grid.curves import Curve
from repro.platform.system import HPCSystem
from repro.resilience.base import ExecutionPlan, ResilienceTechnique
from repro.resilience.registry import datacenter_techniques
from repro.workload.application import Application

#: The objectives a grid-aware selector can minimize ("efficiency"
#: degrades to the paper's argmax-efficiency selection).
OBJECTIVES = ("efficiency", "cost", "carbon")


@dataclass(frozen=True)
class GridQuote:
    """One candidate's expected performance, energy, and grid bill."""

    technique: str
    nodes: int
    expected_elapsed_s: float
    expected_efficiency: float
    energy: EnergyBreakdown
    cost: CostBreakdown

    @property
    def usd_per_unit(self) -> float:
        """Expected USD per completed work unit (one finished run)."""
        return self.cost.total_usd

    @property
    def g_per_unit(self) -> float:
        """Expected gCO2 per completed work unit (one finished run)."""
        return self.cost.total_g

    def objective_value(self, objective: str) -> float:
        """The quantity a selector minimizes under *objective*."""
        if objective == "cost":
            return self.usd_per_unit
        if objective == "carbon":
            return self.g_per_unit
        if objective == "efficiency":
            return -self.expected_efficiency
        raise ValueError(
            f"unknown objective {objective!r} "
            f"(choose from {', '.join(OBJECTIVES)})"
        )


def expected_energy(
    plan: ExecutionPlan,
    node_mtbf_s: float,
    severity: Optional[SeverityModel] = None,
    power: PowerModel = PowerModel(),
) -> EnergyBreakdown:
    """The analytic expectation of :func:`repro.energy.model.energy_of`.

    Uses the same recovery-idling rule as the simulation-backed
    accountant: when the plan parallelizes recovery, only the
    recovering cohort burns busy power during rework and the rest of
    the allocation idles.
    """
    prediction = predict(plan, node_mtbf_s, severity)
    work_s = plan.effective_work_s
    nodes = plan.nodes_required
    work_j = work_s * nodes * power.busy_w
    checkpoint_j = (
        work_s * prediction.checkpoint_overhead * nodes * power.busy_w
    )
    rework_s = work_s * prediction.rework_overhead
    if plan.recovery_speedup > 1.0:
        busy_nodes = min(nodes, max(1.0, plan.recovery_speedup))
        rework_j = rework_s * (
            busy_nodes * power.busy_w + (nodes - busy_nodes) * power.idle_w
        )
    else:
        rework_j = rework_s * nodes * power.busy_w
    return EnergyBreakdown(
        work_j=work_j,
        rework_j=rework_j,
        checkpoint_j=checkpoint_j,
        restart_j=0.0,
    )


def quote(
    technique: ResilienceTechnique,
    app: Application,
    system: HPCSystem,
    node_mtbf_s: float,
    severity: Optional[SeverityModel] = None,
    power: PowerModel = PowerModel(),
    price: Optional[Curve] = None,
    carbon: Optional[Curve] = None,
    start_s: float = 0.0,
) -> GridQuote:
    """Expected efficiency, energy, and grid bill of one candidate.

    The execution window is ``[start_s, start_s + E[elapsed])`` on the
    curves' clock, so the same plan quoted at off-peak and at peak
    start times prices differently.
    """
    plan = technique.plan(app, system, node_mtbf_s, severity)
    prediction = predict(plan, node_mtbf_s, severity)
    energy = expected_energy(plan, node_mtbf_s, severity, power)
    cost = account_energy(
        energy,
        t0=start_s,
        t1=start_s + prediction.expected_elapsed_s,
        price=price,
        carbon=carbon,
    )
    return GridQuote(
        technique=technique.name,
        nodes=plan.nodes_required,
        expected_elapsed_s=prediction.expected_elapsed_s,
        expected_efficiency=prediction.expected_efficiency,
        energy=energy,
        cost=cost,
    )


class GridAwareSelection:
    """Per-application argmin-expected-cost selection.

    The grid-aware sibling of :class:`repro.core.selection
    .ResilienceSelection` (same :class:`~repro.core.selection
    .TechniqueSelector` protocol, same feasibility filtering, same
    first-in-order tie-breaking), ranking by expected USD or gCO2 per
    completed work unit under the configured curves; with
    ``objective="efficiency"`` it degrades to the paper's selection
    exactly.
    """

    def __init__(
        self,
        node_mtbf_s: float,
        objective: str = "cost",
        price: Optional[Curve] = None,
        carbon: Optional[Curve] = None,
        power: PowerModel = PowerModel(),
        start_s: float = 0.0,
        candidates: Optional[Sequence[ResilienceTechnique]] = None,
        severity: Optional[SeverityModel] = None,
    ) -> None:
        if node_mtbf_s <= 0:
            raise ValueError(f"node_mtbf_s must be > 0, got {node_mtbf_s}")
        if objective not in OBJECTIVES:
            raise ValueError(
                f"unknown objective {objective!r} "
                f"(choose from {', '.join(OBJECTIVES)})"
            )
        if objective == "cost" and price is None:
            raise ValueError("objective 'cost' needs a price curve")
        if objective == "carbon" and carbon is None:
            raise ValueError("objective 'carbon' needs a carbon curve")
        self.node_mtbf_s = node_mtbf_s
        self.objective = objective
        self.price = price
        self.carbon = carbon
        self.power = power
        self.start_s = start_s
        self.candidates = (
            list(candidates)
            if candidates is not None
            else datacenter_techniques()
        )
        if not self.candidates:
            raise ValueError("need at least one candidate technique")
        self.severity = (
            severity if severity is not None else SeverityModel.default()
        )
        self.name = f"grid_{objective}"
        #: How many times each technique was selected (observability).
        self.selection_counts: Dict[str, int] = {}

    def quotes(
        self, app: Application, system: HPCSystem
    ) -> List[GridQuote]:
        """Quotes for every feasible candidate, in candidate order."""
        return [
            quote(
                technique,
                app,
                system,
                self.node_mtbf_s,
                severity=self.severity,
                power=self.power,
                price=self.price,
                carbon=self.carbon,
                start_s=self.start_s,
            )
            for technique in self.candidates
            if technique.fits(app, system)
        ]

    def select(
        self, app: Application, system: HPCSystem
    ) -> ResilienceTechnique:
        """The feasible candidate minimizing the objective."""
        best: Optional[ResilienceTechnique] = None
        best_value = float("inf")
        for technique in self.candidates:
            if not technique.fits(app, system):
                continue
            value = quote(
                technique,
                app,
                system,
                self.node_mtbf_s,
                severity=self.severity,
                power=self.power,
                price=self.price,
                carbon=self.carbon,
                start_s=self.start_s,
            ).objective_value(self.objective)
            if value < best_value:
                best, best_value = technique, value
        if best is None:
            raise ValueError(
                f"no candidate technique fits app {app.app_id} "
                f"({app.nodes} nodes) on a {system.total_nodes}-node system"
            )
        self.selection_counts[best.name] = (
            self.selection_counts.get(best.name, 0) + 1
        )
        return best
