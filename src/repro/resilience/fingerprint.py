"""Value-identity fingerprints for technique/selector-like objects.

A *fingerprint* identifies a technique by its class plus its public
constructor state, so two instances configured identically are
interchangeable — the property both the on-disk result cache
(:mod:`repro.experiments.parallel`) and the in-run execution-plan cache
(:class:`repro.core.datacenter.PlanCache`) rely on.  It lives here, in
the resilience layer, so core code can key plan caches without
importing the experiments layer.
"""

from __future__ import annotations

import json
from typing import Any, Tuple


def technique_fingerprint(technique: Any) -> Tuple[str, str, str]:
    """Cache-key identity of a technique/selector-like object: its
    class plus its public constructor state, so e.g. two
    ``ParallelRecovery(recovery_parallelism=...)`` instances with
    different sigmas never collide."""
    params = {
        k: repr(v)
        for k, v in sorted(getattr(technique, "__dict__", {}).items())
        if not k.startswith("_")
    }
    return (
        type(technique).__module__,
        type(technique).__qualname__,
        json.dumps(params, sort_keys=True),
    )


__all__ = ["technique_fingerprint"]
