"""Multilevel checkpoint-schedule optimization (after Moody et al. [3]).

The multilevel technique must pick, for each level k, how often to take
level-k checkpoints.  Moody et al. solve this with a Markov model of
segment completion; the paper adopts their model ("failure severity and
optimal checkpoint intervals at each level are determined based on the
Markov model in [3]").

We implement the same optimization with a renewal-reward objective: the
expected overhead per unit of committed work for a nested schedule
``(tau1, m2, m3)`` — level-1 checkpoints every ``tau1`` seconds of work,
every ``m2``-th boundary upgraded to level 2, every ``m2*m3``-th to
level 3 — under Poisson failures split by severity:

    overhead(tau1, m2, m3) =
        sum_k  cost_k * f_k / tau1                 (checkpoint overhead)
      + sum_k  lambda_k * (restart_k + tau_k / 2)  (failure rework)

where ``f_k`` is the fraction of boundaries taken at exactly level k and
``tau_k`` is the level-k period (the mean rollback distance for a
severity-k failure is half a level-k period).  The schedule is found by
bounded integer search over (m2, m3) with a 1-D numeric minimization of
tau1 inside each candidate (SciPy ``minimize_scalar``), seeded by the
per-level Daly optima.  The first-order objective matches the Markov
model's expectation to O((lambda * tau)^2), which is tight in the regime
the paper simulates (intervals much shorter than failure inter-arrivals
at the level that pays them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
from scipy import optimize as sp_optimize

from repro.resilience.daly import optimal_checkpoint_interval

#: Smallest failure rate treated as non-zero (guards degenerate PMFs).
_RATE_FLOOR = 1e-18

#: Hard cap on level multipliers during search.
_MAX_MULTIPLIER = 10_000


@dataclass(frozen=True)
class MultilevelSchedule:
    """An optimized nested schedule for up to three levels.

    ``multipliers[k]`` is the number of level-(k) periods per
    level-(k+1) checkpoint; ``periods_s`` are the resulting absolute
    periods per level.
    """

    base_interval_s: float
    multipliers: Tuple[int, ...]
    overhead: float

    @property
    def periods_s(self) -> Tuple[float, ...]:
        """Absolute checkpoint period per level, ascending."""
        periods = [self.base_interval_s]
        for mult in self.multipliers:
            periods.append(periods[-1] * mult)
        return tuple(periods)


def _boundary_fractions(multipliers: Sequence[int]) -> Tuple[float, ...]:
    """Fraction of base boundaries taken at *exactly* each level.

    For levels 1..K with cumulative multipliers M_k (base periods per
    level-k checkpoint), a boundary is level >= k with probability
    1/M_k, so exactly level k with probability 1/M_k - 1/M_{k+1}.
    """
    cumulative = [1]
    for mult in multipliers:
        cumulative.append(cumulative[-1] * mult)
    fractions = []
    for k in range(len(cumulative)):
        upper = 1.0 / cumulative[k + 1] if k + 1 < len(cumulative) else 0.0
        fractions.append(1.0 / cumulative[k] - upper)
    return tuple(fractions)


def expected_overhead(
    base_interval_s: float,
    multipliers: Sequence[int],
    costs_s: Sequence[float],
    restarts_s: Sequence[float],
    level_rates: Sequence[float],
) -> float:
    """First-order expected overhead per unit of committed work.

    Parameters
    ----------
    base_interval_s:
        tau1, the level-1 work interval.
    multipliers:
        (m2, ..., mK): level nesting factors, length K-1.
    costs_s / restarts_s / level_rates:
        Per-level checkpoint costs, restart costs, and severity-split
        failure rates (lambda_k), each of length K.
    """
    levels = len(costs_s)
    if len(restarts_s) != levels or len(level_rates) != levels:
        raise ValueError("costs, restarts, and rates must have equal lengths")
    if len(multipliers) != levels - 1:
        raise ValueError(f"need {levels - 1} multipliers, got {len(multipliers)}")
    if base_interval_s <= 0:
        raise ValueError(f"base_interval_s must be > 0, got {base_interval_s}")
    if any(m < 1 for m in multipliers):
        raise ValueError(f"multipliers must be >= 1, got {multipliers}")

    fractions = _boundary_fractions(multipliers)
    checkpoint_overhead = (
        sum(c * f for c, f in zip(costs_s, fractions)) / base_interval_s
    )

    periods = [base_interval_s]
    for mult in multipliers:
        periods.append(periods[-1] * mult)

    rework = 0.0
    for rate, restart, period in zip(level_rates, restarts_s, periods):
        rework += max(rate, 0.0) * (restart + period / 2.0)

    return checkpoint_overhead + rework


#: Process-global memo for :func:`optimize_schedule`.  The optimization
#: is a pure, deterministic function of its float inputs (bounded
#: integer search + SciPy's deterministic bounded scalar minimizer), so
#: returning the cached frozen schedule is bit-exact.  Datacenter
#: studies hit the same handful of keys thousands of times (plan inputs
#: depend on the application *shape*, drawn from a small discrete
#: space, never on arrival times), which made this call the single
#: largest non-kernel cost before memoization.
_SCHEDULE_MEMO: dict = {}


def optimize_schedule(
    costs_s: Sequence[float],
    restarts_s: Sequence[float],
    level_rates: Sequence[float],
    search_span: int = 4,
) -> MultilevelSchedule:
    """Find the (tau1, m2, ..., mK) minimizing :func:`expected_overhead`.

    Seeds each level's period at its standalone Daly optimum
    ``sqrt(2 c_k / lambda_k)``, derives candidate integer multipliers in
    a geometric neighbourhood (``search_span`` octaves around the seed),
    and optimizes tau1 numerically inside each candidate.  Results are
    memoised process-globally (the search is deterministic and the
    schedule immutable, so the memo is exact).
    """
    key = (
        tuple(float(c) for c in costs_s),
        tuple(float(r) for r in restarts_s),
        tuple(float(r) for r in level_rates),
        search_span,
    )
    cached = _SCHEDULE_MEMO.get(key)
    if cached is not None:
        return cached
    schedule = _optimize_schedule_uncached(
        costs_s, restarts_s, level_rates, search_span
    )
    _SCHEDULE_MEMO[key] = schedule
    return schedule


def _optimize_schedule_uncached(
    costs_s: Sequence[float],
    restarts_s: Sequence[float],
    level_rates: Sequence[float],
    search_span: int = 4,
) -> MultilevelSchedule:
    levels = len(costs_s)
    if levels < 1:
        raise ValueError("need at least one level")
    rates = [max(float(r), _RATE_FLOOR) for r in level_rates]
    seeds = [
        optimal_checkpoint_interval(max(c, 1e-12), r)
        for c, r in zip(costs_s, rates)
    ]

    if levels == 1:
        tau = seeds[0]
        return MultilevelSchedule(
            base_interval_s=tau,
            multipliers=(),
            overhead=expected_overhead(tau, (), costs_s, restarts_s, rates),
        )

    def candidates_for(ratio: float) -> list[int]:
        center = max(1, round(ratio))
        cands = {1, center}
        for octave in range(1, search_span + 1):
            cands.add(min(_MAX_MULTIPLIER, max(1, round(center * 2**octave))))
            cands.add(max(1, round(center / 2**octave)))
        return sorted(cands)

    multiplier_choices = [
        candidates_for(seeds[k + 1] / max(seeds[k], 1e-12))
        for k in range(levels - 1)
    ]

    best: MultilevelSchedule | None = None
    for mults in _cartesian(multiplier_choices):

        def objective(log_tau: float, mults=mults) -> float:
            return expected_overhead(
                float(np.exp(log_tau)), mults, costs_s, restarts_s, rates
            )

        lo, hi = np.log(max(seeds[0] * 1e-3, 1e-9)), np.log(seeds[0] * 1e3)
        result = sp_optimize.minimize_scalar(
            objective, bounds=(lo, hi), method="bounded"
        )
        tau1 = float(np.exp(result.x))
        overhead = float(result.fun)
        if best is None or overhead < best.overhead:
            best = MultilevelSchedule(
                base_interval_s=tau1, multipliers=tuple(mults), overhead=overhead
            )
    assert best is not None
    return best


def _cartesian(choices: Sequence[Sequence[int]]) -> list[Tuple[int, ...]]:
    """Cartesian product of small candidate lists."""
    out: list[Tuple[int, ...]] = [()]
    for options in choices:
        out = [prefix + (option,) for prefix in out for option in options]
    return out
