"""The four resilience techniques compared by the paper (Sec. IV), plus
the checkpoint-interval mathematics they share."""

from repro.resilience.adaptive import AdaptiveRedundancy
from repro.resilience.base import (
    CheckpointLevel,
    ExecutionPlan,
    ReplicaPlan,
    ResilienceTechnique,
)
from repro.resilience.checkpoint_restart import (
    CheckpointRestart,
    IncrementalCheckpointRestart,
    SemiBlockingCheckpointRestart,
    pfs_checkpoint_time,
)
from repro.resilience.daly import (
    expected_completion_time,
    young_interval,
    expected_efficiency,
    expected_segment_time,
    optimal_checkpoint_interval,
)
from repro.resilience.moody_markov import (
    MultilevelSchedule,
    expected_overhead,
    optimize_schedule,
)
from repro.resilience.multilevel import (
    MultilevelCheckpoint,
    level1_checkpoint_time,
    level2_checkpoint_time,
)
from repro.resilience.parallel_recovery import (
    ParallelRecovery,
    message_logging_slowdown,
)
from repro.resilience.redundancy import (
    Redundancy,
    effective_restart_rate,
    redundancy_work_rate,
    replica_plan,
    solve_checkpoint_period,
)
from repro.resilience.registry import (
    by_name,
    datacenter_techniques,
    get_technique,
    scaling_study_techniques,
)

__all__ = [
    "AdaptiveRedundancy",
    "CheckpointLevel",
    "IncrementalCheckpointRestart",
    "CheckpointRestart",
    "ExecutionPlan",
    "MultilevelCheckpoint",
    "MultilevelSchedule",
    "ParallelRecovery",
    "Redundancy",
    "SemiBlockingCheckpointRestart",
    "ReplicaPlan",
    "ResilienceTechnique",
    "by_name",
    "datacenter_techniques",
    "effective_restart_rate",
    "expected_completion_time",
    "expected_efficiency",
    "expected_overhead",
    "expected_segment_time",
    "get_technique",
    "level1_checkpoint_time",
    "level2_checkpoint_time",
    "message_logging_slowdown",
    "optimal_checkpoint_interval",
    "optimize_schedule",
    "pfs_checkpoint_time",
    "redundancy_work_rate",
    "replica_plan",
    "scaling_study_techniques",
    "solve_checkpoint_period",
    "young_interval",
]
