"""Technique registry: the paper's line-up by name.

Figures 1-3 compare five curves (Checkpoint Restart, Multilevel,
Parallel Recovery, and redundancy at r = 1.5 and r = 2.0); the
Sec. VI/VII datacenter studies use the first three ("the results from
Section V indicate that redundancy-based resilience techniques will be
unlikely to be implemented in an exascale system").
"""

from __future__ import annotations

from typing import Dict, List

from repro.resilience.base import ResilienceTechnique
from repro.resilience.checkpoint_restart import CheckpointRestart
from repro.resilience.multilevel import MultilevelCheckpoint
from repro.resilience.parallel_recovery import ParallelRecovery
from repro.resilience.redundancy import Redundancy


def scaling_study_techniques() -> List[ResilienceTechnique]:
    """The five techniques of Figs. 1-3, in plot order."""
    return [
        CheckpointRestart(),
        MultilevelCheckpoint(),
        ParallelRecovery(),
        Redundancy.partial(),
        Redundancy.full(),
    ]


def datacenter_techniques() -> List[ResilienceTechnique]:
    """The three techniques of Figs. 4-5."""
    return [CheckpointRestart(), MultilevelCheckpoint(), ParallelRecovery()]


def by_name() -> Dict[str, ResilienceTechnique]:
    """All standard techniques keyed by their names."""
    return {t.name: t for t in scaling_study_techniques()}


def get_technique(name: str) -> ResilienceTechnique:
    """Look up a standard technique by name."""
    table = by_name()
    if name not in table:
        raise KeyError(f"unknown technique {name!r}; expected one of {sorted(table)}")
    return table[name]
