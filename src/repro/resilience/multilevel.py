"""Multilevel Checkpointing (Sec. IV-C), after Moody et al. [3].

Three checkpoint levels trading speed against recoverability:

- **Level 1** — local RAM.  ``T_C_L1 = N_m / B_M`` (Eq. 5): the
  application's per-node state divided by the node memory bandwidth.
  Recovers only severity-1 failures.
- **Level 2** — partner-node RAM.  ``T_C_L2 = 2 (T_C_L1 + L + N_m/B_M)``
  (Eq. 6): send to the (contiguous) partner plus the partner's write,
  times two because partners exchange checkpoints symmetrically.
  Recovers severity-1/2 failures.
- **Level 3** — parallel file system, Eq. 3 (same as Checkpoint
  Restart).  Recovers everything.

Inter-level schedule (how many level-1 intervals per level-2 and
level-3 checkpoint) comes from the Markov-model optimization in
:mod:`repro.resilience.moody_markov`.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.failures.rates import application_failure_rate
from repro.failures.severity import SeverityModel
from repro.platform.system import HPCSystem
from repro.resilience.base import (
    CheckpointLevel,
    ExecutionPlan,
    ResilienceTechnique,
)
from repro.resilience.checkpoint_restart import PFS_RESOURCE, pfs_checkpoint_time
from repro.resilience.moody_markov import MultilevelSchedule, optimize_schedule
from repro.workload.application import Application


def level1_checkpoint_time(app: Application, system: HPCSystem) -> float:
    """Eq. 5: local-RAM checkpoint, seconds."""
    return system.node.memory_write_time(app.memory_per_node_gb)


def level2_checkpoint_time(app: Application, system: HPCSystem) -> float:
    """Eq. 6: symmetric partner-node checkpoint, seconds."""
    t_l1 = level1_checkpoint_time(app, system)
    partner_write = app.memory_per_node_gb / system.node.memory_bandwidth_gbs
    return 2.0 * (t_l1 + system.network.latency_s + partner_write)


class MultilevelCheckpoint(ResilienceTechnique):
    """The three-level checkpointing scheme of Moody et al. [3]."""

    name = "multilevel"

    def plan(
        self,
        app: Application,
        system: HPCSystem,
        node_mtbf_s: float,
        severity: Optional[SeverityModel] = None,
    ) -> ExecutionPlan:
        """Three nested levels (Eqs. 5/6/3) on the optimized schedule."""
        severity = severity if severity is not None else SeverityModel.default()
        costs = self.level_costs(app, system)
        total_rate = application_failure_rate(app.nodes, node_mtbf_s)
        rates = tuple(
            severity.level_rate(k, total_rate) for k in (1, 2, 3)
        )
        schedule = self.schedule(costs, costs, rates)
        periods = schedule.periods_s
        levels = tuple(
            CheckpointLevel(
                index=k,
                recovers_severity=k,
                cost_s=costs[k - 1],
                restart_s=costs[k - 1],
                period_s=periods[k - 1],
                shared_resource=PFS_RESOURCE if k == 3 else None,
            )
            for k in (1, 2, 3)
        )
        return ExecutionPlan(
            app=app,
            technique=self.name,
            work_rate=1.0,
            levels=levels,
            nodes_required=app.nodes,
        )

    @staticmethod
    def level_costs(app: Application, system: HPCSystem) -> Tuple[float, float, float]:
        """(T_C_L1, T_C_L2, T_C_PFS) for *app* on *system*."""
        return (
            level1_checkpoint_time(app, system),
            level2_checkpoint_time(app, system),
            pfs_checkpoint_time(app, system),
        )

    @staticmethod
    def schedule(
        costs: Tuple[float, float, float],
        restarts: Tuple[float, float, float],
        rates: Tuple[float, float, float],
    ) -> MultilevelSchedule:
        """Optimize the nested schedule (exposed for the ablations)."""
        return optimize_schedule(costs, restarts, rates)
