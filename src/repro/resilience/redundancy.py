"""Checkpointing combined with partial/full redundancy (Sec. IV-E),
after Elliott et al. [4].

A degree of redundancy ``r in [1, 2]`` gives every *virtual* process at
least one physical node, and a fraction ``r - 1`` of them a second
replica, so the application occupies ``ceil(r * N_a)`` physical nodes.
PFS checkpoints are taken at regular intervals exactly as in Checkpoint
Restart; a restart is needed **only** when all replicas of some virtual
node fail before the next checkpoint (checkpoints repair failed
replicas).  Duplicated communication inflates the baseline to
``T_B = T_S (T_W + r * T_C)`` (Eq. 8).

Per the paper, "apart from the application baseline execution time, all
parameters associated with the partial redundancy resilience technique
remain the same as the Checkpoint Restart technique" — in particular
the checkpoint period is the Eq. 4 Daly optimum at the *raw*
application failure rate ``lambda_a = N_a / M_n``, even though replicas
make restarts far rarer.  This is why redundancy pays CR-level
checkpoint overhead and sits below Parallel Recovery in Figs. 1-3.

As an ablation (``interval_mode="effective"``) the period can instead
be optimized against the *effective* restart-causing rate: singletons
die at the node rate ``nu`` while a replicated pair dies at
``~nu^2 * tau`` per unit time (both replicas must fail within one
checkpoint window), giving the fixed point

    tau = sqrt(2 C / lambda_eff(tau)) - C .
"""

from __future__ import annotations

from typing import Optional

from scipy import optimize as sp_optimize

from repro.constants import FULL_REDUNDANCY_DEGREE, PARTIAL_REDUNDANCY_DEGREE
from repro.failures.rates import application_failure_rate
from repro.failures.severity import MAX_SEVERITY, SeverityModel
from repro.platform.system import HPCSystem
from repro.resilience.base import (
    CheckpointLevel,
    ExecutionPlan,
    ReplicaPlan,
    ResilienceTechnique,
    ceil_nodes,
)
from repro.resilience.checkpoint_restart import PFS_RESOURCE, pfs_checkpoint_time
from repro.resilience.daly import optimal_checkpoint_interval
from repro.workload.application import Application


def replica_plan(app: Application, degree: float) -> ReplicaPlan:
    """Build the replica structure for *app* at redundancy *degree*."""
    virtual = app.nodes
    replicated = min(virtual, ceil_nodes((degree - 1.0) * virtual))
    return ReplicaPlan(degree=degree, virtual_nodes=virtual, replicated=replicated)


def redundancy_work_rate(app: Application, degree: float) -> float:
    """Eq. 8 inflation: ``T_W + r * T_C`` (with ``T_W + T_C = 1``)."""
    return app.work_fraction + degree * app.comm_fraction


def effective_restart_rate(
    replicas: ReplicaPlan, node_rate: float, interval_s: float
) -> float:
    """Rate of restart-causing events for the given checkpoint window.

    Singletons die at the node rate; a replicated pair dies when both
    replicas fail within the same window — probability ~(nu*tau)^2 per
    window, i.e. rate ``nu^2 * tau`` per pair (first order in nu*tau).
    """
    if node_rate <= 0:
        raise ValueError(f"node_rate must be > 0, got {node_rate}")
    if interval_s <= 0:
        raise ValueError(f"interval_s must be > 0, got {interval_s}")
    singles = replicas.virtual_nodes - replicas.replicated
    return singles * node_rate + replicas.replicated * node_rate**2 * interval_s


def solve_checkpoint_period(
    checkpoint_cost_s: float, replicas: ReplicaPlan, node_rate: float
) -> float:
    """Fixed-point Daly period under the interval-dependent effective
    restart rate."""

    def residual(tau: float) -> float:
        lam = effective_restart_rate(replicas, node_rate, tau)
        return tau - optimal_checkpoint_interval(checkpoint_cost_s, lam)

    lo, hi = 1e-6, 1e14
    if residual(lo) >= 0.0:
        # Effective rate so high even a tiny window can't help;
        # degenerate thrashing regime.
        return optimal_checkpoint_interval(
            checkpoint_cost_s,
            effective_restart_rate(replicas, node_rate, checkpoint_cost_s),
        )
    return float(sp_optimize.brentq(residual, lo, hi, xtol=1e-6, rtol=1e-10))


class Redundancy(ResilienceTechnique):
    """Partial or full redundancy combined with PFS checkpointing."""

    def __init__(
        self,
        degree: float = PARTIAL_REDUNDANCY_DEGREE,
        interval_mode: str = "paper",
    ) -> None:
        if not 1.0 <= degree <= 2.0:
            raise ValueError(f"degree must be in [1, 2], got {degree}")
        if interval_mode not in ("paper", "effective"):
            raise ValueError(
                f"interval_mode must be 'paper' or 'effective', got {interval_mode!r}"
            )
        self.degree = degree
        self.interval_mode = interval_mode
        suffix = f"{degree:g}".replace(".", "_")
        self.name = f"redundancy_r{suffix}"

    @classmethod
    def partial(cls) -> "Redundancy":
        """The paper's partial configuration (r = 1.5)."""
        return cls(PARTIAL_REDUNDANCY_DEGREE)

    @classmethod
    def full(cls) -> "Redundancy":
        """Full dual redundancy (r = 2.0)."""
        return cls(FULL_REDUNDANCY_DEGREE)

    def nodes_required(self, app: Application) -> int:
        """``ceil(r * N_a)`` physical nodes for the replicas."""
        return replica_plan(app, self.degree).physical_nodes

    def plan(
        self,
        app: Application,
        system: HPCSystem,
        node_mtbf_s: float,
        severity: Optional[SeverityModel] = None,
    ) -> ExecutionPlan:
        """PFS checkpointing plus the replica structure, with Eq. 8 communication inflation."""
        replicas = replica_plan(app, self.degree)
        if replicas.physical_nodes > system.total_nodes:
            raise ValueError(
                f"{self.name} needs {replicas.physical_nodes} nodes but the "
                f"system has {system.total_nodes} (Sec. V: zero efficiency)"
            )
        cost = pfs_checkpoint_time(app, system)
        node_rate = 1.0 / node_mtbf_s
        if self.interval_mode == "paper":
            period = optimal_checkpoint_interval(
                cost, application_failure_rate(app.nodes, node_mtbf_s)
            )
        else:
            period = solve_checkpoint_period(cost, replicas, node_rate)
        level = CheckpointLevel(
            index=1,
            recovers_severity=MAX_SEVERITY,
            cost_s=cost,
            restart_s=cost,
            period_s=period,
            shared_resource=PFS_RESOURCE,
        )
        return ExecutionPlan(
            app=app,
            technique=self.name,
            work_rate=redundancy_work_rate(app, self.degree),
            levels=(level,),
            nodes_required=replicas.physical_nodes,
            replicas=replicas,
        )
