"""Parallel Recovery (Sec. IV-D), after Meneses et al. [2].

Message logging with parallelized restart:

- Every sent message is logged, slowing execution by
  ``mu = 1 + T_C / 10`` (Sec. IV-D), so the effective baseline is
  ``T_B = mu * T_S * (T_W + T_C)`` (Eq. 7).
- Checkpoints are in-memory to a partner node (the FTC-Charm++ scheme
  [33]), so checkpoint and restart cost follow Eq. 6 — the parallel
  file system is never touched.
- After a failure only the failed node recovers; its lost work is
  re-executed *in parallel* across helper nodes, so rework completes
  ``sigma`` times faster (DESIGN.md substitution #2; default
  sigma = 4).  The rest of the system waits (cheap in time, and cheap in
  energy — see :mod:`repro.energy`).
- The checkpoint period is the Eq. 4 Daly optimum evaluated with the
  in-memory checkpoint cost.
"""

from __future__ import annotations

from typing import Optional

from repro.constants import DEFAULT_RECOVERY_PARALLELISM, MESSAGE_LOGGING_DIVISOR
from repro.failures.rates import application_failure_rate
from repro.failures.severity import MAX_SEVERITY, SeverityModel
from repro.platform.system import HPCSystem
from repro.resilience.base import (
    CheckpointLevel,
    ExecutionPlan,
    ResilienceTechnique,
)
from repro.resilience.daly import optimal_checkpoint_interval
from repro.resilience.multilevel import level2_checkpoint_time
from repro.workload.application import Application


def message_logging_slowdown(comm_fraction: float) -> float:
    """``mu = 1 + T_C / 10`` (Sec. IV-D)."""
    if not 0.0 <= comm_fraction < 1.0:
        raise ValueError(f"comm_fraction must be in [0, 1), got {comm_fraction}")
    return 1.0 + comm_fraction / MESSAGE_LOGGING_DIVISOR


class ParallelRecovery(ResilienceTechnique):
    """Message logging + in-memory checkpoints + parallelized restart."""

    name = "parallel_recovery"

    def __init__(
        self, recovery_parallelism: float = DEFAULT_RECOVERY_PARALLELISM
    ) -> None:
        if recovery_parallelism < 1.0:
            raise ValueError(
                f"recovery_parallelism must be >= 1, got {recovery_parallelism}"
            )
        self.recovery_parallelism = recovery_parallelism

    def plan(
        self,
        app: Application,
        system: HPCSystem,
        node_mtbf_s: float,
        severity: Optional[SeverityModel] = None,
    ) -> ExecutionPlan:
        """Single in-memory level (Eq. 6) with mu-inflated work (Eq. 7) and parallelized recovery."""
        cost = level2_checkpoint_time(app, system)
        rate = application_failure_rate(app.nodes, node_mtbf_s)
        period = optimal_checkpoint_interval(cost, rate)
        mu = message_logging_slowdown(app.comm_fraction)
        level = CheckpointLevel(
            index=1,
            recovers_severity=MAX_SEVERITY,
            cost_s=cost,
            restart_s=cost,
            period_s=period,
        )
        return ExecutionPlan(
            app=app,
            technique=self.name,
            work_rate=mu,
            levels=(level,),
            nodes_required=app.nodes,
            recovery_speedup=self.recovery_parallelism,
        )
