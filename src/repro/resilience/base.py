"""Common interfaces for the four resilience techniques (Sec. IV).

A technique is a *planner*: given an application, the machine, and the
failure environment it produces an :class:`ExecutionPlan` describing

- how much wall-clock work the application represents once technique
  overheads that scale execution itself are applied (message-logging
  slowdown mu, redundant-communication inflation r — Eqs. 7/8);
- the checkpoint hierarchy: one or more :class:`CheckpointLevel` with
  costs, restart costs, periods, and the worst failure severity each
  level can recover from;
- how many physical nodes the application needs (redundancy needs
  ``ceil(r * N_a)``);
- how fast lost work is recomputed (Parallel Recovery's parallelized
  recovery, sigma > 1);
- the replica structure, for redundancy's restart rule.

The plan is *consumed* by the generic execution engine
(:mod:`repro.core.execution`), which is technique-agnostic.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.failures.severity import MAX_SEVERITY, SeverityModel
from repro.platform.system import HPCSystem
from repro.workload.application import Application


@dataclass(frozen=True)
class CheckpointLevel:
    """One level of the checkpoint hierarchy.

    Attributes
    ----------
    index:
        Position in the hierarchy, 1-based (1 = cheapest/most frequent).
    recovers_severity:
        Worst failure severity this level's checkpoints can recover.
    cost_s:
        Time to take one checkpoint at this level.
    restart_s:
        Time to restore from a checkpoint of this level (the paper
        assumes checkpoint and restart times are symmetric).
    period_s:
        Wall-clock work between checkpoints of this level.  Periods of
        higher levels are integer multiples of lower ones (nesting).
    blocking_fraction:
        Fraction of the checkpoint cost that stalls execution.  1.0
        (the default, and the paper's blocking model) stalls for the
        whole cost; smaller values model semi-blocking checkpointing
        [Ni et al. 2012]: execution resumes after the blocking part
        while the checkpoint *commits* only after the full cost has
        elapsed — a failure in between voids it.
    shared_resource:
        Optional name of a shared resource this level's checkpoints and
        restarts contend for (e.g. ``"pfs"``).  Ignored unless the
        execution engine is given a pool under that name — the paper's
        model (each application sees Eq. 3 in isolation) is the
        default.
    """

    index: int
    recovers_severity: int
    cost_s: float
    restart_s: float
    period_s: float
    blocking_fraction: float = 1.0
    shared_resource: Optional[str] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.blocking_fraction <= 1.0:
            raise ValueError(
                f"blocking_fraction must be in (0, 1], got {self.blocking_fraction}"
            )
        if self.index < 1:
            raise ValueError(f"index must be >= 1, got {self.index}")
        if not 1 <= self.recovers_severity <= MAX_SEVERITY:
            raise ValueError(
                f"recovers_severity must be in 1..{MAX_SEVERITY}, "
                f"got {self.recovers_severity}"
            )
        if self.cost_s < 0:
            raise ValueError(f"cost_s must be >= 0, got {self.cost_s}")
        if self.restart_s < 0:
            raise ValueError(f"restart_s must be >= 0, got {self.restart_s}")
        if self.period_s <= 0:
            raise ValueError(f"period_s must be > 0, got {self.period_s}")


@dataclass(frozen=True)
class ReplicaPlan:
    """Redundancy structure (Sec. IV-E).

    ``virtual_nodes`` application processes run on ``physical_nodes``
    physical nodes; the first ``replicated`` virtual nodes have two
    physical replicas each, the rest have one.  A restart is required
    only when *every* replica of some virtual node fails before the next
    checkpoint (which repairs failed replicas).
    """

    degree: float
    virtual_nodes: int
    replicated: int

    def __post_init__(self) -> None:
        if not 1.0 <= self.degree <= 2.0:
            raise ValueError(f"degree must be in [1, 2], got {self.degree}")
        if self.virtual_nodes <= 0:
            raise ValueError(f"virtual_nodes must be > 0, got {self.virtual_nodes}")
        if not 0 <= self.replicated <= self.virtual_nodes:
            raise ValueError(
                f"replicated must be in 0..{self.virtual_nodes}, got {self.replicated}"
            )

    @property
    def physical_nodes(self) -> int:
        """Total physical nodes: virtual plus replicated copies."""
        return self.virtual_nodes + self.replicated

    def virtual_of_physical(self, physical_index: int) -> int:
        """Map a physical-node index in [0, physical_nodes) to the
        virtual node it backs.  Replicated virtual node v owns physical
        indices 2v and 2v+1; singletons follow."""
        if not 0 <= physical_index < self.physical_nodes:
            raise ValueError(
                f"physical_index must be in 0..{self.physical_nodes - 1}, "
                f"got {physical_index}"
            )
        if physical_index < 2 * self.replicated:
            return physical_index // 2
        return self.replicated + (physical_index - 2 * self.replicated)

    def replicas_of(self, virtual_index: int) -> int:
        """Number of physical replicas backing a virtual node."""
        if not 0 <= virtual_index < self.virtual_nodes:
            raise ValueError(
                f"virtual_index must be in 0..{self.virtual_nodes - 1}, "
                f"got {virtual_index}"
            )
        return 2 if virtual_index < self.replicated else 1


@dataclass(frozen=True)
class ExecutionPlan:
    """Everything the execution engine needs to run one application
    under one resilience technique."""

    app: Application
    technique: str
    #: Wall seconds of failure-free execution per baseline second
    #: (mu for Parallel Recovery, T_W + r*T_C for Redundancy, else 1).
    work_rate: float
    #: Checkpoint hierarchy, ascending by index; the topmost level must
    #: recover the worst severity.
    levels: Tuple[CheckpointLevel, ...]
    #: Physical nodes required.
    nodes_required: int
    #: Speedup applied while recomputing lost work (sigma; 1 = none).
    recovery_speedup: float = 1.0
    #: Replica structure for redundancy techniques (else None).
    replicas: Optional[ReplicaPlan] = None

    def __post_init__(self) -> None:
        if self.work_rate < 1.0:
            raise ValueError(f"work_rate must be >= 1, got {self.work_rate}")
        if not self.levels:
            raise ValueError("plan needs at least one checkpoint level")
        if self.recovery_speedup < 1.0:
            raise ValueError(
                f"recovery_speedup must be >= 1, got {self.recovery_speedup}"
            )
        if self.nodes_required < self.app.nodes:
            raise ValueError("nodes_required cannot be below the app's node count")
        indices = [lvl.index for lvl in self.levels]
        if indices != sorted(indices) or len(set(indices)) != len(indices):
            raise ValueError(f"levels must have unique ascending indices: {indices}")
        if max(lvl.recovers_severity for lvl in self.levels) < MAX_SEVERITY:
            raise ValueError("topmost level must recover the worst severity")
        # Period nesting: each level's period an integer multiple of the
        # previous level's (within floating tolerance).
        for lower, higher in zip(self.levels, self.levels[1:]):
            ratio = higher.period_s / lower.period_s
            if abs(ratio - round(ratio)) > 1e-9 or round(ratio) < 1:
                raise ValueError(
                    f"period of level {higher.index} ({higher.period_s}) is not an "
                    f"integer multiple of level {lower.index} ({lower.period_s})"
                )

    # -- derived ---------------------------------------------------------

    @property
    def effective_work_s(self) -> float:
        """Total failure-free wall work including work_rate inflation
        (Eqs. 7/8 inflated baselines)."""
        return self.app.baseline_time * self.work_rate

    @property
    def base_period_s(self) -> float:
        """Period of the most frequent checkpoint level."""
        return self.levels[0].period_s

    def level_multiplier(self, index: int) -> int:
        """How many base periods between checkpoints of level *index*."""
        level = self.level_by_index(index)
        return round(level.period_s / self.base_period_s)

    def level_by_index(self, index: int) -> CheckpointLevel:
        """The checkpoint level with hierarchy position *index*."""
        for level in self.levels:
            if level.index == index:
                return level
        raise KeyError(f"plan has no level {index}")

    def boundary_level(self, boundary: int) -> CheckpointLevel:
        """The checkpoint level taken at base-period boundary number
        *boundary* (1-based): the highest level whose multiplier divides
        it."""
        if boundary < 1:
            raise ValueError(f"boundary must be >= 1, got {boundary}")
        chosen = self.levels[0]
        for level in self.levels:
            if boundary % self.level_multiplier(level.index) == 0:
                chosen = level
        return chosen

    def recovery_levels(self, severity: int) -> Tuple[CheckpointLevel, ...]:
        """Levels whose checkpoints can recover a *severity* failure."""
        usable = tuple(
            lvl for lvl in self.levels if lvl.recovers_severity >= severity
        )
        if not usable:
            raise ValueError(f"no level recovers severity {severity}")
        return usable


class ResilienceTechnique(abc.ABC):
    """A planner mapping (application, machine, MTBF) to a plan."""

    #: Short display name, overridden by subclasses.
    name: str = "abstract"

    @abc.abstractmethod
    def plan(
        self,
        app: Application,
        system: HPCSystem,
        node_mtbf_s: float,
        severity: Optional[SeverityModel] = None,
    ) -> ExecutionPlan:
        """Build the execution plan for *app* on *system*."""

    def nodes_required(self, app: Application) -> int:
        """Physical nodes needed (redundancy overrides this)."""
        return app.nodes

    def fits(self, app: Application, system: HPCSystem) -> bool:
        """Whether the technique can run *app* on *system* at all —
        redundancy "provides zero efficiency when ... there are not
        enough nodes available in the system" (Sec. V)."""
        return self.nodes_required(app) <= system.total_nodes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


def ceil_nodes(value: float) -> int:
    """Smallest node count >= value (guards against float fuzz)."""
    return int(math.ceil(value - 1e-9))
