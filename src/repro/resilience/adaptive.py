"""Adaptive redundancy (extension, after Hukerikar et al. [24]).

The paper's related work notes that "dynamic redundancy allows for the
executing application to choose a subset of processes for redundant
execution".  This extension implements that idea as a planner: for each
application it evaluates the analytic expected efficiency of
:class:`repro.resilience.redundancy.Redundancy` across a grid of
degrees (including degree 1.0 = plain Checkpoint Restart), discards
degrees whose replicas do not fit on the machine, and plans with the
argmax.

Because communication inflation scales with ``r * T_C`` (Eq. 8) while
the restart-rate benefit scales with the *replicated fraction*, the
chosen degree adapts to the application: low-communication applications
earn high degrees, high-communication ones collapse to little or no
redundancy — which is exactly the behaviour [24] argues for.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.failures.severity import SeverityModel
from repro.platform.system import HPCSystem
from repro.resilience.base import ExecutionPlan, ResilienceTechnique
from repro.resilience.redundancy import Redundancy, replica_plan
from repro.workload.application import Application

#: Degrees evaluated by default; 1.0 degenerates to plain CR.
DEFAULT_DEGREE_GRID = (1.0, 1.25, 1.5, 1.75, 2.0)


class AdaptiveRedundancy(ResilienceTechnique):
    """Per-application redundancy-degree selection."""

    name = "adaptive_redundancy"

    def __init__(
        self,
        degrees: Sequence[float] = DEFAULT_DEGREE_GRID,
        interval_mode: str = "paper",
    ) -> None:
        if not degrees:
            raise ValueError("need at least one candidate degree")
        if any(not 1.0 <= d <= 2.0 for d in degrees):
            raise ValueError(f"degrees must be in [1, 2], got {degrees}")
        self.degrees = tuple(sorted(set(float(d) for d in degrees)))
        self.interval_mode = interval_mode
        #: Application identity -> chosen degree, for observability and
        #: so nodes_required/plan agree for the same application.
        self._chosen: Dict[Tuple, float] = {}

    def choose_degree(
        self,
        app: Application,
        system: HPCSystem,
        node_mtbf_s: float,
        severity: Optional[SeverityModel] = None,
    ) -> float:
        """The efficiency-maximizing feasible degree for *app*."""
        # Imported lazily: repro.analysis builds on repro.resilience, so
        # a module-level import here would be circular.
        from repro.analysis.analytic import predict_efficiency

        key = (app.app_id, app.type_name, app.nodes, app.time_steps)
        cached = self._chosen.get(key)
        if cached is not None:
            return cached
        best_degree: Optional[float] = None
        best_eff = -1.0
        for degree in self.degrees:
            if replica_plan(app, degree).physical_nodes > system.total_nodes:
                continue
            plan = Redundancy(degree, interval_mode=self.interval_mode).plan(
                app, system, node_mtbf_s, severity
            )
            eff = predict_efficiency(plan, node_mtbf_s, severity)
            if eff > best_eff:
                best_degree, best_eff = degree, eff
        if best_degree is None:
            raise ValueError(
                f"no candidate degree fits app {app.app_id} "
                f"({app.nodes} nodes) on a {system.total_nodes}-node system"
            )
        self._chosen[key] = best_degree
        return best_degree

    def nodes_required(self, app: Application) -> int:
        """Physical nodes for the *smallest* candidate degree.

        The actual requirement depends on the degree chosen at plan
        time; feasibility screening uses the minimum so an application
        is never rejected when some candidate fits.
        """
        return replica_plan(app, self.degrees[0]).physical_nodes

    def plan(
        self,
        app: Application,
        system: HPCSystem,
        node_mtbf_s: float,
        severity: Optional[SeverityModel] = None,
    ) -> ExecutionPlan:
        """Plan with the efficiency-maximizing feasible degree."""
        degree = self.choose_degree(app, system, node_mtbf_s, severity)
        plan = Redundancy(degree, interval_mode=self.interval_mode).plan(
            app, system, node_mtbf_s, severity
        )
        # Re-brand so results attribute the run to the adaptive policy.
        return ExecutionPlan(
            app=plan.app,
            technique=f"{self.name}[r={degree:g}]",
            work_rate=plan.work_rate,
            levels=plan.levels,
            nodes_required=plan.nodes_required,
            recovery_speedup=plan.recovery_speedup,
            replicas=plan.replicas,
        )
