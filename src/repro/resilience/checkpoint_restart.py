"""Checkpoint Restart (Sec. IV-B): the contemporary baseline technique.

Periodic, blocking, uncoordinated checkpoints to the parallel file
system.  Checkpoint (and, symmetrically, restart) time follows Eq. 3:

    T_C_PFS = (N_m / B_N) * (N_a / N_S)

and the checkpoint period is the per-application Daly optimum of Eq. 4
with the application failure rate ``lambda_a = N_a / M_n``.
"""

from __future__ import annotations

from typing import Optional

from repro.failures.rates import application_failure_rate
from repro.failures.severity import MAX_SEVERITY, SeverityModel
from repro.platform.system import HPCSystem
from repro.resilience.base import (
    CheckpointLevel,
    ExecutionPlan,
    ResilienceTechnique,
)
from repro.resilience.daly import optimal_checkpoint_interval
from repro.workload.application import Application


#: Name of the shared parallel-file-system pool (used when the engine
#: models PFS contention; ignored otherwise).
PFS_RESOURCE = "pfs"


def pfs_checkpoint_time(app: Application, system: HPCSystem) -> float:
    """Eq. 3 for *app* on *system*, seconds."""
    return system.network.pfs_transfer_time(app.memory_per_node_gb, app.nodes)


class CheckpointRestart(ResilienceTechnique):
    """Traditional blocking checkpoint/restart to the PFS."""

    name = "checkpoint_restart"

    def plan(
        self,
        app: Application,
        system: HPCSystem,
        node_mtbf_s: float,
        severity: Optional[SeverityModel] = None,
    ) -> ExecutionPlan:
        """Single PFS level at the Eq. 4 optimum (Sec. IV-B)."""
        cost = pfs_checkpoint_time(app, system)
        rate = application_failure_rate(app.nodes, node_mtbf_s)
        period = optimal_checkpoint_interval(cost, rate)
        level = CheckpointLevel(
            index=1,
            recovers_severity=MAX_SEVERITY,
            cost_s=cost,
            restart_s=cost,
            period_s=period,
            blocking_fraction=self._blocking_fraction(),
            shared_resource=PFS_RESOURCE,
        )
        return ExecutionPlan(
            app=app,
            technique=self.name,
            work_rate=1.0,
            levels=(level,),
            nodes_required=app.nodes,
        )

    def _blocking_fraction(self) -> float:
        return 1.0


class IncrementalCheckpointRestart(CheckpointRestart):
    """Incremental checkpointing variant (extension).

    Only the pages dirtied since the previous checkpoint are written,
    so the recurring checkpoint cost is ``dirty_fraction`` of Eq. 3
    while restarts still read the *full* state (the base image plus
    increments).  The checkpoint period is re-optimized with the
    reduced cost, so the technique both checkpoints more cheaply and
    more often.  Not part of the paper's comparison; used by the
    ablation benches.
    """

    def __init__(self, dirty_fraction: float = 0.3) -> None:
        if not 0.0 < dirty_fraction <= 1.0:
            raise ValueError(
                f"dirty_fraction must be in (0, 1], got {dirty_fraction}"
            )
        self.dirty_fraction = dirty_fraction
        self.name = f"incremental_cr_{dirty_fraction:g}"

    def plan(
        self,
        app: Application,
        system: HPCSystem,
        node_mtbf_s: float,
        severity: Optional[SeverityModel] = None,
    ) -> ExecutionPlan:
        """Like Checkpoint Restart with the write cost scaled by the dirty fraction (restart reads the full state)."""
        full_cost = pfs_checkpoint_time(app, system)
        cost = full_cost * self.dirty_fraction
        rate = application_failure_rate(app.nodes, node_mtbf_s)
        period = optimal_checkpoint_interval(cost, rate)
        level = CheckpointLevel(
            index=1,
            recovers_severity=MAX_SEVERITY,
            cost_s=cost,
            restart_s=full_cost,  # restart reads the whole state
            period_s=period,
            shared_resource=PFS_RESOURCE,
        )
        return ExecutionPlan(
            app=app,
            technique=self.name,
            work_rate=1.0,
            levels=(level,),
            nodes_required=app.nodes,
        )


class SemiBlockingCheckpointRestart(CheckpointRestart):
    """Semi-blocking variant (extension, after Ni et al. [12]).

    Only a fraction of the Eq. 3 checkpoint cost stalls execution (the
    local staging copy); the transfer to the parallel file system
    proceeds in the background and the checkpoint only *commits* once
    the full cost has elapsed — a failure in between voids it, so the
    technique trades lower overhead for a longer vulnerability window.
    Not part of the paper's four-way comparison; used by the ablation
    benches to quantify how far semi-blocking would move Fig. 1-3's
    Checkpoint Restart curves.
    """

    def __init__(self, blocking_fraction: float = 0.25) -> None:
        if not 0.0 < blocking_fraction <= 1.0:
            raise ValueError(
                f"blocking_fraction must be in (0, 1], got {blocking_fraction}"
            )
        self.blocking_fraction = blocking_fraction
        self.name = f"semi_blocking_cr_{blocking_fraction:g}"

    def _blocking_fraction(self) -> float:
        return self.blocking_fraction
