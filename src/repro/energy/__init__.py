"""Energy accounting extension (quantifies Sec. II-D's claim that
message-logging recovery saves energy by idling non-failed nodes)."""

from repro.energy.model import (
    EnergyBreakdown,
    PowerModel,
    energy_of,
    energy_overhead_ratio,
)

__all__ = [
    "EnergyBreakdown",
    "PowerModel",
    "energy_of",
    "energy_overhead_ratio",
]
