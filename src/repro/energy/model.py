"""Energy accounting extension.

The paper's prior work ([7], cited in Sec. II) compared the *energy* of
these techniques; the present paper only argues qualitatively that
message logging "saves on the energy used by the system during
recovery, because only the failed system node needs to perform
re-computation, and the rest of the system can remain idle" (Sec. II-D).
This module quantifies that claim for any execution produced by the
simulator: node-seconds are split by activity, and recovery charges
only the recovering subset for techniques that allow the rest of the
machine to idle.

The power model is deliberately simple (per-node busy/idle power); it
is the *ratio* between techniques on identical executions that carries
information, not the absolute joules.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.execution import ExecutionStats


@dataclass(frozen=True)
class PowerModel:
    """Per-node power draw, watts."""

    busy_w: float = 350.0
    idle_w: float = 120.0

    def __post_init__(self) -> None:
        if self.busy_w <= 0:
            raise ValueError(f"busy_w must be > 0, got {self.busy_w}")
        if not 0 <= self.idle_w <= self.busy_w:
            raise ValueError(
                f"idle_w must be in [0, busy_w], got {self.idle_w}"
            )


@dataclass(frozen=True)
class EnergyBreakdown:
    """Joules by activity for one execution."""

    work_j: float
    rework_j: float
    checkpoint_j: float
    restart_j: float

    @property
    def total_j(self) -> float:
        """Total joules across all activities."""
        return self.work_j + self.rework_j + self.checkpoint_j + self.restart_j


def energy_of(
    stats: ExecutionStats,
    power: PowerModel = PowerModel(),
    recovery_idles_rest: bool | None = None,
) -> EnergyBreakdown:
    """Energy of one execution.

    Parameters
    ----------
    stats:
        Engine output (its plan supplies node counts and speedups).
    recovery_idles_rest:
        Whether non-recovering nodes idle during rework.  Defaults to
        True exactly when the plan parallelizes recovery (message
        logging / Parallel Recovery: only the failed node's work is
        redone); checkpoint/restart-style techniques redo work on every
        node.
    """
    plan = stats.plan
    nodes = plan.nodes_required
    if recovery_idles_rest is None:
        recovery_idles_rest = plan.recovery_speedup > 1.0

    work_j = stats.work_time_s * nodes * power.busy_w
    checkpoint_j = stats.checkpoint_time_s * nodes * power.busy_w
    restart_j = stats.restart_time_s * nodes * power.busy_w
    if recovery_idles_rest:
        # The recovering cohort (one failed node's work spread sigma
        # ways) burns busy power; everyone else idles.
        busy_nodes = min(nodes, max(1.0, plan.recovery_speedup))
        rework_j = stats.rework_time_s * (
            busy_nodes * power.busy_w + (nodes - busy_nodes) * power.idle_w
        )
    else:
        rework_j = stats.rework_time_s * nodes * power.busy_w
    return EnergyBreakdown(
        work_j=work_j,
        rework_j=rework_j,
        checkpoint_j=checkpoint_j,
        restart_j=restart_j,
    )


def energy_overhead_ratio(
    stats: ExecutionStats,
    power: PowerModel = PowerModel(),
    breakdown: EnergyBreakdown | None = None,
) -> float:
    """Energy relative to the failure-free ideal of the same plan.

    Pass a precomputed *breakdown* (from :func:`energy_of` with the
    same *power*) to avoid recomputing it; otherwise one is derived
    here — a single computation path either way.
    """
    plan = stats.plan
    if plan.effective_work_s <= 0:
        raise ValueError(
            f"plan for app {plan.app.app_id} has no effective work; "
            f"the failure-free ideal energy is zero"
        )
    if breakdown is None:
        breakdown = energy_of(stats, power)
    ideal_j = plan.effective_work_s * plan.nodes_required * power.busy_w
    return breakdown.total_j / ideal_j
