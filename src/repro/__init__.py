"""repro — reproduction of Dauwe et al., "An Analysis of Resilience
Techniques for Exascale Computing Platforms" (IPDPSW 2017).

The package is organized as a stack of substrates under a small core API:

- :mod:`repro.sim` — discrete-event simulation kernel (events, processes,
  interrupts) built from scratch.
- :mod:`repro.rng` — reproducible named random streams and distributions.
- :mod:`repro.platform` — the simulated exascale machine (nodes, network,
  allocator, presets).
- :mod:`repro.failures` — Poisson failure processes, severity levels, and
  the failure injector.
- :mod:`repro.workload` — Table I synthetic applications, deadlines, and
  arrival patterns.
- :mod:`repro.resilience` — the four techniques compared by the paper.
- :mod:`repro.rm` — FCFS / Random / Slack resource managers.
- :mod:`repro.core` — the single-application efficiency simulator, the
  oversubscribed datacenter simulator, and Resilience Selection.
- :mod:`repro.analysis` — closed-form models used for validation and for
  the selection predictor.
- :mod:`repro.experiments` — drivers that regenerate every table and
  figure in the paper.

Quickstart::

    from repro import compare_techniques

    result = compare_techniques(app_type="A32", fraction=0.12, trials=20)
    print(result.summary())
"""

from repro.core.comparison import (
    ComparisonResult,
    TechniqueSummary,
    compare_techniques,
)
from repro.core.metrics import efficiency
from repro.core.single_app import SingleAppConfig, simulate_application
from repro.platform.presets import exascale_system, sunway_taihulight_node
from repro.workload.synthetic import APP_TYPES, ApplicationType, make_application

__version__ = "1.0.0"

__all__ = [
    "APP_TYPES",
    "ApplicationType",
    "ComparisonResult",
    "SingleAppConfig",
    "TechniqueSummary",
    "__version__",
    "compare_techniques",
    "efficiency",
    "exascale_system",
    "make_application",
    "simulate_application",
    "sunway_taihulight_node",
]
