"""Resource-management interfaces (Sec. III-D).

A resource manager runs at *mapping events* (immediately after an
application arrives and immediately after one finishes).  It examines
the set of unmapped applications and decides which to start on idle
nodes — and, for the slack-based policy, which to drop.

The manager talks to the system through a :class:`Placer`, which hides
allocation mechanics (contiguity, redundancy node inflation) and lets
tests drive policies with a fake placer.
"""

from __future__ import annotations

import abc
from typing import List, Protocol, Sequence

from repro.workload.application import Application


class Placer(Protocol):
    """What a resource manager may do with a pending application."""

    def can_place(self, app: Application) -> bool:
        """Whether the system can start *app* right now."""
        ...

    def place(self, app: Application) -> None:
        """Allocate nodes and start *app* (must satisfy can_place)."""
        ...

    def drop(self, app: Application) -> None:
        """Remove *app* from the system without executing it."""
        ...


class ReservingPlacer(Placer, Protocol):
    """A placer that can additionally describe the running jobs, for
    policies that plan ahead (e.g. EASY backfilling needs to know when
    the queue head will be able to start)."""

    def running_jobs(self) -> list:
        """``(nodes, estimated_end_time)`` for every running job."""
        ...

    def free_nodes(self) -> int:
        """Idle nodes right now (a backfill candidate still needs
        ``can_place`` to confirm a contiguous block exists)."""
        ...

    def nodes_needed(self, app: Application) -> int:
        """Physical nodes *app* will occupy (resilience-dependent)."""
        ...


class ResourceManager(abc.ABC):
    """A mapping policy.

    Subclasses implement :meth:`map_applications`, which must call
    ``placer.place`` for every application it starts, ``placer.drop``
    for every application it removes, and return the list of
    applications that remain unmapped (to be reconsidered at the next
    mapping event).  ``pending`` arrives in arrival order.
    """

    name: str = "abstract"

    @abc.abstractmethod
    def map_applications(
        self, pending: Sequence[Application], placer: Placer, now: float
    ) -> List[Application]:
        """Run one mapping event; returns the still-unmapped apps."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
