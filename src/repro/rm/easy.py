"""EASY backfilling (extension; Lifka's EASY scheduler).

The paper compares FCFS, Random, and Slack-based mapping; production
HPC schedulers overwhelmingly run FCFS *with backfilling*, so this
extension adds the classic EASY policy as a fourth point of comparison:

1. Start queued applications in arrival order while they fit.
2. When the queue head does not fit, compute its *shadow time* — the
   earliest instant enough nodes will be free, from the running jobs'
   estimated completion times — and the *extra* nodes that will still
   be idle at that instant.
3. Backfill later applications only if they fit now **and** do not
   delay the head: either they finish (by estimate) before the shadow
   time, or they use no more than the extra nodes.

Completion estimates come from the placer (the datacenter supplies the
resilience-aware analytic expectation); estimates being estimates,
a backfilled job can in reality outlive the shadow time — exactly the
risk real EASY runs.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.rm.base import ReservingPlacer, ResourceManager
from repro.workload.application import Application


def shadow_time_and_extra(
    running: Sequence[Tuple[int, float]],
    free_nodes: int,
    needed: int,
    now: float,
) -> Tuple[float, int]:
    """When can a *needed*-node job start, and how many nodes remain
    spare at that instant?

    Walks the running jobs in estimated-completion order accumulating
    released nodes until the head job fits.  Returns ``(shadow_time,
    extra_nodes)``; ``extra_nodes`` is the surplus beyond the head's
    requirement available during the wait window.
    """
    if needed <= free_nodes:
        return (now, free_nodes - needed)
    available = free_nodes
    for nodes, end_time in sorted(running, key=lambda item: item[1]):
        available += nodes
        if available >= needed:
            return (max(now, end_time), available - needed)
    # Even with everything released the head never fits (oversized
    # job); report infinity so nothing is held back for it.
    return (float("inf"), 0)


class EasyBackfill(ResourceManager):
    """FCFS with EASY (aggressive) backfilling."""

    name = "easy"

    def map_applications(
        self, pending: Sequence[Application], placer: ReservingPlacer, now: float
    ) -> List[Application]:
        """FCFS from the front, then EASY backfill behind the blocked head."""
        queue = list(pending)
        # Phase 1: plain FCFS from the front.
        while queue and placer.can_place(queue[0]):
            placer.place(queue.pop(0))
        if not queue:
            return queue

        # Phase 2: backfill behind the blocked head.
        head = queue[0]
        shadow, extra = shadow_time_and_extra(
            placer.running_jobs(),
            placer.free_nodes(),
            placer.nodes_needed(head),
            now,
        )
        remaining: List[Application] = [head]
        for app in queue[1:]:
            if not placer.can_place(app):
                remaining.append(app)
                continue
            estimated_end = now + self.estimated_runtime(app)
            harmless = (
                estimated_end <= shadow
                or placer.nodes_needed(app) <= extra
            )
            if harmless:
                placer.place(app)
                if placer.nodes_needed(app) <= extra:
                    extra -= placer.nodes_needed(app)
            else:
                remaining.append(app)
        return remaining

    @staticmethod
    def estimated_runtime(app: Application) -> float:
        """Runtime estimate used for backfill decisions: the baseline
        plus 20% resilience/failure headroom (deliberately crude — real
        schedulers use user-supplied walltime limits)."""
        return 1.2 * app.baseline_time
