"""Slack-based mapping (Sec. III-D3).

Applications are prioritized by *slack* — the headroom between what the
application still needs (its baseline execution time) and its deadline.
The paper defines slack at arrival as ``T_D - (T_B + T_A)``; for a
queued application the quantity that actually determines feasibility is
the same expression with the current time in place of the arrival time
(an application that has been waiting has consumed slack), which is
what makes the policy's drop rule meaningful: "a negative slack value
indicates that an application will not be able to complete execution
before its deadline.  All such applications are dropped from the
system."

After clearing negative-slack applications, the policy schedules in
ascending slack order, skipping (not blocking on) applications that do
not fit.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.rm.base import Placer, ResourceManager
from repro.workload.application import Application


def remaining_slack(app: Application, now: float) -> float:
    """Slack of *app* as of *now*: deadline - (now + baseline).

    Applications without deadlines have infinite slack.
    """
    if app.deadline is None:
        return float("inf")
    return app.deadline - (now + app.baseline_time)


class SlackBased(ResourceManager):
    """Least-slack-first mapping with proactive dropping."""

    name = "slack"

    def map_applications(
        self, pending: Sequence[Application], placer: Placer, now: float
    ) -> List[Application]:
        """Drop negative-slack applications, then place in ascending-slack order, skipping non-fitting ones."""
        viable: List[Application] = []
        for app in pending:
            if remaining_slack(app, now) < 0.0:
                placer.drop(app)
            else:
                viable.append(app)
        queue = sorted(
            viable, key=lambda a: (remaining_slack(a, now), a.arrival_time, a.app_id)
        )
        unmapped: List[Application] = []
        for app in queue:
            if placer.can_place(app):
                placer.place(app)
            else:
                unmapped.append(app)
        unmapped.sort(key=lambda a: (a.arrival_time, a.app_id))
        return unmapped
