"""Resource-management policies: FCFS, Random, Slack-based (Sec. III-D)."""

from repro.rm.base import Placer, ReservingPlacer, ResourceManager
from repro.rm.easy import EasyBackfill, shadow_time_and_extra
from repro.rm.fcfs import FCFS
from repro.rm.random_policy import RandomMapping
from repro.rm.registry import extended_manager_names, make_manager, manager_names
from repro.rm.slack import SlackBased, remaining_slack

__all__ = [
    "EasyBackfill",
    "FCFS",
    "Placer",
    "ReservingPlacer",
    "RandomMapping",
    "ResourceManager",
    "SlackBased",
    "extended_manager_names",
    "make_manager",
    "manager_names",
    "remaining_slack",
    "shadow_time_and_extra",
]
