"""Resource-manager registry for the Sec. VI/VII studies."""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from repro.rm.base import ResourceManager
from repro.rm.easy import EasyBackfill
from repro.rm.fcfs import FCFS
from repro.rm.random_policy import RandomMapping
from repro.rm.slack import SlackBased

#: Factories keyed by policy name.  Random needs an RNG, the others
#: ignore it — a uniform signature keeps the experiment drivers simple.
_FACTORIES: Dict[str, Callable[[np.random.Generator], ResourceManager]] = {
    "fcfs": lambda rng: FCFS(),
    "easy": lambda rng: EasyBackfill(),
    "random": lambda rng: RandomMapping(rng),
    "slack": lambda rng: SlackBased(),
}


def manager_names() -> List[str]:
    """The three policies of Figs. 4-5, in plot order."""
    return ["fcfs", "random", "slack"]


def extended_manager_names() -> List[str]:
    """The paper's three policies plus the EASY-backfilling extension."""
    return ["fcfs", "easy", "random", "slack"]


def make_manager(name: str, rng: np.random.Generator) -> ResourceManager:
    """Instantiate a policy by name."""
    if name not in _FACTORIES:
        raise KeyError(
            f"unknown resource manager {name!r}; expected one of {manager_names()}"
        )
    return _FACTORIES[name](rng)
