"""Random mapping (Sec. III-D2).

"The random resource scheduling technique randomly selects an
application from the set of mappable applications and assigns it to
execute on the first available set of nodes able to accommodate the
application's size.  If not enough nodes are available, then the
application is returned to the set of unmapped applications.  This
process is repeated until the set of mappable applications is empty."

Unlike FCFS this policy effectively backfills: an application that does
not fit is set aside and the draw continues with the rest.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.rm.base import Placer, ResourceManager
from repro.workload.application import Application


class RandomMapping(ResourceManager):
    """Uniform-random mapping order with skip-on-no-fit."""

    name = "random"

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng

    def map_applications(
        self, pending: Sequence[Application], placer: Placer, now: float
    ) -> List[Application]:
        """Place in uniformly random order, skipping applications that do not fit."""
        mappable = list(pending)
        unmapped: List[Application] = []
        while mappable:
            index = int(self._rng.integers(0, len(mappable)))
            app = mappable.pop(index)
            if placer.can_place(app):
                placer.place(app)
            else:
                unmapped.append(app)
        # Preserve arrival order in the returned queue.
        unmapped.sort(key=lambda a: (a.arrival_time, a.app_id))
        return unmapped
