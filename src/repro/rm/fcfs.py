"""First-come-first-served mapping (Sec. III-D1).

"This technique operates by scheduling applications from the set of
unmapped applications in the order that they arrive to the system until
there are not enough nodes left for the most recently arrived
application" — i.e. strict queue order with **no backfilling**: the
first application that does not fit blocks everything behind it until a
future mapping event.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.rm.base import Placer, ResourceManager
from repro.workload.application import Application


class FCFS(ResourceManager):
    """Strict arrival-order mapping without backfill."""

    name = "fcfs"

    def map_applications(
        self, pending: Sequence[Application], placer: Placer, now: float
    ) -> List[Application]:
        """Place in arrival order; stop at the first application that does not fit (no backfill)."""
        queue = list(pending)
        while queue:
            head = queue[0]
            if not placer.can_place(head):
                break
            placer.place(head)
            queue.pop(0)
        return queue
