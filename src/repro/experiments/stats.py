"""Summary statistics for experiment aggregation.

Every bar in the paper's figures is a mean over independent trials with
a standard-deviation whisker; this module computes those plus standard
errors and normal-approximation confidence intervals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as sp_stats


@dataclass(frozen=True)
class SummaryStats:
    """Mean / spread summary of one sample."""

    n: int
    mean: float
    std: float

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "SummaryStats":
        """Summarize a non-empty sample (ddof=1 standard deviation)."""
        if len(samples) == 0:
            raise ValueError("cannot summarize an empty sample")
        arr = np.asarray(list(samples), dtype=float)
        std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
        return cls(n=int(arr.size), mean=float(arr.mean()), std=std)

    @property
    def sem(self) -> float:
        """Standard error of the mean.

        A single observation carries no spread information, so ``n <= 1``
        yields ``inf`` (an infinite-width interval) rather than a falsely
        converged 0.0 — adaptive early-stopping must never stop on one
        trial.
        """
        if self.n <= 1:
            return math.inf
        return self.std / math.sqrt(self.n)

    def ci95(self) -> tuple[float, float]:
        """Normal-approximation 95% confidence interval of the mean
        (infinite half-width when ``n <= 1`` — see :attr:`sem`)."""
        half = 1.96 * self.sem
        return (self.mean - half, self.mean + half)

    def merge(self, other: "SummaryStats") -> "SummaryStats":
        """Combine two summaries of disjoint samples without re-reading
        the raw observations (Chan et al.'s pairwise update).

        Equivalent to :meth:`from_samples` on the concatenation of the
        two underlying samples, up to floating-point rounding — the
        property tests pin this.  The adaptive campaign controller uses
        it to accumulate per-cell trial batches.
        """
        n1, n2 = self.n, other.n
        n = n1 + n2
        delta = other.mean - self.mean
        mean = self.mean + delta * (n2 / n)
        # Pooled sum of squared deviations (M2) from the two ddof=1
        # standard deviations plus the between-group term.
        m2 = (
            (n1 - 1) * self.std**2
            + (n2 - 1) * other.std**2
            + delta**2 * (n1 * n2 / n)
        )
        std = math.sqrt(max(m2, 0.0) / (n - 1)) if n > 1 else 0.0
        return SummaryStats(n=n, mean=mean, std=std)

    def __str__(self) -> str:
        return f"{self.mean:.4f} +/- {self.std:.4f} (n={self.n})"


@dataclass(frozen=True)
class PairedSummary:
    """Summary of paired differences ``a_i - b_i``.

    Produced by :func:`paired_summary` for common-random-numbers
    comparisons; ``p_value`` comes from the paired t-test (nan when the
    differences are constant or there are fewer than two pairs).
    """

    diff: SummaryStats
    p_value: float

    @property
    def significant(self) -> bool:
        """Whether the mean difference is nonzero at the 5% level."""
        return bool(self.p_value == self.p_value and self.p_value < 0.05)

    def __str__(self) -> str:
        return f"diff {self.diff} (paired t-test p={self.p_value:.4g})"


def paired_summary(a: Sequence[float], b: Sequence[float]) -> PairedSummary:
    """Paired comparison of two equally long samples (``a - b``)."""
    if len(a) != len(b):
        raise ValueError(f"paired samples must match in length: {len(a)} vs {len(b)}")
    if len(a) == 0:
        raise ValueError("cannot compare empty samples")
    diffs = np.asarray(list(a), dtype=float) - np.asarray(list(b), dtype=float)
    summary = SummaryStats.from_samples(diffs.tolist())
    if len(diffs) < 2 or np.allclose(diffs, diffs[0]):
        p_value = float("nan")
    else:
        p_value = float(sp_stats.ttest_rel(list(a), list(b)).pvalue)
    return PairedSummary(diff=summary, p_value=p_value)
