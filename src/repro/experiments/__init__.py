"""Experiment harness: one driver per paper table/figure, plus the
shared runners, statistics, and reporting."""

from repro.experiments import fig1, fig2, fig3, fig4, fig5, sweep, tables
from repro.experiments.barchart import datacenter_barchart, scaling_barchart
from repro.experiments.config import DatacenterStudyConfig, ScalingStudyConfig
from repro.experiments.parallel import (
    CellProgress,
    CellTask,
    ExecutorMetrics,
    ExecutorOptions,
    ResultCache,
    TrialExecutor,
    cache_key,
)
from repro.experiments.export import (
    datacenter_to_csv,
    datacenter_to_json,
    scaling_to_csv,
    scaling_to_json,
)
from repro.experiments.reporting import (
    render_datacenter_study,
    render_scaling_study,
)
from repro.experiments.runner import (
    DatacenterCell,
    DatacenterStudyResult,
    ScalingCell,
    ScalingStudyResult,
    generate_patterns,
    run_datacenter_study,
    run_scaling_study,
)
from repro.experiments.stats import PairedSummary, SummaryStats, paired_summary

__all__ = [
    "CellProgress",
    "CellTask",
    "DatacenterCell",
    "DatacenterStudyConfig",
    "DatacenterStudyResult",
    "ExecutorMetrics",
    "ExecutorOptions",
    "ResultCache",
    "TrialExecutor",
    "cache_key",
    "ScalingCell",
    "ScalingStudyConfig",
    "ScalingStudyResult",
    "PairedSummary",
    "SummaryStats",
    "paired_summary",
    "datacenter_barchart",
    "datacenter_to_csv",
    "datacenter_to_json",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "generate_patterns",
    "scaling_barchart",
    "scaling_to_csv",
    "scaling_to_json",
    "render_datacenter_study",
    "render_scaling_study",
    "run_datacenter_study",
    "run_scaling_study",
    "sweep",
    "tables",
]
