"""Figure 3: efficiency vs. application size for D64 with node MTBF
reduced to 2.5 years (the manycore-reliability sensitivity study).

Expected shape (Sec. V): every technique decays faster than at ten
years; "traditional Checkpoint Restart is particularly affected ...
with it spending so much time creating and restoring from checkpoints
that applications are unable to even complete execution at exascale
sizes" — its efficiency pins at the simulation's walltime-cap floor.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.constants import LOW_NODE_MTBF_S
from repro.experiments.config import ScalingStudyConfig
from repro.experiments.parallel import ExecutorOptions
from repro.experiments.reporting import render_scaling_study
from repro.experiments.runner import ScalingStudyResult, run_scaling_study

TITLE = "Fig. 3 — efficiency vs. size, application D64, node MTBF 2.5 years"


def config(**overrides) -> ScalingStudyConfig:
    """Paper-parameter configuration (2.5-year MTBF default)."""
    overrides.setdefault("node_mtbf_s", LOW_NODE_MTBF_S)
    return ScalingStudyConfig(app_type="D64", **overrides)


def run(
    cfg: Optional[ScalingStudyConfig] = None,
    progress: Optional[Callable[[str], None]] = None,
    options: Optional[ExecutorOptions] = None,
    observe: bool = False,
) -> ScalingStudyResult:
    """Run the study (paper parameters unless *cfg* overrides).

    ``observe=True`` collects the domain-event stream and merged
    metrics on the result (passive; numbers are unchanged)."""
    return run_scaling_study(
        cfg or config(), progress=progress, options=options, observe=observe
    )


def render(result: ScalingStudyResult) -> str:
    """Paper-style table of the result."""
    return render_scaling_study(result, TITLE)


def main(trials: int = 200, quick: bool = False) -> str:
    """CLI body: run at *trials* (quick mode caps at 10) and render."""
    cfg = config(trials=trials)
    if quick:
        cfg = cfg.quick(trials=min(trials, 10))
    return render(run(cfg))
