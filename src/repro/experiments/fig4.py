"""Figure 4: dropped-application percentage for every (resilience
technique x resource manager) combination plus the Ideal Baseline,
over 50 shared arrival patterns (Sec. VI).

Expected shape: all combinations drop more than the Ideal Baseline
(failures + resilience overhead cost real capacity), and "the optimal
resilience technique varies among resource management techniques".
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.core.selection import FixedSelector
from repro.experiments.config import DatacenterStudyConfig
from repro.experiments.parallel import ExecutorOptions
from repro.experiments.reporting import render_datacenter_study
from repro.experiments.runner import (
    DatacenterStudyResult,
    SelectorFactory,
    run_datacenter_study,
)
from repro.resilience.registry import datacenter_techniques
from repro.rm.registry import manager_names

TITLE = (
    "Fig. 4 — dropped applications (%) per resilience technique and "
    "resource manager"
)

SELECTOR_ORDER = ("checkpoint_restart", "multilevel", "parallel_recovery", "ideal")


def selectors() -> Dict[str, SelectorFactory]:
    """Fixed-technique selectors for the three datacenter techniques."""
    return {
        t.name: (lambda t=t: FixedSelector(t)) for t in datacenter_techniques()
    }


def config(**overrides) -> DatacenterStudyConfig:
    """Paper-parameter configuration for this figure."""
    return DatacenterStudyConfig(**overrides)


def run(
    cfg: Optional[DatacenterStudyConfig] = None,
    progress: Optional[Callable[[str], None]] = None,
    options: Optional[ExecutorOptions] = None,
    observe: bool = False,
) -> DatacenterStudyResult:
    """Run the (RM x technique + ideal) grid over shared patterns.

    ``observe=True`` collects the domain-event stream and merged
    metrics on the result (passive; numbers are unchanged)."""
    study, _ = run_datacenter_study(
        cfg or config(),
        selectors=selectors(),
        rm_names=manager_names(),
        include_ideal=True,
        progress=progress,
        options=options,
        observe=observe,
    )
    return study


def render(result: DatacenterStudyResult) -> str:
    """Paper-style table of the result."""
    title = f"{TITLE} ({result.config.patterns} arrival patterns)"
    return render_datacenter_study(
        result, title, rm_names=manager_names(), selector_names=SELECTOR_ORDER
    )


def best_technique_per_rm(result: DatacenterStudyResult) -> Dict[str, str]:
    """Lowest-dropping technique (excluding ideal) per resource manager."""
    from repro.workload.patterns import PatternBias

    out: Dict[str, str] = {}
    for rm in manager_names():
        candidates: Tuple[str, ...] = tuple(
            s for s in SELECTOR_ORDER if s != "ideal"
        )
        out[rm] = min(
            candidates,
            key=lambda s: result.cell(rm, s, PatternBias.UNBIASED).stats.mean,
        )
    return out


def main(patterns: int = 50, quick: bool = False) -> str:
    """CLI body: run at *patterns* and render with the best-per-RM line."""
    cfg = config(patterns=patterns)
    if quick:
        cfg = cfg.quick()
    result = run(cfg)
    text = render(result)
    best = best_technique_per_rm(result)
    text += "\nbest technique per RM: " + ", ".join(
        f"{rm}->{tech}" for rm, tech in best.items()
    )
    return text
