"""Generic parameter sweeps for the ablation benches.

Each sweep simulates a reference configuration while varying one model
parameter, quantifying how the reproduction's conclusions depend on it
(DESIGN.md, Sec. 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.single_app import SingleAppConfig, run_trials
from repro.experiments.parallel import (
    CellTask,
    ExecutorOptions,
    run_cells,
    technique_fingerprint,
)
from repro.experiments.stats import SummaryStats
from repro.platform.presets import exascale_system
from repro.resilience.base import CheckpointLevel, ExecutionPlan
from repro.resilience.checkpoint_restart import CheckpointRestart
from repro.resilience.multilevel import MultilevelCheckpoint
from repro.resilience.parallel_recovery import ParallelRecovery
from repro.workload.synthetic import make_application


@dataclass(frozen=True)
class SweepRow:
    """One parameter value and the efficiency it produced."""

    label: str
    stats: SummaryStats


def _sweep_rows(
    labelled_cells,
    system,
    trials: int,
    options: Optional[ExecutorOptions],
) -> List[SweepRow]:
    """Run (label, app, technique, config) cells through the executor.

    Each row is one independent cell, so ``ExecutorOptions(jobs=N)``
    sweeps N parameter values concurrently with results identical to
    the serial loop.
    """
    tasks = [
        CellTask(
            fn=lambda app=app, technique=technique, config=config: tuple(
                run_trials(app, technique, system, trials, config).efficiencies
            ),
            key_parts=(
                "sweep",
                config,
                technique_fingerprint(technique),
                app.type_name,
                app.nodes,
                app.time_steps,
                trials,
            ),
            trials=trials,
            label=label,
        )
        for label, app, technique, config in labelled_cells
    ]
    efficiencies = run_cells(tasks, options)
    return [
        SweepRow(label=label, stats=SummaryStats.from_samples(effs))
        for (label, _, _, _), effs in zip(labelled_cells, efficiencies)
    ]


def severity_pmf_sweep_sim(
    pmfs: Sequence[Tuple[float, float, float]],
    app_type: str = "D64",
    fraction: float = 0.25,
    trials: int = 10,
    system_nodes: int = 120_000,
    seed: int = 2017,
    options: Optional[ExecutorOptions] = None,
) -> List[SweepRow]:
    """Simulated multilevel efficiency across severity PMFs."""
    system = exascale_system(system_nodes)
    app = make_application(app_type, nodes=system.fraction_to_nodes(fraction))
    cells = [
        (
            f"pmf={pmf}",
            app,
            MultilevelCheckpoint(),
            SingleAppConfig(severity_pmf=pmf, seed=seed),
        )
        for pmf in pmfs
    ]
    return _sweep_rows(cells, system, trials, options)


def recovery_parallelism_sweep_sim(
    sigmas: Sequence[float],
    app_type: str = "D64",
    fraction: float = 0.50,
    trials: int = 10,
    system_nodes: int = 120_000,
    seed: int = 2017,
    options: Optional[ExecutorOptions] = None,
) -> List[SweepRow]:
    """Simulated Parallel Recovery efficiency across sigma values."""
    system = exascale_system(system_nodes)
    app = make_application(app_type, nodes=system.fraction_to_nodes(fraction))
    config = SingleAppConfig(seed=seed)
    cells = [
        (
            f"sigma={sigma:g}",
            app,
            ParallelRecovery(recovery_parallelism=sigma),
            config,
        )
        for sigma in sigmas
    ]
    return _sweep_rows(cells, system, trials, options)


def checkpoint_interval_sweep_sim(
    scale_factors: Sequence[float],
    app_type: str = "C32",
    fraction: float = 0.25,
    trials: int = 10,
    system_nodes: int = 120_000,
    seed: int = 2017,
    node_mtbf_s: Optional[float] = None,
    options: Optional[ExecutorOptions] = None,
) -> List[SweepRow]:
    """Checkpoint Restart efficiency with the Daly-optimal period
    multiplied by each scale factor — validates in-simulation that the
    Eq. 4 optimum actually maximizes efficiency (scale 1.0 should win).
    """
    system = exascale_system(system_nodes)
    app = make_application(app_type, nodes=system.fraction_to_nodes(fraction))
    base_config = (
        SingleAppConfig(seed=seed)
        if node_mtbf_s is None
        else SingleAppConfig(seed=seed, node_mtbf_s=node_mtbf_s)
    )
    cells = [
        (
            f"tau x {factor:g}",
            app,
            _ScaledIntervalCheckpointRestart(factor),
            base_config,
        )
        for factor in scale_factors
    ]
    return _sweep_rows(cells, system, trials, options)


class _ScaledIntervalCheckpointRestart(CheckpointRestart):
    """Checkpoint Restart with its optimal period scaled by a factor."""

    def __init__(self, factor: float) -> None:
        if factor <= 0:
            raise ValueError(f"factor must be > 0, got {factor}")
        self.factor = factor
        self.name = f"checkpoint_restart_x{factor:g}"

    def plan(self, app, system, node_mtbf_s, severity=None) -> ExecutionPlan:
        base = super().plan(app, system, node_mtbf_s, severity)
        level = base.levels[0]
        scaled = CheckpointLevel(
            index=level.index,
            recovers_severity=level.recovers_severity,
            cost_s=level.cost_s,
            restart_s=level.restart_s,
            period_s=level.period_s * self.factor,
        )
        return ExecutionPlan(
            app=base.app,
            technique=self.name,
            work_rate=base.work_rate,
            levels=(scaled,),
            nodes_required=base.nodes_required,
        )


def render_sweep(rows: Sequence[SweepRow], title: str) -> str:
    """Fixed-width rendering of one sweep."""
    width = max(len(r.label) for r in rows)
    lines = [title, "-" * (width + 30)]
    for row in rows:
        lines.append(
            f"{row.label:<{width}}  {row.stats.mean:.4f} +/- {row.stats.std:.4f}"
        )
    return "\n".join(lines)
