"""Experiment configurations.

Each figure driver accepts a config with the paper's parameters as
defaults and a :meth:`quick` constructor producing a statistically
coarser but structurally identical run (fewer trials/patterns, smaller
machine) for CI and the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence, Tuple

from repro import constants
from repro.constants import (
    DEFAULT_NODE_MTBF_S,
    EXASCALE_NODES,
    PATTERN_ARRIVALS,
    PATTERN_COUNT,
    SCALING_STUDY_FRACTIONS,
    SCALING_STUDY_TRIALS,
)


@dataclass(frozen=True)
class ScalingStudyConfig:
    """Parameters of a Figs. 1-3 run."""

    app_type: str = "A32"
    node_mtbf_s: float = DEFAULT_NODE_MTBF_S
    fractions: Tuple[float, ...] = SCALING_STUDY_FRACTIONS
    trials: int = SCALING_STUDY_TRIALS
    system_nodes: int = EXASCALE_NODES
    baseline_s: float = constants.SCALING_STUDY_BASELINE_S
    seed: int = 2017
    severity_pmf: Optional[Tuple[float, float, float]] = None

    def __post_init__(self) -> None:
        if self.trials <= 0:
            raise ValueError(f"trials must be > 0, got {self.trials}")
        if self.system_nodes <= 0:
            raise ValueError(f"system_nodes must be > 0, got {self.system_nodes}")
        if not self.fractions:
            raise ValueError("need at least one fraction")

    def quick(
        self, trials: int = 10, fractions: Optional[Sequence[float]] = None
    ) -> "ScalingStudyConfig":
        """A cheap variant for CI/benchmarks."""
        return replace(
            self,
            trials=trials,
            fractions=tuple(fractions) if fractions is not None else self.fractions,
        )


@dataclass(frozen=True)
class DatacenterStudyConfig:
    """Parameters of a Figs. 4-5 run."""

    node_mtbf_s: float = DEFAULT_NODE_MTBF_S
    patterns: int = PATTERN_COUNT
    arrivals_per_pattern: int = PATTERN_ARRIVALS
    system_nodes: int = EXASCALE_NODES
    seed: int = 2017
    severity_pmf: Optional[Tuple[float, float, float]] = None

    def __post_init__(self) -> None:
        if self.patterns <= 0:
            raise ValueError(f"patterns must be > 0, got {self.patterns}")
        if self.arrivals_per_pattern <= 0:
            raise ValueError(
                f"arrivals_per_pattern must be > 0, got {self.arrivals_per_pattern}"
            )

    def quick(self, patterns: int = 5, arrivals: int = 40) -> "DatacenterStudyConfig":
        """A cheap variant for CI/benchmarks."""
        return replace(self, patterns=patterns, arrivals_per_pattern=arrivals)
