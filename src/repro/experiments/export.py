"""Result export: CSV and JSON serialization of study results.

The in-process result objects (:class:`ScalingStudyResult`,
:class:`DatacenterStudyResult`) are what the harness asserts against;
downstream users plotting with their own tools want flat files.  These
exporters emit one row per bar with means, standard deviations, and
sample counts — everything needed to redraw the paper's figures.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Dict, List

from repro.experiments.runner import DatacenterStudyResult, ScalingStudyResult

SCALING_FIELDS = [
    "app_type",
    "fraction",
    "technique",
    "mean_efficiency",
    "std_efficiency",
    "trials",
    "infeasible",
]

DATACENTER_FIELDS = [
    "bias",
    "rm",
    "selector",
    "mean_dropped_pct",
    "std_dropped_pct",
    "patterns",
]


def scaling_rows(result: ScalingStudyResult) -> List[Dict[str, Any]]:
    """Flat rows for one Figs. 1-3 panel."""
    rows: List[Dict[str, Any]] = []
    for cell in result.cells:
        rows.append(
            {
                "app_type": result.config.app_type,
                "fraction": cell.fraction,
                "technique": cell.technique,
                "mean_efficiency": cell.mean_efficiency,
                "std_efficiency": cell.stats.std if cell.stats else 0.0,
                "trials": cell.stats.n if cell.stats else 0,
                "infeasible": cell.infeasible,
            }
        )
    return rows


def datacenter_rows(result: DatacenterStudyResult) -> List[Dict[str, Any]]:
    """Flat rows for one Figs. 4-5 grid."""
    rows: List[Dict[str, Any]] = []
    for cell in result.cells:
        rows.append(
            {
                "bias": cell.bias.value,
                "rm": cell.rm_name,
                "selector": cell.selector_name,
                "mean_dropped_pct": cell.stats.mean,
                "std_dropped_pct": cell.stats.std,
                "patterns": cell.stats.n,
            }
        )
    return rows


def _to_csv(rows: List[Dict[str, Any]], fields: List[str]) -> str:
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=fields, lineterminator="\n")
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def scaling_to_csv(result: ScalingStudyResult) -> str:
    """CSV text for a Figs. 1-3 panel."""
    return _to_csv(scaling_rows(result), SCALING_FIELDS)


def datacenter_to_csv(result: DatacenterStudyResult) -> str:
    """CSV text for a Figs. 4-5 grid."""
    return _to_csv(datacenter_rows(result), DATACENTER_FIELDS)


def scaling_to_json(result: ScalingStudyResult) -> str:
    """JSON text (with config metadata) for a Figs. 1-3 panel."""
    payload = {
        "config": {
            "app_type": result.config.app_type,
            "node_mtbf_s": result.config.node_mtbf_s,
            "trials": result.config.trials,
            "system_nodes": result.config.system_nodes,
            "fractions": list(result.config.fractions),
            "seed": result.config.seed,
        },
        "cells": scaling_rows(result),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def datacenter_to_json(result: DatacenterStudyResult) -> str:
    """JSON text (with config metadata) for a Figs. 4-5 grid."""
    payload = {
        "config": {
            "node_mtbf_s": result.config.node_mtbf_s,
            "patterns": result.config.patterns,
            "arrivals_per_pattern": result.config.arrivals_per_pattern,
            "system_nodes": result.config.system_nodes,
            "seed": result.config.seed,
        },
        "cells": datacenter_rows(result),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
