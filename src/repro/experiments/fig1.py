"""Figure 1: efficiency vs. application size for the low-memory,
low-communication type A32 at a ten-year node MTBF.

Expected shape (Sec. V): Parallel Recovery is the most efficient at
every size; Checkpoint Restart degrades fastest as the application
grows; both redundancy variants fall between them and hit zero at 100%
of the system (not enough nodes for replicas).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.experiments.config import ScalingStudyConfig
from repro.experiments.parallel import ExecutorOptions
from repro.experiments.reporting import render_scaling_study
from repro.experiments.runner import ScalingStudyResult, run_scaling_study

TITLE = "Fig. 1 — efficiency vs. size, application A32, node MTBF 10 years"


def config(**overrides) -> ScalingStudyConfig:
    """Paper-parameter configuration for this figure."""
    return ScalingStudyConfig(app_type="A32", **overrides)


def run(
    cfg: Optional[ScalingStudyConfig] = None,
    progress: Optional[Callable[[str], None]] = None,
    options: Optional[ExecutorOptions] = None,
    observe: bool = False,
) -> ScalingStudyResult:
    """Run the study (paper parameters unless *cfg* overrides).

    ``observe=True`` collects the domain-event stream and merged
    metrics on the result (passive; numbers are unchanged)."""
    return run_scaling_study(
        cfg or config(), progress=progress, options=options, observe=observe
    )


def render(result: ScalingStudyResult) -> str:
    """Paper-style table of the result."""
    return render_scaling_study(result, TITLE)


def main(trials: int = 200, quick: bool = False) -> str:
    """CLI body: run at *trials* (quick mode caps at 10) and render."""
    cfg = config(trials=trials)
    if quick:
        cfg = cfg.quick(trials=min(trials, 10))
    return render(run(cfg))
