"""Experiment runners: the machinery shared by all figure drivers.

- :func:`run_scaling_study` reproduces one Figs. 1-3 panel: a grid of
  (system fraction x technique) mean efficiencies.
- :func:`run_datacenter_study` reproduces one group of Figs. 4-5 bars:
  dropped percentages per (resource manager x selector) over a common
  set of arrival patterns (the same patterns are replayed for every
  combination, as the paper prescribes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.datacenter import DatacenterConfig, DatacenterResult, run_datacenter
from repro.core.selection import TechniqueSelector
from repro.core.single_app import SingleAppConfig, run_trials
from repro.experiments.config import DatacenterStudyConfig, ScalingStudyConfig
from repro.experiments.stats import SummaryStats
from repro.platform.presets import exascale_system
from repro.resilience.base import ResilienceTechnique
from repro.resilience.registry import scaling_study_techniques
from repro.rm.registry import make_manager
from repro.rng.streams import StreamFactory
from repro.units import MINUTE
from repro.workload.patterns import ArrivalPattern, PatternBias, PatternGenerator
from repro.workload.synthetic import make_application


@dataclass(frozen=True)
class ScalingCell:
    """One bar of a Figs. 1-3 panel."""

    fraction: float
    technique: str
    stats: Optional[SummaryStats]
    infeasible: bool

    @property
    def mean_efficiency(self) -> float:
        """Mean efficiency of the bar (0 when infeasible)."""
        return 0.0 if (self.infeasible or self.stats is None) else self.stats.mean


@dataclass
class ScalingStudyResult:
    """A full Figs. 1-3 panel."""

    config: ScalingStudyConfig
    cells: List[ScalingCell] = field(default_factory=list)

    def cell(self, fraction: float, technique: str) -> ScalingCell:
        """The bar at (*fraction*, *technique*); KeyError if absent."""
        for c in self.cells:
            if c.technique == technique and abs(c.fraction - fraction) < 1e-12:
                return c
        raise KeyError((fraction, technique))

    def series(self, technique: str) -> List[ScalingCell]:
        """One technique's curve, ascending by fraction."""
        out = [c for c in self.cells if c.technique == technique]
        return sorted(out, key=lambda c: c.fraction)

    def techniques(self) -> List[str]:
        """Technique names in first-appearance order."""
        seen: List[str] = []
        for c in self.cells:
            if c.technique not in seen:
                seen.append(c.technique)
        return seen

    def best_technique(self, fraction: float) -> str:
        """Highest mean efficiency at one fraction."""
        at = [c for c in self.cells if abs(c.fraction - fraction) < 1e-12]
        return max(at, key=lambda c: c.mean_efficiency).technique


def run_scaling_study(
    config: ScalingStudyConfig,
    techniques: Optional[Sequence[ResilienceTechnique]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> ScalingStudyResult:
    """Run one Sec. V panel (Figs. 1-3)."""
    techniques = (
        list(techniques) if techniques is not None else scaling_study_techniques()
    )
    system = exascale_system(config.system_nodes)
    app_config = SingleAppConfig(
        node_mtbf_s=config.node_mtbf_s,
        severity_pmf=config.severity_pmf,
        seed=config.seed,
    )
    result = ScalingStudyResult(config=config)
    for fraction in config.fractions:
        nodes = system.fraction_to_nodes(fraction)
        app = make_application(
            config.app_type,
            nodes=nodes,
            time_steps=max(1, round(config.baseline_s / MINUTE)),
        )
        for technique in techniques:
            trial_set = run_trials(app, technique, system, config.trials, app_config)
            if trial_set.infeasible:
                cell = ScalingCell(fraction, technique.name, None, True)
            else:
                cell = ScalingCell(
                    fraction,
                    technique.name,
                    SummaryStats.from_samples(trial_set.efficiencies),
                    False,
                )
            result.cells.append(cell)
            if progress is not None:
                progress(
                    f"{config.app_type} {100 * fraction:5.1f}% "
                    f"{technique.name:<22} done"
                )
    return result


@dataclass(frozen=True)
class DatacenterCell:
    """One bar of a Figs. 4-5 group: dropped % over patterns."""

    rm_name: str
    selector_name: str
    bias: PatternBias
    stats: SummaryStats
    #: Raw per-pattern dropped percentages, for paired comparisons.
    samples: Tuple[float, ...]


@dataclass
class DatacenterStudyResult:
    """A grid of datacenter bars sharing one pattern set."""

    config: DatacenterStudyConfig
    cells: List[DatacenterCell] = field(default_factory=list)

    def cell(
        self, rm_name: str, selector_name: str, bias: PatternBias
    ) -> DatacenterCell:
        """The bar at (*rm*, *selector*, *bias*); KeyError if absent."""
        for c in self.cells:
            if (
                c.rm_name == rm_name
                and c.selector_name == selector_name
                and c.bias is bias
            ):
                return c
        raise KeyError((rm_name, selector_name, bias))


SelectorFactory = Callable[[], TechniqueSelector]


def generate_patterns(
    config: DatacenterStudyConfig, bias: PatternBias
) -> List[ArrivalPattern]:
    """The pattern set shared by every combination of one study."""
    streams = StreamFactory(config.seed)
    generator = PatternGenerator(streams, config.system_nodes)
    return generator.generate_many(
        count=config.patterns, bias=bias, arrivals=config.arrivals_per_pattern
    )


def run_datacenter_study(
    config: DatacenterStudyConfig,
    selectors: Dict[str, SelectorFactory],
    rm_names: Sequence[str],
    biases: Sequence[PatternBias] = (PatternBias.UNBIASED,),
    include_ideal: bool = False,
    progress: Optional[Callable[[str], None]] = None,
    keep_results: bool = False,
) -> Tuple[DatacenterStudyResult, List[DatacenterResult]]:
    """Run a Figs. 4-5 grid.

    ``selectors`` maps a display name to a zero-arg factory (a fresh
    selector per combination keeps selection counters per-cell).  When
    ``include_ideal`` is set, an extra "ideal" selector column runs with
    failures and resilience disabled.
    """
    study = DatacenterStudyResult(config=config)
    raw: List[DatacenterResult] = []
    streams = StreamFactory(config.seed)
    for bias in biases:
        patterns = generate_patterns(config, bias)
        columns: List[Tuple[str, Optional[SelectorFactory]]] = [
            (name, factory) for name, factory in selectors.items()
        ]
        if include_ideal:
            columns.append(("ideal", None))
        for rm_name in rm_names:
            for sel_name, factory in columns:
                samples: List[float] = []
                for pattern in patterns:
                    system = exascale_system(config.system_nodes)
                    manager = make_manager(
                        rm_name,
                        streams.fresh(
                            f"rm-{rm_name}-{sel_name}-{bias.value}-{pattern.index}"
                        ),
                    )
                    if factory is None:
                        dc_config = DatacenterConfig(
                            node_mtbf_s=config.node_mtbf_s,
                            severity_pmf=config.severity_pmf,
                            seed=config.seed,
                            ideal=True,
                        )
                        selector = _IdealSelector()
                    else:
                        dc_config = DatacenterConfig(
                            node_mtbf_s=config.node_mtbf_s,
                            severity_pmf=config.severity_pmf,
                            seed=config.seed,
                        )
                        selector = factory()
                    outcome = run_datacenter(
                        pattern, manager, selector, system, dc_config
                    )
                    samples.append(outcome.dropped_pct)
                    if keep_results:
                        raw.append(outcome)
                study.cells.append(
                    DatacenterCell(
                        rm_name=rm_name,
                        selector_name=sel_name,
                        bias=bias,
                        stats=SummaryStats.from_samples(samples),
                        samples=tuple(samples),
                    )
                )
                if progress is not None:
                    progress(f"{bias.value} {rm_name} {sel_name} done")
    return study, raw


class _IdealSelector:
    """Placeholder selector for ideal-baseline runs (never consulted)."""

    name = "ideal"

    def select(self, app, system):  # pragma: no cover - never called
        raise AssertionError("ideal runs must not consult the selector")
