"""Experiment runners: the machinery shared by all figure drivers.

- :func:`run_scaling_study` reproduces one Figs. 1-3 panel: a grid of
  (system fraction x technique) mean efficiencies.
- :func:`run_datacenter_study` reproduces one group of Figs. 4-5 bars:
  dropped percentages per (resource manager x selector) over a common
  set of arrival patterns (the same patterns are replayed for every
  combination, as the paper prescribes).

Both decompose their grids into independent cells executed through
:class:`repro.experiments.parallel.TrialExecutor`, so passing
``ExecutorOptions(jobs=N)`` fans the grid out over N worker processes
and ``ExecutorOptions(cache=True)`` memoises cells under
``results/.cache/``.  Every cell derives its randomness from the study
seed by name/index (never from execution order), so serial, parallel,
and cached runs produce bit-identical results; the default options
(``jobs=1``, no cache) preserve the historical serial behaviour.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.datacenter import (
    DatacenterConfig,
    DatacenterResult,
    run_datacenter_batch,
)
from repro.core.selection import TechniqueSelector
from repro.core.single_app import SingleAppConfig, run_trials
from repro.experiments.config import DatacenterStudyConfig, ScalingStudyConfig
from repro.experiments.parallel import (
    CellTask,
    ExecutorOptions,
    run_cells,
    technique_fingerprint,
)
from repro.experiments.stats import SummaryStats
from repro.obs.sinks import JsonlExportSink, MetricsSink
from repro.platform.presets import exascale_system
from repro.resilience.base import ResilienceTechnique
from repro.resilience.registry import scaling_study_techniques
from repro.rm.registry import make_manager
from repro.rng.streams import StreamFactory
from repro.units import MINUTE
from repro.workload.patterns import ArrivalPattern, PatternBias, PatternGenerator
from repro.workload.synthetic import make_application


def _fractions_equal(a: float, b: float) -> bool:
    """Tolerant fraction comparison: survives floats produced by
    arithmetic (``0.1 + 0.2``) while still separating distinct grid
    points, which differ by far more than the relative tolerance."""
    return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-12)


@dataclass(frozen=True)
class ScalingCell:
    """One bar of a Figs. 1-3 panel."""

    fraction: float
    technique: str
    stats: Optional[SummaryStats]
    infeasible: bool

    @property
    def mean_efficiency(self) -> float:
        """Mean efficiency of the bar (0 when infeasible)."""
        return 0.0 if (self.infeasible or self.stats is None) else self.stats.mean


@dataclass
class ScalingStudyResult:
    """A full Figs. 1-3 panel."""

    config: ScalingStudyConfig
    cells: List[ScalingCell] = field(default_factory=list)
    #: With ``observe=True``: every domain event of the study as JSON
    #: lines, in deterministic cell-submission/trial order.
    trace_lines: Optional[List[str]] = None
    #: With ``observe=True``: merged :meth:`MetricsSink.to_dict` data.
    metrics: Optional[Dict] = None

    def cell(self, fraction: float, technique: str) -> ScalingCell:
        """The bar at (*fraction*, *technique*); KeyError if absent."""
        for c in self.cells:
            if c.technique == technique and _fractions_equal(c.fraction, fraction):
                return c
        raise KeyError((fraction, technique))

    def series(self, technique: str) -> List[ScalingCell]:
        """One technique's curve, ascending by fraction."""
        out = [c for c in self.cells if c.technique == technique]
        return sorted(out, key=lambda c: c.fraction)

    def techniques(self) -> List[str]:
        """Technique names in first-appearance order."""
        seen: List[str] = []
        for c in self.cells:
            if c.technique not in seen:
                seen.append(c.technique)
        return seen

    def best_technique(self, fraction: float) -> str:
        """Highest mean efficiency at one fraction."""
        at = [c for c in self.cells if _fractions_equal(c.fraction, fraction)]
        return max(at, key=lambda c: c.mean_efficiency).technique


def _scaling_cell_body(
    app, technique, system, trials, app_config, observe=False, first_trial=0
):
    """Compute one scaling cell; returns plain data (cache payload).

    With *observe*, per-cell export/metrics sinks ride along and their
    plain-data contents are appended to the payload — the cell stays a
    pure function returning picklable data, so observation works
    unchanged across worker processes.  *first_trial* offsets the trial
    seed indices (see :func:`repro.core.single_app.run_trials`)."""
    if not observe:
        trial_set = run_trials(
            app, technique, system, trials, app_config, first_trial=first_trial
        )
        return trial_set.infeasible, tuple(trial_set.efficiencies)
    export = JsonlExportSink()
    metrics = MetricsSink()
    trial_set = run_trials(
        app,
        technique,
        system,
        trials,
        app_config,
        sinks=(export, metrics),
        first_trial=first_trial,
    )
    return (
        trial_set.infeasible,
        tuple(trial_set.efficiencies),
        tuple(export.lines),
        metrics.to_dict(),
    )


def run_scaling_study(
    config: ScalingStudyConfig,
    techniques: Optional[Sequence[ResilienceTechnique]] = None,
    progress: Optional[Callable[[str], None]] = None,
    options: Optional[ExecutorOptions] = None,
    observe: bool = False,
) -> ScalingStudyResult:
    """Run one Sec. V panel (Figs. 1-3).

    ``options`` selects worker count and caching; results are
    bit-identical for any ``jobs`` because each trial's seed derives
    from ``config.seed`` and the trial index alone.

    ``observe=True`` additionally collects the study's full domain-event
    stream (``result.trace_lines``, JSONL) and merged metrics
    (``result.metrics``).  Observation is passive — the numeric results
    are bit-identical with it on or off — but observing cells bypass
    the cache (their event streams are too heavy to memoise), and the
    line order is deterministic for any ``jobs``.
    """
    techniques = (
        list(techniques) if techniques is not None else scaling_study_techniques()
    )
    system = exascale_system(config.system_nodes)
    app_config = SingleAppConfig(
        node_mtbf_s=config.node_mtbf_s,
        severity_pmf=config.severity_pmf,
        seed=config.seed,
    )
    tasks: List[CellTask] = []
    labels: List[Tuple[float, str]] = []
    for fraction in config.fractions:
        nodes = system.fraction_to_nodes(fraction)
        app = make_application(
            config.app_type,
            nodes=nodes,
            time_steps=max(1, round(config.baseline_s / MINUTE)),
        )
        for technique in techniques:
            tasks.append(
                CellTask(
                    fn=lambda app=app, technique=technique: _scaling_cell_body(
                        app, technique, system, config.trials, app_config, observe
                    ),
                    key_parts=(
                        None
                        if observe
                        else (
                            "scaling",
                            config,
                            technique_fingerprint(technique),
                            fraction,
                        )
                    ),
                    trials=config.trials,
                    label=f"{config.app_type} {100 * fraction:g}% {technique.name}",
                )
            )
            labels.append((fraction, technique.name))

    outcomes = run_cells(tasks, options)

    result = ScalingStudyResult(config=config)
    merged_metrics = MetricsSink() if observe else None
    if observe:
        result.trace_lines = []
    for (fraction, technique_name), outcome in zip(labels, outcomes):
        infeasible, efficiencies = outcome[0], outcome[1]
        if observe:
            result.trace_lines.extend(outcome[2])
            merged_metrics.merge(outcome[3])
        if infeasible:
            cell = ScalingCell(fraction, technique_name, None, True)
        else:
            cell = ScalingCell(
                fraction,
                technique_name,
                SummaryStats.from_samples(efficiencies),
                False,
            )
        result.cells.append(cell)
        if progress is not None:
            progress(
                f"{config.app_type} {100 * fraction:5.1f}% "
                f"{technique_name:<22} done"
            )
    if merged_metrics is not None:
        result.metrics = merged_metrics.to_dict()
    return result


@dataclass(frozen=True)
class DatacenterCell:
    """One bar of a Figs. 4-5 group: dropped % over patterns."""

    rm_name: str
    selector_name: str
    bias: PatternBias
    stats: SummaryStats
    #: Raw per-pattern dropped percentages, for paired comparisons.
    samples: Tuple[float, ...]


@dataclass
class DatacenterStudyResult:
    """A grid of datacenter bars sharing one pattern set."""

    config: DatacenterStudyConfig
    cells: List[DatacenterCell] = field(default_factory=list)
    #: With ``observe=True``: every domain event of the study as JSON
    #: lines, in deterministic cell-submission/pattern order.
    trace_lines: Optional[List[str]] = None
    #: With ``observe=True``: merged :meth:`MetricsSink.to_dict` data.
    metrics: Optional[Dict] = None

    def cell(
        self, rm_name: str, selector_name: str, bias: PatternBias
    ) -> DatacenterCell:
        """The bar at (*rm*, *selector*, *bias*); KeyError if absent."""
        for c in self.cells:
            if (
                c.rm_name == rm_name
                and c.selector_name == selector_name
                and c.bias is bias
            ):
                return c
        raise KeyError((rm_name, selector_name, bias))


SelectorFactory = Callable[[], TechniqueSelector]


def generate_patterns(
    config: DatacenterStudyConfig, bias: PatternBias
) -> List[ArrivalPattern]:
    """The pattern set shared by every combination of one study."""
    streams = StreamFactory(config.seed)
    generator = PatternGenerator(streams, config.system_nodes)
    return generator.generate_many(
        count=config.patterns, bias=bias, arrivals=config.arrivals_per_pattern
    )


def _datacenter_cell_body(
    config: DatacenterStudyConfig,
    rm_name: str,
    sel_name: str,
    factory: Optional[SelectorFactory],
    bias: PatternBias,
    patterns: Sequence[ArrivalPattern],
    keep_results: bool,
    observe: bool = False,
):
    """Compute one datacenter cell over its shared pattern set.

    Every stochastic input is derived by name from ``config.seed``
    (manager streams via ``StreamFactory.fresh``, failure streams
    inside the simulator), so this body is a pure function of its
    arguments — safe to run on any worker in any order.  With
    *observe*, per-cell export/metrics sinks accumulate across the
    patterns and their plain-data contents extend the payload.

    The patterns run through
    :func:`~repro.core.datacenter.run_datacenter_batch`, which shares
    one system (reset between patterns) and one plan cache across the
    cell; the factories below recreate exactly the per-pattern stream
    names and selector instances the unbatched loop used, so cell
    payloads are bit-identical to per-pattern :func:`run_datacenter`
    calls (the batched-trials equivalence tests lock this down).
    """
    streams = StreamFactory(config.seed)
    export = JsonlExportSink() if observe else None
    metrics = MetricsSink() if observe else None
    sinks = (export, metrics) if observe else None
    if factory is None:
        dc_config = DatacenterConfig(
            node_mtbf_s=config.node_mtbf_s,
            severity_pmf=config.severity_pmf,
            seed=config.seed,
            ideal=True,
        )
        selector_factory = _IdealSelector
    else:
        dc_config = DatacenterConfig(
            node_mtbf_s=config.node_mtbf_s,
            severity_pmf=config.severity_pmf,
            seed=config.seed,
        )
        selector_factory = factory

    def manager_factory(pattern):
        return make_manager(
            rm_name,
            streams.fresh(f"rm-{rm_name}-{sel_name}-{bias.value}-{pattern.index}"),
        )

    outcomes = run_datacenter_batch(
        patterns,
        manager_factory,
        selector_factory,
        exascale_system(config.system_nodes),
        dc_config,
        sinks=sinks,
    )
    samples = [outcome.dropped_pct for outcome in outcomes]
    raw = list(outcomes) if keep_results else []
    if not observe:
        return tuple(samples), raw
    return tuple(samples), raw, tuple(export.lines), metrics.to_dict()


def run_datacenter_study(
    config: DatacenterStudyConfig,
    selectors: Dict[str, SelectorFactory],
    rm_names: Sequence[str],
    biases: Sequence[PatternBias] = (PatternBias.UNBIASED,),
    include_ideal: bool = False,
    progress: Optional[Callable[[str], None]] = None,
    keep_results: bool = False,
    options: Optional[ExecutorOptions] = None,
    observe: bool = False,
) -> Tuple[DatacenterStudyResult, List[DatacenterResult]]:
    """Run a Figs. 4-5 grid.

    ``selectors`` maps a display name to a zero-arg factory (a fresh
    selector per combination keeps selection counters per-cell).  When
    ``include_ideal`` is set, an extra "ideal" selector column runs with
    failures and resilience disabled.

    Cells fan out per ``options``.  Cache keys identify a selector by
    its display name (factories are opaque callables), so reusing a
    name for a behaviourally different selector under the same config
    must be paired with a cache clear.  ``keep_results=True`` bypasses
    the cache for those cells: raw :class:`DatacenterResult` objects
    are too heavy to memoise and are recomputed instead.

    ``observe=True`` collects the grid's domain-event stream and merged
    metrics on the study result (see :func:`run_scaling_study`);
    observing cells likewise bypass the cache.
    """
    study = DatacenterStudyResult(config=config)
    raw: List[DatacenterResult] = []
    tasks: List[CellTask] = []
    meta: List[Tuple[str, str, PatternBias]] = []
    for bias in biases:
        patterns = generate_patterns(config, bias)
        columns: List[Tuple[str, Optional[SelectorFactory]]] = [
            (name, factory) for name, factory in selectors.items()
        ]
        if include_ideal:
            columns.append(("ideal", None))
        for rm_name in rm_names:
            for sel_name, factory in columns:
                tasks.append(
                    CellTask(
                        fn=lambda rm_name=rm_name, sel_name=sel_name, factory=factory, bias=bias, patterns=patterns: _datacenter_cell_body(
                            config,
                            rm_name,
                            sel_name,
                            factory,
                            bias,
                            patterns,
                            keep_results,
                            observe,
                        ),
                        key_parts=(
                            None
                            if keep_results or observe
                            else ("datacenter", config, rm_name, sel_name, bias)
                        ),
                        trials=len(patterns),
                        label=f"{bias.value} {rm_name} {sel_name}",
                    )
                )
                meta.append((rm_name, sel_name, bias))

    outcomes = run_cells(tasks, options)

    merged_metrics = MetricsSink() if observe else None
    if observe:
        study.trace_lines = []
    for (rm_name, sel_name, bias), outcome in zip(meta, outcomes):
        samples, cell_raw = outcome[0], outcome[1]
        if observe:
            study.trace_lines.extend(outcome[2])
            merged_metrics.merge(outcome[3])
        study.cells.append(
            DatacenterCell(
                rm_name=rm_name,
                selector_name=sel_name,
                bias=bias,
                stats=SummaryStats.from_samples(samples),
                samples=tuple(samples),
            )
        )
        if keep_results:
            raw.extend(cell_raw)
        if progress is not None:
            progress(f"{bias.value} {rm_name} {sel_name} done")
    if merged_metrics is not None:
        study.metrics = merged_metrics.to_dict()
    return study, raw


class _IdealSelector:
    """Placeholder selector for ideal-baseline runs (never consulted)."""

    name = "ideal"

    def select(self, app, system):  # pragma: no cover - never called
        raise AssertionError("ideal runs must not consult the selector")
