"""One shared entrypoint for every paper artifact.

Historically each artifact was runnable only through the CLI's
``__main__`` plumbing; the job service (:mod:`repro.service`) needs the
same runs callable as a library function with *identical* output bytes.
This module is that single code path: :class:`StudyRequest` names an
artifact plus its parameters, :func:`run_request` executes it through
:func:`repro.experiments.parallel.run_cells` and renders it, and both
the CLI and the service worker call nothing else — so a job submitted
over HTTP is guaranteed byte-identical to the equivalent direct CLI
invocation (same seeds, same cache keys, same serializer).

Request validation is strict and raises :class:`RequestError` with a
one-line message; the CLI turns that into a non-zero exit and the HTTP
API into a 400 response.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional, Tuple

from repro.experiments.parallel import ExecutorOptions

#: Figure drivers that produce a :class:`ScalingStudyResult`.
SCALING_FIGS = ("fig1", "fig2", "fig3")

#: Figure drivers that produce a :class:`DatacenterStudyResult`.
DATACENTER_FIGS = ("fig4", "fig5")

#: Parameter sweeps runnable as jobs (see :mod:`repro.experiments.sweep`).
SWEEPS = ("severity_pmf", "recovery_parallelism", "checkpoint_interval")

#: Every artifact name accepted by :func:`run_request`.  ``scenario``
#: is the generic scenario-engine artifact: its parameters live in the
#: request's embedded canonical-JSON spec rather than in flat fields.
EXPERIMENTS = (
    ("table1", "table2")
    + SCALING_FIGS
    + DATACENTER_FIGS
    + ("regime-map", "sweep", "scenario")
)

#: Output formats for the figure drivers.
FORMATS = ("table", "barchart", "csv", "json")

#: Default value grids for the ``sweep`` artifact, per sweep name.
SWEEP_GRIDS: Dict[str, Tuple] = {
    "severity_pmf": ((1.0, 0.0, 0.0), (0.65, 0.20, 0.15), (0.4, 0.35, 0.25)),
    "recovery_parallelism": (1.0, 2.0, 5.0, 10.0),
    "checkpoint_interval": (0.5, 1.0, 2.0),
}


class RequestError(ValueError):
    """A structurally invalid :class:`StudyRequest` (bad name, range,
    or combination); the message is a single human-readable line."""


@dataclass(frozen=True)
class StudyRequest:
    """One artifact request: which experiment, at which parameters.

    The defaults mirror the CLI's defaults, so
    ``StudyRequest("fig1")`` is exactly ``repro fig1``.
    """

    experiment: str
    format: str = "table"
    trials: int = 200
    patterns: int = 50
    quick: bool = False
    fraction: float = 1.0
    mtbf_years: float = 10.0
    sweep: str = "checkpoint_interval"
    #: Canonical-JSON scenario spec (experiment ``"scenario"`` only).
    scenario: Optional[str] = None
    #: Embedded failure-trace JSONL for trace-replay scenarios; carried
    #: in the request so a job is self-contained (no path resolution on
    #: the worker) and CLI/service runs stay byte-identical.
    trace: Optional[str] = None
    #: Embedded grid trace curves (experiment ``"scenario"`` with a
    #: ``[grid]`` block only): a JSON object mapping curve role
    #: (``"price"`` / ``"carbon"``) to the curve's canonical JSONL
    #: text, for the same self-containment reason as ``trace``.
    grid_traces: Optional[str] = None
    #: First trial index of this request's batch (experiment
    #: ``"scenario"`` only): trials ``[offset, offset + trials)`` are
    #: run, reproducing exactly that slice of an exhaustive run.  The
    #: adaptive campaign controller sets this on follow-up batches.
    trial_offset: int = 0

    def validate(self) -> None:
        """Raise :class:`RequestError` on any out-of-range field."""
        if self.experiment not in EXPERIMENTS:
            raise RequestError(
                f"unknown experiment {self.experiment!r} "
                f"(choose from {', '.join(EXPERIMENTS)})"
            )
        if self.format not in FORMATS:
            raise RequestError(
                f"unknown format {self.format!r} "
                f"(choose from {', '.join(FORMATS)})"
            )
        if self.trials < 1:
            raise RequestError(f"trials must be >= 1, got {self.trials}")
        if self.patterns < 1:
            raise RequestError(f"patterns must be >= 1, got {self.patterns}")
        if not 0.0 < self.fraction <= 1.0:
            raise RequestError(
                f"fraction must be in (0, 1], got {self.fraction}"
            )
        if self.mtbf_years <= 0:
            raise RequestError(
                f"mtbf-years must be > 0, got {self.mtbf_years}"
            )
        if self.experiment == "sweep" and self.sweep not in SWEEPS:
            raise RequestError(
                f"unknown sweep {self.sweep!r} "
                f"(choose from {', '.join(SWEEPS)})"
            )
        if self.experiment == "scenario":
            if self.scenario is None:
                raise RequestError(
                    "experiment 'scenario' requires the 'scenario' field "
                    "(the canonical JSON spec)"
                )
            from repro.scenarios.errors import ScenarioError
            from repro.scenarios.schema import scenario_from_json

            try:
                spec = scenario_from_json(self.scenario)
            except ScenarioError as exc:
                raise RequestError(str(exc)) from None
            if spec.failures.regime == "trace" and self.trace is None:
                raise RequestError(
                    "trace-replay scenarios require the embedded 'trace' "
                    "field (compile the scenario rather than building the "
                    "request by hand)"
                )
            grid = spec.grid
            needs_curves = grid is not None and any(
                curve is not None and curve.kind == "trace"
                for curve in (grid.price, grid.carbon)
            )
            if needs_curves and self.grid_traces is None:
                raise RequestError(
                    "scenarios with trace grid curves require the embedded "
                    "'grid_traces' field (compile the scenario rather than "
                    "building the request by hand)"
                )
            if self.grid_traces is not None and grid is None:
                raise RequestError(
                    "field 'grid_traces' is only valid for scenarios "
                    "with a [grid] block"
                )
        elif (
            self.scenario is not None
            or self.trace is not None
            or self.grid_traces is not None
        ):
            raise RequestError(
                "fields 'scenario', 'trace', and 'grid_traces' are only "
                "valid for experiment 'scenario'"
            )
        if self.trial_offset < 0:
            raise RequestError(
                f"trial_offset must be >= 0, got {self.trial_offset}"
            )
        if self.trial_offset and self.experiment != "scenario":
            raise RequestError(
                "field 'trial_offset' is only valid for experiment 'scenario'"
            )

    def to_payload(self) -> Dict[str, Any]:
        """Plain-dict form (the service stores this in the job row).

        ``scenario``/``trace`` only appear when set, so payloads from
        older jobs (and payload-shape tests) are unchanged for the
        flat experiments."""
        payload = {
            "experiment": self.experiment,
            "format": self.format,
            "trials": self.trials,
            "patterns": self.patterns,
            "quick": self.quick,
            "fraction": self.fraction,
            "mtbf_years": self.mtbf_years,
            "sweep": self.sweep,
        }
        if self.scenario is not None:
            payload["scenario"] = self.scenario
        if self.trace is not None:
            payload["trace"] = self.trace
        if self.grid_traces is not None:
            payload["grid_traces"] = self.grid_traces
        if self.trial_offset:
            payload["trial_offset"] = self.trial_offset
        return payload

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "StudyRequest":
        """Build and validate a request from a plain dict.

        Unknown keys and mistyped values raise :class:`RequestError`
        (the HTTP API's 400 path), never a bare ``TypeError``.
        """
        if not isinstance(payload, dict):
            raise RequestError("request payload must be a JSON object")
        data = dict(payload)
        experiment = data.pop("experiment", None)
        if not isinstance(experiment, str):
            raise RequestError("missing required string field 'experiment'")
        known = {
            "format": str,
            "trials": int,
            "patterns": int,
            "quick": bool,
            "fraction": (int, float),
            "mtbf_years": (int, float),
            "sweep": str,
            "scenario": str,
            "trace": str,
            "grid_traces": str,
            "trial_offset": int,
        }
        kwargs: Dict[str, Any] = {}
        for name, value in data.items():
            if name not in known:
                raise RequestError(f"unknown request field {name!r}")
            expected = known[name]
            if isinstance(value, bool) and expected is int:
                raise RequestError(f"field {name!r} must be an integer")
            if not isinstance(value, expected):
                raise RequestError(
                    f"field {name!r} has the wrong type "
                    f"({type(value).__name__})"
                )
            if name in ("fraction", "mtbf_years"):
                value = float(value)
            kwargs[name] = value
        request = cls(experiment=experiment, **kwargs)
        request.validate()
        return request


@dataclass
class StudyOutcome:
    """What one request produced: the rendered text plus (for figures)
    the in-memory result object, for observability writers."""

    text: str
    #: The study result object for figs 1-5 (None for tables/analysis).
    result: Any = None
    #: Extra metadata lines (kept separate so ``text`` stays exactly
    #: the machine-readable artifact).
    notes: Dict[str, Any] = field(default_factory=dict)


def _effective_scaling_config(module, request: StudyRequest):
    """The figure config implied by *request* (quick caps trials)."""
    cfg = module.config(trials=request.trials)
    if request.quick:
        cfg = cfg.quick(trials=min(request.trials, 10))
    return cfg


def _effective_datacenter_config(module, request: StudyRequest):
    """The datacenter config implied by *request*."""
    cfg = module.config(patterns=request.patterns)
    if request.quick:
        cfg = cfg.quick()
    return cfg


def _run_scaling(module, request, options, observe) -> StudyOutcome:
    from repro.experiments.barchart import scaling_barchart
    from repro.experiments.export import scaling_to_csv, scaling_to_json

    cfg = _effective_scaling_config(module, request)
    result = module.run(cfg, options=options, observe=observe)
    if request.format == "table":
        text = module.render(result)
    elif request.format == "barchart":
        text = scaling_barchart(result, title=module.TITLE)
    elif request.format == "csv":
        text = scaling_to_csv(result)
    else:
        text = scaling_to_json(result)
    return StudyOutcome(text=text, result=result)


def _run_datacenter(module, request, options, observe) -> StudyOutcome:
    from repro.experiments.export import datacenter_to_csv, datacenter_to_json

    cfg = _effective_datacenter_config(module, request)
    result = module.run(cfg, options=options, observe=observe)
    if request.format == "table":
        text = module.render(result)
    elif request.format == "barchart":
        from repro.experiments.barchart import datacenter_barchart
        from repro.rm.registry import manager_names

        text = datacenter_barchart(
            result,
            rm_names=manager_names(),
            selector_names=module.SELECTOR_ORDER,
            title=module.TITLE,
        )
    elif request.format == "csv":
        text = datacenter_to_csv(result)
    else:
        text = datacenter_to_json(result)
    return StudyOutcome(text=text, result=result)


def _run_regime_map(request: StudyRequest) -> StudyOutcome:
    from repro.analysis.regimes import (
        crossover_fraction,
        render_selection_map,
        selection_map,
    )
    from repro.constants import SCALING_STUDY_FRACTIONS
    from repro.platform.presets import exascale_system
    from repro.units import years
    from repro.workload.synthetic import APP_TYPES

    system = exascale_system()
    mtbf = years(request.mtbf_years)
    mapping = selection_map(system, mtbf, SCALING_STUDY_FRACTIONS)
    lines = [
        f"Analytic technique-selection map (node MTBF {request.mtbf_years:g} y):",
        render_selection_map(mapping, SCALING_STUDY_FRACTIONS),
        "",
        "ML -> PR crossover per type (fraction of system):",
    ]
    for type_name in sorted(APP_TYPES):
        cross = crossover_fraction(type_name, system, mtbf)
        label = f"{100 * cross:.2f}%" if cross is not None else "never"
        lines.append(f"  {type_name}: {label}")
    return StudyOutcome(text="\n".join(lines))


def _run_sweep(request: StudyRequest, options) -> StudyOutcome:
    from repro.experiments import sweep as sweep_mod

    trials = min(request.trials, 10) if request.quick else request.trials
    grid = SWEEP_GRIDS[request.sweep]
    if request.sweep == "severity_pmf":
        rows = sweep_mod.severity_pmf_sweep_sim(
            grid, trials=trials, options=options
        )
        title = "Sweep — multilevel efficiency vs. severity PMF"
    elif request.sweep == "recovery_parallelism":
        rows = sweep_mod.recovery_parallelism_sweep_sim(
            grid, trials=trials, options=options
        )
        title = "Sweep — parallel recovery efficiency vs. sigma"
    else:
        rows = sweep_mod.checkpoint_interval_sweep_sim(
            grid, trials=trials, options=options
        )
        title = "Sweep — checkpoint restart efficiency vs. interval scale"
    return StudyOutcome(text=sweep_mod.render_sweep(rows, title))


def run_request(
    request: StudyRequest,
    options: Optional[ExecutorOptions] = None,
    observe: bool = False,
) -> StudyOutcome:
    """Execute one :class:`StudyRequest` and render its artifact.

    ``options`` carries worker count, caching, and the metrics sink
    exactly as for :func:`repro.experiments.parallel.run_cells`;
    ``observe=True`` (figures only) collects the domain-event stream on
    ``outcome.result``.  The output text is a pure function of the
    request (and the package version) — serial, parallel, cached, CLI,
    and service executions all render identical bytes.
    """
    request.validate()
    if request.experiment == "table1":
        from repro.experiments import tables

        return StudyOutcome(text=tables.render_table1())
    if request.experiment == "table2":
        from repro.experiments import tables

        return StudyOutcome(text=tables.render_table2(fraction=request.fraction))
    if request.experiment == "regime-map":
        return _run_regime_map(request)
    if request.experiment == "sweep":
        return _run_sweep(request, options)
    if request.experiment == "scenario":
        from repro.scenarios.runtime import run_scenario_request

        return run_scenario_request(request, options)
    from repro.experiments import fig1, fig2, fig3, fig4, fig5

    modules = {
        "fig1": fig1,
        "fig2": fig2,
        "fig3": fig3,
        "fig4": fig4,
        "fig5": fig5,
    }
    module = modules[request.experiment]
    if request.experiment in SCALING_FIGS:
        return _run_scaling(module, request, options, observe)
    return _run_datacenter(module, request, options, observe)


def quick_variant(request: StudyRequest) -> StudyRequest:
    """The CI-sized version of *request* (used by smoke tooling)."""
    return replace(request, quick=True)
