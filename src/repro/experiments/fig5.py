"""Figure 5: Parallel Recovery vs. Resilience Selection for each
resource manager, across four arrival-pattern families (Sec. VII):
unbiased, high-memory, high-communication, and large-application.

Expected shape: Resilience Selection provides a (small) benefit "in all
but one circumstance"; the largest gains appear on high-communication
patterns (where technique optimality varies most), the smallest on
high-memory patterns (where Parallel Recovery — which never touches the
PFS — is almost always the selection anyway); large-application
patterns drop the most overall.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.core.selection import FixedSelector, ResilienceSelection
from repro.experiments.config import DatacenterStudyConfig
from repro.experiments.parallel import ExecutorOptions
from repro.experiments.reporting import render_datacenter_study
from repro.experiments.runner import (
    DatacenterStudyResult,
    SelectorFactory,
    run_datacenter_study,
)
from repro.resilience.parallel_recovery import ParallelRecovery
from repro.rm.registry import manager_names
from repro.workload.patterns import PatternBias

TITLE = (
    "Fig. 5 — dropped applications (%), Parallel Recovery vs. "
    "Resilience Selection, per resource manager and arrival-pattern bias"
)

BIASES = (
    PatternBias.UNBIASED,
    PatternBias.HIGH_MEMORY,
    PatternBias.HIGH_COMMUNICATION,
    PatternBias.LARGE,
)

SELECTOR_ORDER = ("parallel_recovery", "selection")


def selectors(cfg: DatacenterStudyConfig) -> Dict[str, SelectorFactory]:
    """Parallel Recovery vs. Resilience Selection selector pair."""
    return {
        "parallel_recovery": lambda: FixedSelector(ParallelRecovery()),
        "selection": lambda: ResilienceSelection(cfg.node_mtbf_s),
    }


def config(**overrides) -> DatacenterStudyConfig:
    """Paper-parameter configuration for this figure."""
    return DatacenterStudyConfig(**overrides)


def run(
    cfg: Optional[DatacenterStudyConfig] = None,
    progress: Optional[Callable[[str], None]] = None,
    options: Optional[ExecutorOptions] = None,
    observe: bool = False,
) -> DatacenterStudyResult:
    """Run the (bias x RM x selector) grid over shared patterns.

    ``observe=True`` collects the domain-event stream and merged
    metrics on the result (passive; numbers are unchanged)."""
    cfg = cfg or config()
    study, _ = run_datacenter_study(
        cfg,
        selectors=selectors(cfg),
        rm_names=manager_names(),
        biases=BIASES,
        progress=progress,
        options=options,
        observe=observe,
    )
    return study


def render(result: DatacenterStudyResult) -> str:
    """Paper-style table of the result."""
    title = f"{TITLE} ({result.config.patterns} arrival patterns)"
    return render_datacenter_study(
        result,
        title,
        rm_names=manager_names(),
        selector_names=SELECTOR_ORDER,
        biases=BIASES,
    )


def selection_benefit(result: DatacenterStudyResult) -> Dict[str, Dict[str, float]]:
    """Mean dropped-%% improvement of selection over Parallel Recovery,
    per bias and resource manager (positive = selection better)."""
    out: Dict[str, Dict[str, float]] = {}
    for bias in BIASES:
        out[bias.value] = {}
        for rm in manager_names():
            pr = result.cell(rm, "parallel_recovery", bias).stats.mean
            sel = result.cell(rm, "selection", bias).stats.mean
            out[bias.value][rm] = pr - sel
    return out


def selection_benefit_significance(result: DatacenterStudyResult) -> Dict:
    """Paired per-pattern comparison of selection vs. Parallel Recovery.

    Every (bias, rm) cell replays the *same* arrival patterns for both
    selectors, so the per-pattern dropped percentages pair naturally;
    the paired t-test separates real benefit from pattern noise far
    more sharply than comparing the two means.
    """
    from repro.experiments.stats import paired_summary

    out: Dict[str, Dict[str, object]] = {}
    for bias in BIASES:
        out[bias.value] = {}
        for rm in manager_names():
            pr = result.cell(rm, "parallel_recovery", bias).samples
            sel = result.cell(rm, "selection", bias).samples
            out[bias.value][rm] = paired_summary(pr, sel)
    return out


def main(patterns: int = 50, quick: bool = False) -> str:
    """CLI body: run at *patterns*, render, and append the benefit table."""
    cfg = config(patterns=patterns)
    if quick:
        cfg = cfg.quick()
    result = run(cfg)
    text = render(result)
    benefit = selection_benefit(result)
    lines = ["selection benefit (dropped-% reduction vs parallel recovery):"]
    for bias, per_rm in benefit.items():
        row = ", ".join(f"{rm}: {v:+.1f}" for rm, v in per_rm.items())
        lines.append(f"  {bias:<22} {row}")
    return text + "\n" + "\n".join(lines)
