"""Reproductions of the paper's Tables I and II.

Table I is the application-type matrix; Table II inventories the
resilience-technique parameters.  Both render as plain text, and
Table II additionally *evaluates* the modeled values for a reference
configuration so the table documents the actual numbers the simulator
uses (e.g. the 17-35 minute full-system PFS checkpoint+restart window
quoted in Sec. IV-B).
"""

from __future__ import annotations

from typing import List

from repro.constants import DEFAULT_NODE_MTBF_S
from repro.failures.rates import application_failure_rate
from repro.platform.presets import exascale_system
from repro.resilience.checkpoint_restart import pfs_checkpoint_time
from repro.resilience.daly import optimal_checkpoint_interval
from repro.resilience.multilevel import (
    level1_checkpoint_time,
    level2_checkpoint_time,
)
from repro.resilience.parallel_recovery import message_logging_slowdown
from repro.units import MINUTE
from repro.workload.synthetic import APP_TYPES, make_application


def render_table1() -> str:
    """Table I: characteristics of application types."""
    lines = [
        "TABLE I: CHARACTERISTICS OF APPLICATION TYPES",
        "",
        f"{'communication intensity':<26} {'32 GB':>8} {'64 GB':>8}",
        "-" * 44,
    ]
    for comm in (0.0, 0.25, 0.5, 0.75):
        row = [t.name for t in APP_TYPES.values() if t.comm_fraction == comm]
        low = next(n for n in row if n.endswith("32"))
        high = next(n for n in row if n.endswith("64"))
        lines.append(f"{f'{comm * 100:.0f}% (TC = {comm})':<26} {low:>8} {high:>8}")
    return "\n".join(lines)


def render_table2(fraction: float = 1.0) -> str:
    """Table II: resilience technique parameters, with the modeled
    values evaluated at *fraction* of the exascale system for both
    memory footprints."""
    system = exascale_system()
    nodes = system.fraction_to_nodes(fraction)
    rate = application_failure_rate(nodes, DEFAULT_NODE_MTBF_S)

    rows: List[tuple[str, str, str]] = [
        ("T_S", "application length (time steps)", "360 .. 2880"),
        ("T_C", "portion of each step on communication", "0 / .25 / .5 / .75"),
        ("T_W", "portion of each step on computation", "1 - T_C"),
        ("N_m", "memory used per node (GB)", "32 / 64"),
        ("N_a", f"nodes used by the application", f"{nodes}"),
        ("L", "network latency", f"{system.network.latency_s * 1e6:.1f} us"),
        ("B_N", "communication bandwidth", f"{system.network.bandwidth_gbs:.0f} GB/s"),
        ("N_S", "switch connections", f"{system.network.switch_connections}"),
        ("lambda_a", "application failure rate", f"{rate:.3e} /s"),
        ("M_n", "system component MTBF", "10 years"),
    ]
    for mem in (32.0, 64.0):
        app = make_application("A32" if mem == 32 else "A64", nodes=nodes)
        t_pfs = pfs_checkpoint_time(app, system)
        tau = optimal_checkpoint_interval(t_pfs, rate)
        rows += [
            (
                f"T_C_PFS({mem:.0f}GB)",
                "PFS checkpoint time (Eq. 3)",
                f"{t_pfs / MINUTE:.1f} min",
            ),
            (
                f"tau({mem:.0f}GB)",
                "optimal checkpoint period (Eq. 4)",
                f"{tau / MINUTE:.1f} min",
            ),
            (
                f"T_C_L1({mem:.0f}GB)",
                "level-1 checkpoint time (Eq. 5)",
                f"{level1_checkpoint_time(app, system):.3f} s",
            ),
            (
                f"T_C_L2({mem:.0f}GB)",
                "level-2 checkpoint time (Eq. 6)",
                f"{level2_checkpoint_time(app, system):.3f} s",
            ),
        ]
    rows += [
        (
            "mu",
            "message logging slowdown",
            " / ".join(
                f"{message_logging_slowdown(tc):.3f}" for tc in (0.0, 0.25, 0.5, 0.75)
            ),
        ),
        ("r", "degree of redundancy", "1.5 / 2.0"),
    ]

    width = max(len(r[1]) for r in rows)
    lines = [
        "TABLE II: RESILIENCE TECHNIQUE PARAMETERS "
        f"(evaluated at {100 * fraction:.0f}% of the system)",
        "",
        f"{'parameter':<16} {'use in modeling':<{width}}  modeled value",
        "-" * (20 + width + 16),
    ]
    for name, use, value in rows:
        lines.append(f"{name:<16} {use:<{width}}  {value}")
    return "\n".join(lines)
