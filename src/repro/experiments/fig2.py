"""Figure 2: efficiency vs. application size for the high-memory,
high-communication type D64 at a ten-year node MTBF.

Expected shape (Sec. V): Parallel Recovery and redundancy pay their
communication penalties (mu and r scale with T_C), so Multilevel
Checkpointing is optimal for small applications with a crossover to
Parallel Recovery "when applications require 25% or more of the
system".
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.experiments.config import ScalingStudyConfig
from repro.experiments.parallel import ExecutorOptions
from repro.experiments.reporting import render_scaling_study
from repro.experiments.runner import ScalingStudyResult, run_scaling_study

TITLE = "Fig. 2 — efficiency vs. size, application D64, node MTBF 10 years"


def config(**overrides) -> ScalingStudyConfig:
    """Paper-parameter configuration for this figure."""
    return ScalingStudyConfig(app_type="D64", **overrides)


def run(
    cfg: Optional[ScalingStudyConfig] = None,
    progress: Optional[Callable[[str], None]] = None,
    options: Optional[ExecutorOptions] = None,
    observe: bool = False,
) -> ScalingStudyResult:
    """Run the study (paper parameters unless *cfg* overrides).

    ``observe=True`` collects the domain-event stream and merged
    metrics on the result (passive; numbers are unchanged)."""
    return run_scaling_study(
        cfg or config(), progress=progress, options=options, observe=observe
    )


def render(result: ScalingStudyResult) -> str:
    """Paper-style table of the result."""
    return render_scaling_study(result, TITLE)


def crossover_fraction(result: ScalingStudyResult) -> Optional[float]:
    """Smallest fraction at which Parallel Recovery overtakes
    Multilevel (None if it never does)."""
    for fraction in result.config.fractions:
        ml = result.cell(fraction, "multilevel").mean_efficiency
        pr = result.cell(fraction, "parallel_recovery").mean_efficiency
        if pr > ml:
            return fraction
    return None


def main(trials: int = 200, quick: bool = False) -> str:
    """CLI body: run, render, and report the ML->PR crossover."""
    cfg = config(trials=trials)
    if quick:
        cfg = cfg.quick(trials=min(trials, 10))
    result = run(cfg)
    text = render(result)
    cross = crossover_fraction(result)
    if cross is not None:
        text += f"\nML -> PR crossover at {100 * cross:.0f}% of the system"
    return text
