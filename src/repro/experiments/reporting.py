"""Plain-text rendering of experiment results.

The harness prints the same rows/series the paper's figures plot, in
fixed-width tables suitable for EXPERIMENTS.md and terminal output.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.experiments.runner import (
    DatacenterStudyResult,
    ScalingStudyResult,
)
from repro.workload.patterns import PatternBias


def render_scaling_study(result: ScalingStudyResult, title: str) -> str:
    """Figs. 1-3 style: one row per system fraction, one column per
    technique, cells "mean +/- std" (or "---" for infeasible)."""
    techniques = result.techniques()
    header = ["size%"] + techniques
    widths = [6] + [max(17, len(t) + 2) for t in techniques]
    lines = [title, _rule(widths), _row(header, widths), _rule(widths)]
    for fraction in result.config.fractions:
        row: List[str] = [f"{100 * fraction:.0f}"]
        for name in techniques:
            cell = result.cell(fraction, name)
            if cell.infeasible:
                row.append("---")
            else:
                assert cell.stats is not None
                row.append(f"{cell.stats.mean:.3f} +/- {cell.stats.std:.3f}")
        lines.append(_row(row, widths))
    lines.append(_rule(widths))
    lines.append(
        "best per size: "
        + ", ".join(
            f"{100 * f:.0f}%->{result.best_technique(f)}"
            for f in result.config.fractions
        )
    )
    return "\n".join(lines)


def render_datacenter_study(
    result: DatacenterStudyResult,
    title: str,
    rm_names: Sequence[str],
    selector_names: Sequence[str],
    biases: Sequence[PatternBias] = (PatternBias.UNBIASED,),
) -> str:
    """Figs. 4-5 style: dropped %% per (RM x selector), grouped by
    arrival-pattern bias."""
    widths = [24] + [max(16, len(s) + 2) for s in selector_names]
    lines = [title]
    for bias in biases:
        if len(biases) > 1:
            lines.append(f"\narrival pattern bias: {bias.value}")
        lines.append(_rule(widths))
        lines.append(_row(["rm \\ selector"] + list(selector_names), widths))
        lines.append(_rule(widths))
        for rm in rm_names:
            row = [rm]
            for sel in selector_names:
                cell = result.cell(rm, sel, bias)
                row.append(f"{cell.stats.mean:5.1f} +/- {cell.stats.std:4.1f}")
            lines.append(_row(row, widths))
        lines.append(_rule(widths))
    return "\n".join(lines)


def _row(cells: Sequence[str], widths: Sequence[int]) -> str:
    return " | ".join(str(c).ljust(w) for c, w in zip(cells, widths))


def _rule(widths: Sequence[int]) -> str:
    return "-+-".join("-" * w for w in widths)
