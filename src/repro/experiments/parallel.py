"""Parallel trial executor with deterministic seeding, an on-disk
result cache, and progress metrics.

The figure drivers decompose into *cells* — independent units of work
such as one (fraction x technique) bar of a scaling study or one
(RM x selector x bias) bar of a datacenter study.  Because every cell
derives its randomness from the study seed by name/index (see
:mod:`repro.rng.streams`), cells can execute in any order, on any
worker, and still produce bit-identical results; this module exploits
that to fan cells out over a process pool.

Three cooperating pieces:

- :class:`TrialExecutor` runs a list of :class:`CellTask`\\ s either
  inline (``jobs=1``, the default — byte-for-byte today's behaviour)
  or on a forked process pool (``jobs>1``), reassembling results in
  submission order so callers never observe scheduling nondeterminism.
- :class:`ResultCache` memoises cell results under
  ``results/.cache/`` keyed by :func:`cache_key`, a stable SHA-256
  over the canonicalised (config, technique, cell identity, seed)
  tuple.  A corrupted, truncated, or version-skewed cache file is a
  miss, never an error.
- :class:`ExecutorMetrics` accumulates cells completed, trials/sec,
  cache hit rate, and per-cell wall times; the CLI surfaces it after
  every figure and (with ``--progress``) per cell via
  :class:`CellProgress` callbacks.

Worker dispatch uses the ``fork`` start method so cell closures (which
capture selector factories, technique objects, and pattern lists) never
need to be pickled — only the cell *index* crosses the pipe, and the
(plain-data) result comes back.  On platforms without ``fork`` the
executor degrades to serial execution, which is always correct.
"""

from __future__ import annotations

import enum
import hashlib
import json
import os
import pickle
import tempfile
import time
from dataclasses import dataclass, field, fields, is_dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs import counters as obs_counters
from repro.resilience.fingerprint import technique_fingerprint

__all__ = [
    "CellTask",
    "ExecutorOptions",
    "ResultCache",
    "TrialExecutor",
    "cache_key",
    "canonicalize",
    "run_cells",
    "technique_fingerprint",
]

#: Default on-disk cache location, relative to the working directory
#: (override with the ``REPRO_CACHE_DIR`` environment variable).
DEFAULT_CACHE_DIR = Path("results") / ".cache"

#: Bumped whenever the cached payload layout changes; mismatched
#: entries are treated as misses.
CACHE_VERSION = 1


# ---------------------------------------------------------------------------
# Cache keys
# ---------------------------------------------------------------------------


def canonicalize(obj: Any) -> Any:
    """Reduce *obj* to a JSON-serialisable canonical form.

    Dataclasses become ``["dataclass", qualified_name, {field: value}]``
    (field *declaration* order is irrelevant because the mapping is
    serialised with sorted keys), enums become their value tagged with
    their type, dicts sort by key, and tuples/lists/sets normalise to
    lists.  Two structurally equal configs therefore always produce the
    same canonical form regardless of dict insertion or field order.
    """
    if is_dataclass(obj) and not isinstance(obj, type):
        payload = {
            f.name: canonicalize(getattr(obj, f.name)) for f in fields(obj)
        }
        name = f"{type(obj).__module__}.{type(obj).__qualname__}"
        return ["dataclass", name, payload]
    if isinstance(obj, enum.Enum):
        return ["enum", type(obj).__qualname__, canonicalize(obj.value)]
    if isinstance(obj, dict):
        return {str(k): canonicalize(v) for k, v in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [canonicalize(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(canonicalize(v) for v in obj)
    if isinstance(obj, Path):
        return str(obj)
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(
        f"cannot canonicalize {type(obj).__name__} for cache keying; "
        "pass a dataclass, enum, or plain data"
    )


def cache_key(*parts: Any) -> str:
    """Stable hex digest of *parts* (see :func:`canonicalize`).

    The key is invariant to dict insertion order and dataclass field
    order, and changes whenever any field value changes.
    """
    payload = json.dumps(
        [canonicalize(p) for p in parts],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ``technique_fingerprint`` moved to :mod:`repro.resilience.fingerprint`
# (core code keys plan caches with it too); re-exported above for
# backwards compatibility with existing imports.


# ---------------------------------------------------------------------------
# On-disk result cache
# ---------------------------------------------------------------------------


class ResultCache:
    """Best-effort pickle cache of cell results under *directory*.

    Lookups never raise: unreadable, truncated, or version-mismatched
    entries count as misses and are recomputed.  Writes are atomic
    (temp file + rename) so a concurrent or interrupted run can never
    leave a half-written entry that poisons later runs.
    """

    def __init__(
        self,
        directory: Optional[os.PathLike] = None,
        enabled: bool = True,
    ) -> None:
        if directory is None:
            directory = os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
        self.directory = Path(directory)
        self.enabled = enabled
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        """On-disk location of *key*'s entry."""
        return self.directory / f"{key}.pkl"

    def get(self, key: str) -> Tuple[bool, Any]:
        """Return ``(hit, value)``; ``(False, None)`` on any miss."""
        if not self.enabled:
            return False, None
        try:
            with open(self.path_for(key), "rb") as fh:
                payload = pickle.load(fh)
            if (
                not isinstance(payload, dict)
                or payload.get("version") != CACHE_VERSION
                or "value" not in payload
            ):
                raise ValueError("cache entry layout mismatch")
        except Exception:
            self.misses += 1
            return False, None
        self.hits += 1
        return True, payload["value"]

    def put(
        self,
        key: str,
        value: Any,
        provenance: Optional[Dict[str, str]] = None,
    ) -> None:
        """Store *value* under *key* (silently skipped on I/O errors —
        caching must never fail a run).

        *provenance* rides along in the entry (scenario name, spec
        digest, package version — see ``ExecutorOptions.provenance``)
        and is readable back via :meth:`provenance`.  Entries without
        it stay valid: lookups only require version + value."""
        if not self.enabled:
            return
        payload: Dict[str, Any] = {"version": CACHE_VERSION, "value": value}
        if provenance is not None:
            payload["provenance"] = dict(provenance)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=self.directory, prefix=".write-", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(payload, fh)
                os.replace(tmp, self.path_for(key))
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except (OSError, pickle.PicklingError):
            pass

    def provenance(self, key: str) -> Optional[Dict[str, str]]:
        """The provenance stamp stored with *key*'s entry, if any
        (None for a miss or a pre-provenance entry)."""
        try:
            with open(self.path_for(key), "rb") as fh:
                payload = pickle.load(fh)
            if not isinstance(payload, dict):
                return None
            stamp = payload.get("provenance")
            return dict(stamp) if isinstance(stamp, dict) else None
        except Exception:
            return None

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if self.directory.is_dir():
            for entry in self.directory.glob("*.pkl"):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def stats(self) -> "CacheStats":
        """Entry count and total size of the cache directory."""
        entries = 0
        total = 0
        if self.directory.is_dir():
            for entry in self.directory.glob("*.pkl"):
                try:
                    total += entry.stat().st_size
                except OSError:
                    continue
                entries += 1
        return CacheStats(
            directory=self.directory, entries=entries, total_bytes=total
        )

    def prune(self, max_bytes: int) -> Tuple[int, int]:
        """Evict oldest-access-time-first until the cache fits in
        *max_bytes*; returns ``(entries_removed, bytes_removed)``.

        Access time (``st_atime``) orders eviction so entries that
        recent runs actually hit survive; on filesystems mounted
        ``noatime`` it degrades to modification order, which is still a
        sane LRU approximation.  Races with concurrent runs are benign:
        a vanished file is simply skipped.
        """
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        entries = []
        total = 0
        if self.directory.is_dir():
            for entry in self.directory.glob("*.pkl"):
                try:
                    stat = entry.stat()
                except OSError:
                    continue
                entries.append((stat.st_atime, stat.st_size, entry))
                total += stat.st_size
        entries.sort(key=lambda item: (item[0], str(item[2])))
        removed = 0
        removed_bytes = 0
        for _, size, entry in entries:
            if total <= max_bytes:
                break
            try:
                entry.unlink()
            except OSError:
                continue
            total -= size
            removed += 1
            removed_bytes += size
        return removed, removed_bytes


@dataclass(frozen=True)
class CacheStats:
    """Snapshot of the on-disk result cache (``repro cache stats``)."""

    directory: Path
    entries: int
    total_bytes: int

    @property
    def total_mb(self) -> float:
        """Total size in mebibytes."""
        return self.total_bytes / (1024 * 1024)

    def render(self) -> str:
        """One-line human summary."""
        return (
            f"{self.directory}: {self.entries} entries, "
            f"{self.total_mb:.1f} MiB"
        )


# ---------------------------------------------------------------------------
# Metrics and progress
# ---------------------------------------------------------------------------


@dataclass
class ExecutorMetrics:
    """Counters accumulated across one or more executor runs."""

    cells_total: int = 0
    cells_done: int = 0
    cache_hits: int = 0
    cells_computed: int = 0
    trials_done: int = 0
    #: Wall time of the executor runs (submission to reassembly).
    wall_s: float = 0.0
    #: Per-cell compute wall times (cache hits excluded).
    cell_wall_s: List[float] = field(default_factory=list)

    @property
    def hit_rate(self) -> float:
        """Fraction of completed cells served from the cache."""
        if self.cells_done == 0:
            return 0.0
        return self.cache_hits / self.cells_done

    @property
    def trials_per_sec(self) -> float:
        """Simulation trials completed per wall-clock second."""
        if self.wall_s <= 0:
            return 0.0
        return self.trials_done / self.wall_s

    def render(self, label: str = "run") -> str:
        """One-line human summary (the CLI prints this per figure)."""
        parts = [
            f"{self.cells_done}/{self.cells_total} cells",
            f"{self.cache_hits} cached ({100 * self.hit_rate:.0f}% hit rate)",
            f"{self.trials_done} trials ({self.trials_per_sec:.1f}/s)",
            f"{self.wall_s:.1f}s wall",
        ]
        if self.cell_wall_s:
            slowest = max(self.cell_wall_s)
            parts.append(f"slowest cell {slowest:.2f}s")
        return f"[{label}: " + ", ".join(parts) + "]"


@dataclass(frozen=True)
class CellProgress:
    """Per-cell progress snapshot handed to ``on_cell`` callbacks."""

    index: int
    total: int
    label: str
    cached: bool
    wall_s: float
    trials_per_sec: float
    hit_rate: float

    def render(self) -> str:
        """One-line progress report (the CLI's ``--progress`` format)."""
        source = "cached" if self.cached else f"{self.wall_s:.2f}s"
        return (
            f"[{self.index + 1}/{self.total}] {self.label or 'cell'} "
            f"({source}; {self.trials_per_sec:.1f} trials/s, "
            f"{100 * self.hit_rate:.0f}% cache hits)"
        )


# ---------------------------------------------------------------------------
# Executor
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExecutorOptions:
    """How a study executes its cells.

    The defaults (``jobs=1``, ``cache=False``) reproduce the historical
    serial, uncached behaviour exactly; the CLI enables the cache and
    honours ``--jobs``.
    """

    jobs: int = 1
    cache: bool = False
    cache_dir: Optional[os.PathLike] = None
    #: Optional shared metrics sink (e.g. the CLI accumulates one
    #: object across every figure of a ``repro all`` run).
    metrics: Optional[ExecutorMetrics] = None
    #: Called once per cell, in deterministic cell order.
    on_cell: Optional[Callable[[CellProgress], None]] = None
    #: Stamped into every cache entry this run writes (scenario name,
    #: canonical-spec SHA-256, package version); purely informational —
    #: it never participates in cache keys or lookups.
    provenance: Optional[Dict[str, str]] = None

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")


@dataclass(frozen=True)
class CellTask:
    """One independent unit of work.

    ``fn`` is a zero-argument closure returning plain (picklable) data.
    ``key_parts`` feeds :func:`cache_key`; ``None`` marks the cell
    uncacheable (it always computes).  ``trials`` is the number of
    simulation trials the cell represents, for throughput metrics.
    """

    fn: Callable[[], Any]
    key_parts: Optional[Tuple[Any, ...]] = None
    trials: int = 1
    label: str = ""


#: Task table inherited by forked workers (never pickled).
_WORKER_TASKS: Optional[Sequence[CellTask]] = None


def _run_worker_task(index: int) -> Tuple[int, Any, float, Dict[str, int]]:
    """Run one cell in a worker; returns the result plus the worker's
    instrumentation-counter increments for the cell, which the parent
    folds back in (fork-safety by explicit merging — the processes
    share no counter memory)."""
    assert _WORKER_TASKS is not None
    before = obs_counters.snapshot()
    started = time.perf_counter()
    value = _WORKER_TASKS[index].fn()
    wall = time.perf_counter() - started
    return index, value, wall, obs_counters.delta_since(before)


def _fork_context():
    """The ``fork`` multiprocessing context, or None where unsupported."""
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None


class TrialExecutor:
    """Runs :class:`CellTask` lists under one :class:`ExecutorOptions`.

    Results always come back in task-submission order, cache hits are
    resolved before any worker is spawned, and misses are written back
    after computing — so a warm rerun of the same study performs zero
    simulation calls.
    """

    def __init__(
        self,
        options: Optional[ExecutorOptions] = None,
        cache: Optional[ResultCache] = None,
    ) -> None:
        self.options = options or ExecutorOptions()
        self.cache = cache or ResultCache(
            directory=self.options.cache_dir, enabled=self.options.cache
        )
        self.metrics = (
            self.options.metrics
            if self.options.metrics is not None
            else ExecutorMetrics()
        )

    def run(self, tasks: Sequence[CellTask]) -> List[Any]:
        """Execute *tasks*; returns their values in submission order."""
        started = time.perf_counter()
        total = len(tasks)
        self.metrics.cells_total += total
        results: List[Any] = [None] * total
        walls = [0.0] * total
        cached = [False] * total
        keys: List[Optional[str]] = [
            cache_key(*t.key_parts) if t.key_parts is not None else None
            for t in tasks
        ]

        pending: List[int] = []
        for i, key in enumerate(keys):
            if key is not None:
                hit, value = self.cache.get(key)
                if hit:
                    results[i] = value
                    cached[i] = True
                    continue
            pending.append(i)

        if pending:
            self._compute(tasks, pending, results, walls)
            for i in pending:
                if keys[i] is not None:
                    self.cache.put(
                        keys[i],
                        results[i],
                        provenance=self.options.provenance,
                    )

        self.metrics.wall_s += time.perf_counter() - started
        for i, task in enumerate(tasks):
            self.metrics.cells_done += 1
            self.metrics.trials_done += task.trials
            if cached[i]:
                self.metrics.cache_hits += 1
            else:
                self.metrics.cells_computed += 1
                self.metrics.cell_wall_s.append(walls[i])
            if self.options.on_cell is not None:
                self.options.on_cell(
                    CellProgress(
                        index=i,
                        total=total,
                        label=task.label,
                        cached=cached[i],
                        wall_s=walls[i],
                        trials_per_sec=self.metrics.trials_per_sec,
                        hit_rate=self.metrics.hit_rate,
                    )
                )
        return results

    def _compute(
        self,
        tasks: Sequence[CellTask],
        pending: List[int],
        results: List[Any],
        walls: List[float],
    ) -> None:
        jobs = min(self.options.jobs, len(pending))
        ctx = _fork_context() if jobs > 1 else None
        if ctx is None:
            for i in pending:
                t0 = time.perf_counter()
                results[i] = tasks[i].fn()
                walls[i] = time.perf_counter() - t0
            return
        global _WORKER_TASKS
        _WORKER_TASKS = tasks
        try:
            with ctx.Pool(processes=jobs) as pool:
                for index, value, wall, counter_delta in pool.imap_unordered(
                    _run_worker_task, pending, chunksize=1
                ):
                    results[index] = value
                    walls[index] = wall
                    obs_counters.merge(counter_delta)
        finally:
            _WORKER_TASKS = None


def run_cells(
    tasks: Sequence[CellTask],
    options: Optional[ExecutorOptions] = None,
    cache: Optional[ResultCache] = None,
) -> List[Any]:
    """Run *tasks* through a :class:`TrialExecutor` and return their
    values in submission order.

    This is the one executor entrypoint shared by every caller — the
    figure/sweep drivers, the CLI, and the job service — so anything
    that can phrase its work as a list of :class:`CellTask`\\ s gets
    parallelism, caching, and metrics without touching ``__main__``
    plumbing.  Results are bit-identical for any ``options.jobs``.
    """
    return TrialExecutor(options, cache=cache).run(tasks)
