"""ASCII bar charts: render study results the way the paper plots them.

The paper's figures are grouped bar charts; the tables produced by
:mod:`repro.experiments.reporting` carry the same numbers, but a bar
rendering makes the *shape* — who wins, how fast curves fall, where the
crossover sits — visible at a glance in a terminal or a text log.

::

    1%    checkpoint_restart  |############################################     | 0.993
          multilevel          |#############################################    | 0.996
          parallel_recovery   |#############################################+   | 0.999
    ...
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.runner import DatacenterStudyResult, ScalingStudyResult
from repro.workload.patterns import PatternBias


def _bar(value: float, scale: float, width: int) -> str:
    """A bar of ``value`` against full-scale ``scale``; '+' marks a
    half-filled final cell."""
    if scale <= 0:
        return " " * width
    cells = value / scale * width
    full = int(cells)
    half = cells - full >= 0.5
    bar = "#" * min(full, width)
    if half and full < width:
        bar += "+"
    return bar.ljust(width)


def scaling_barchart(
    result: ScalingStudyResult, width: int = 46, title: Optional[str] = None
) -> str:
    """Grouped bars (one group per system fraction) of mean efficiency."""
    techniques = result.techniques()
    label_width = max(len(t) for t in techniques)
    lines = [title] if title else []
    for fraction in result.config.fractions:
        group_label = f"{100 * fraction:>3.0f}%"
        for i, technique in enumerate(techniques):
            cell = result.cell(fraction, technique)
            prefix = group_label if i == 0 else "    "
            if cell.infeasible:
                bar = "(infeasible)".ljust(width)
                value = "  ---"
            else:
                bar = _bar(cell.mean_efficiency, 1.0, width)
                value = f"{cell.mean_efficiency:.3f}"
            lines.append(f"{prefix}  {technique:<{label_width}} |{bar}| {value}")
        lines.append("")
    return "\n".join(lines).rstrip()


def datacenter_barchart(
    result: DatacenterStudyResult,
    rm_names: Sequence[str],
    selector_names: Sequence[str],
    bias: PatternBias = PatternBias.UNBIASED,
    width: int = 46,
    title: Optional[str] = None,
) -> str:
    """Grouped bars (one group per resource manager) of dropped %."""
    cells = {
        (rm, sel): result.cell(rm, sel, bias)
        for rm in rm_names
        for sel in selector_names
    }
    scale = max(cell.stats.mean for cell in cells.values()) or 1.0
    label_width = max(len(s) for s in selector_names)
    lines = [title] if title else []
    for rm in rm_names:
        for i, sel in enumerate(selector_names):
            cell = cells[(rm, sel)]
            prefix = f"{rm:<7}" if i == 0 else " " * 7
            bar = _bar(cell.stats.mean, scale, width)
            lines.append(
                f"{prefix} {sel:<{label_width}} |{bar}| {cell.stats.mean:5.1f}%"
            )
        lines.append("")
    return "\n".join(lines).rstrip()
