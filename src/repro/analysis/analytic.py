"""Closed-form expected-performance models.

First-order renewal-reward predictions of elapsed time and efficiency
for any :class:`repro.resilience.ExecutionPlan`.  Two uses:

1. **Validation** — the DES must agree with these models within
   statistical tolerance wherever the first-order assumptions hold
   (``lambda * tau << 1``); :mod:`tests/analysis` enforces this.
2. **Resilience Selection** (Sec. VII) — the datacenter's resource
   manager predicts each technique's efficiency for an arriving
   application and picks the argmax, playing the role of the paper's
   "results from Section V" lookup.

The model composes, per unit of committed work:

- checkpoint overhead: ``sum_k cost_k * f_k / tau_base`` with ``f_k``
  the fraction of boundaries taken at exactly level k;
- failure rework: for each severity s, failures arrive at rate
  ``lambda_s`` and each pays the restoring level's restart plus half
  that level's period of re-execution, divided by the plan's recovery
  speedup;
- for replica plans, the restart-causing rate replaces the raw rate
  (singleton deaths plus replica-pair deaths within a window — see
  :func:`repro.resilience.redundancy.effective_restart_rate`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.failures.rates import application_failure_rate
from repro.failures.severity import SeverityModel
from repro.resilience.base import CheckpointLevel, ExecutionPlan
from repro.resilience.moody_markov import _boundary_fractions
from repro.resilience.redundancy import effective_restart_rate


@dataclass(frozen=True)
class Prediction:
    """Analytic expectation for one plan in one failure environment."""

    plan: ExecutionPlan
    expected_elapsed_s: float
    checkpoint_overhead: float
    rework_overhead: float

    @property
    def expected_efficiency(self) -> float:
        """Paper efficiency metric: uninflated baseline over expected
        elapsed time."""
        return self.plan.app.baseline_time / self.expected_elapsed_s

    @property
    def total_overhead(self) -> float:
        """Checkpoint plus rework overhead per unit of committed work."""
        return self.checkpoint_overhead + self.rework_overhead


def _restoring_level(plan: ExecutionPlan, severity: int) -> CheckpointLevel:
    """The cheapest (most frequent) level able to recover *severity* —
    the level whose checkpoints bound the rollback distance."""
    usable = plan.recovery_levels(severity)
    return min(usable, key=lambda lvl: lvl.period_s)


def predict(
    plan: ExecutionPlan,
    node_mtbf_s: float,
    severity: Optional[SeverityModel] = None,
) -> Prediction:
    """First-order expected elapsed time and overheads for *plan*."""
    if node_mtbf_s <= 0:
        raise ValueError(f"node_mtbf_s must be > 0, got {node_mtbf_s}")
    severity = severity if severity is not None else SeverityModel.default()

    base = plan.base_period_s
    multipliers = tuple(
        plan.level_multiplier(lvl.index) for lvl in plan.levels[1:]
    )
    fractions = _boundary_fractions(multipliers)
    checkpoint_overhead = (
        sum(lvl.cost_s * f for lvl, f in zip(plan.levels, fractions)) / base
    )

    rework_overhead = 0.0
    if plan.replicas is not None:
        # Redundancy: restarts only on replica exhaustion; severity is
        # irrelevant (single PFS level).
        node_rate = 1.0 / node_mtbf_s
        level = plan.levels[0]
        restart_rate = effective_restart_rate(
            plan.replicas, node_rate, level.period_s
        )
        rework_overhead = restart_rate * (
            level.restart_s + level.period_s / (2.0 * plan.recovery_speedup)
        )
    else:
        total_rate = application_failure_rate(plan.nodes_required, node_mtbf_s)
        for sev in range(1, severity.levels + 1):
            rate = severity.level_rate(sev, total_rate)
            if rate == 0.0:
                continue
            level = _restoring_level(plan, sev)
            rework_overhead += rate * (
                level.restart_s
                + level.period_s / (2.0 * plan.recovery_speedup)
            )

    elapsed = plan.effective_work_s * (1.0 + checkpoint_overhead + rework_overhead)
    return Prediction(
        plan=plan,
        expected_elapsed_s=elapsed,
        checkpoint_overhead=checkpoint_overhead,
        rework_overhead=rework_overhead,
    )


def predict_efficiency(
    plan: ExecutionPlan,
    node_mtbf_s: float,
    severity: Optional[SeverityModel] = None,
) -> float:
    """Shorthand for ``predict(...).expected_efficiency``."""
    return predict(plan, node_mtbf_s, severity).expected_efficiency
