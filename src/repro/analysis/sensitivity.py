"""Sensitivity sweeps over the DESIGN.md substitution parameters.

Two of the reproduction's defaults are substitutions for data the paper
references but does not print (the severity PMF and the recovery
parallelism sigma).  These sweeps quantify how much the headline
conclusions depend on them; the ablation benches print their output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.analysis.analytic import predict_efficiency
from repro.failures.severity import SeverityModel
from repro.platform.system import HPCSystem
from repro.resilience.multilevel import MultilevelCheckpoint
from repro.resilience.parallel_recovery import ParallelRecovery
from repro.workload.application import Application


@dataclass(frozen=True)
class SweepPoint:
    """One parameterization and the efficiency it predicts."""

    parameter: Tuple
    efficiency: float


def severity_pmf_sweep(
    app: Application,
    system: HPCSystem,
    node_mtbf_s: float,
    pmfs: Sequence[Tuple[float, float, float]],
) -> List[SweepPoint]:
    """Multilevel efficiency across candidate severity PMFs
    (DESIGN.md substitution #1)."""
    technique = MultilevelCheckpoint()
    out: List[SweepPoint] = []
    for pmf in pmfs:
        severity = SeverityModel.from_probabilities(pmf)
        plan = technique.plan(app, system, node_mtbf_s, severity)
        out.append(
            SweepPoint(pmf, predict_efficiency(plan, node_mtbf_s, severity))
        )
    return out


def sigma_sweep(
    app: Application,
    system: HPCSystem,
    node_mtbf_s: float,
    sigmas: Sequence[float],
    severity: Optional[SeverityModel] = None,
) -> List[SweepPoint]:
    """Parallel Recovery efficiency across recovery-parallelism factors
    (DESIGN.md substitution #2)."""
    out: List[SweepPoint] = []
    for sigma in sigmas:
        technique = ParallelRecovery(recovery_parallelism=sigma)
        plan = technique.plan(app, system, node_mtbf_s, severity)
        out.append(
            SweepPoint((sigma,), predict_efficiency(plan, node_mtbf_s, severity))
        )
    return out
