"""Closed-form models and simulator validation utilities."""

from repro.analysis.analytic import Prediction, predict, predict_efficiency
from repro.analysis.regimes import (
    analytic_efficiency,
    crossover_fraction,
    grid_crossover_fraction,
    grid_crossover_level,
    grid_objective_value,
    render_selection_map,
    required_node_mtbf,
    selection_map,
)
from repro.analysis.sensitivity import severity_pmf_sweep, sigma_sweep
from repro.analysis.validation import ValidationReport, validate_plan

__all__ = [
    "Prediction",
    "analytic_efficiency",
    "crossover_fraction",
    "grid_crossover_fraction",
    "grid_crossover_level",
    "grid_objective_value",
    "render_selection_map",
    "required_node_mtbf",
    "selection_map",
    "ValidationReport",
    "predict",
    "predict_efficiency",
    "severity_pmf_sweep",
    "sigma_sweep",
    "validate_plan",
]
