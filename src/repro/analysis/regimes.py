"""Analytic regime exploration: where does each technique win?

The Sec. V simulations locate the Multilevel-to-Parallel-Recovery
crossover empirically (Fig. 2: "when applications require 25% or more
of the system").  The closed-form models let us locate the same
boundary analytically — continuously in the system fraction, for every
application type — and build the selection map that Sec. VII's
Resilience Selection implicitly encodes.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from scipy import optimize as sp_optimize

from repro.analysis.analytic import predict_efficiency
from repro.failures.severity import SeverityModel
from repro.platform.system import HPCSystem
from repro.resilience.base import ResilienceTechnique
from repro.resilience.registry import get_technique
from repro.workload.synthetic import make_application


def analytic_efficiency(
    technique: ResilienceTechnique,
    app_type: str,
    fraction: float,
    system: HPCSystem,
    node_mtbf_s: float,
    severity: Optional[SeverityModel] = None,
) -> float:
    """Predicted efficiency of *technique* for one (type, size) cell."""
    app = make_application(app_type, nodes=system.fraction_to_nodes(fraction))
    plan = technique.plan(app, system, node_mtbf_s, severity)
    return predict_efficiency(plan, node_mtbf_s, severity)


def crossover_fraction(
    app_type: str,
    system: HPCSystem,
    node_mtbf_s: float,
    technique_small: str = "multilevel",
    technique_large: str = "parallel_recovery",
    severity: Optional[SeverityModel] = None,
    threshold: float = 1e-4,
) -> Optional[float]:
    """System fraction where *technique_large* overtakes
    *technique_small* for *app_type* (None if it never does by more
    than *threshold* efficiency anywhere in (0, 1]).

    Solved by bisection on the efficiency difference; assumes at most
    one sign change over the range, which holds for the monotone
    overhead models involved.  The *threshold* filters out degenerate
    float-level ties between techniques that are equivalent at tiny
    sizes (every technique approaches efficiency 1 as the application
    shrinks).
    """
    small = get_technique(technique_small)
    large = get_technique(technique_large)

    def gap(fraction: float) -> float:
        return (
            analytic_efficiency(
                large, app_type, fraction, system, node_mtbf_s, severity
            )
            - analytic_efficiency(
                small, app_type, fraction, system, node_mtbf_s, severity
            )
            - threshold
        )

    lo = max(10.0 / system.total_nodes, 1e-4)
    hi = 1.0
    if gap(lo) >= 0:
        return lo  # the "large" technique already wins at tiny sizes
    if gap(hi) < 0:
        return None  # never meaningfully crosses
    return float(sp_optimize.brentq(gap, lo, hi, xtol=1e-5))


def grid_objective_value(
    technique: ResilienceTechnique,
    app_type: str,
    fraction: float,
    system: HPCSystem,
    node_mtbf_s: float,
    objective: str = "cost",
    price=None,
    carbon=None,
    power=None,
    start_s: float = 0.0,
    severity: Optional[SeverityModel] = None,
) -> float:
    """Expected grid objective (USD, gCO2, or negated efficiency) of
    *technique* for one (type, size) cell — the quantity
    :class:`repro.resilience.grid_aware.GridAwareSelection` minimizes.
    """
    # Imported lazily: grid_aware imports repro.analysis, whose package
    # init imports this module.
    from repro.energy.model import PowerModel
    from repro.resilience.grid_aware import quote

    app = make_application(app_type, nodes=system.fraction_to_nodes(fraction))
    return quote(
        technique,
        app,
        system,
        node_mtbf_s,
        severity=severity,
        power=power if power is not None else PowerModel(),
        price=price,
        carbon=carbon,
        start_s=start_s,
    ).objective_value(objective)


def grid_crossover_fraction(
    app_type: str,
    system: HPCSystem,
    node_mtbf_s: float,
    technique_small: str = "multilevel",
    technique_large: str = "parallel_recovery",
    objective: str = "cost",
    price=None,
    carbon=None,
    power=None,
    start_s: float = 0.0,
    severity: Optional[SeverityModel] = None,
    threshold: float = 1e-4,
) -> Optional[float]:
    """System fraction where *technique_large* becomes cheaper than
    *technique_small* on the grid objective (None if it never does by
    more than *threshold* relative margin anywhere in (0, 1]).

    The cost analogue of :func:`crossover_fraction`, and the refinement
    prior the adaptive campaign controller uses on grid scenarios whose
    objective is cost or carbon: the efficiency crossover and the cost
    crossover genuinely differ under peaked curves, so bisecting around
    the wrong one wastes the probe budget.  The margin is *relative*
    (costs scale with machine size and tariff level, unlike
    efficiencies in [0, 1]).
    """
    small = get_technique(technique_small)
    large = get_technique(technique_large)

    def value(technique: ResilienceTechnique, fraction: float) -> float:
        return grid_objective_value(
            technique,
            app_type,
            fraction,
            system,
            node_mtbf_s,
            objective=objective,
            price=price,
            carbon=carbon,
            power=power,
            start_s=start_s,
            severity=severity,
        )

    def gap(fraction: float) -> float:
        value_small = value(small, fraction)
        value_large = value(large, fraction)
        scale = max(abs(value_small), abs(value_large), 1e-12)
        return (value_small - value_large) / scale - threshold

    lo = max(10.0 / system.total_nodes, 1e-4)
    hi = 1.0
    if gap(lo) >= 0:
        return lo  # the "large" technique is already cheaper at tiny sizes
    if gap(hi) < 0:
        return None  # never meaningfully crosses
    return float(sp_optimize.brentq(gap, lo, hi, xtol=1e-5))


def grid_crossover_level(
    app_type: str,
    fraction: float,
    system: HPCSystem,
    node_mtbf_s: float,
    curve_factory,
    lo: float,
    hi: float,
    objective: str = "cost",
    technique_a: str = "checkpoint_restart",
    technique_b: str = "parallel_recovery",
    power=None,
    start_s: float = 0.0,
    severity: Optional[SeverityModel] = None,
) -> Optional[float]:
    """The curve-parameter level where *technique_b* becomes cheaper
    than *technique_a* for one (type, size) cell.

    *curve_factory* maps a scalar parameter (a peak price amplitude, a
    carbon-intensity swing, ...) to the :class:`~repro.grid.curves
    .Curve` applied to the objective dimension (price for ``cost``,
    carbon for ``carbon``).  Solved by bisection over ``[lo, hi]``:
    returns *lo* when *technique_b* is already cheaper there, None when
    it never catches up by *hi* — the price-level / carbon-level
    boundary of the grid selection map.
    """
    a = get_technique(technique_a)
    b = get_technique(technique_b)

    def gap(level: float) -> float:
        curve = curve_factory(level)
        price = curve if objective == "cost" else None
        carbon = curve if objective == "carbon" else None
        value_a = grid_objective_value(
            a, app_type, fraction, system, node_mtbf_s,
            objective=objective, price=price, carbon=carbon,
            power=power, start_s=start_s, severity=severity,
        )
        value_b = grid_objective_value(
            b, app_type, fraction, system, node_mtbf_s,
            objective=objective, price=price, carbon=carbon,
            power=power, start_s=start_s, severity=severity,
        )
        return value_a - value_b

    if gap(lo) >= 0:
        return float(lo)  # technique_b already cheaper at the low level
    if gap(hi) < 0:
        return None  # never crosses inside the bracket
    return float(sp_optimize.brentq(gap, lo, hi, rtol=1e-9))


def required_node_mtbf(
    technique: ResilienceTechnique,
    app_type: str,
    fraction: float,
    system: HPCSystem,
    target_efficiency: float,
    severity: Optional[SeverityModel] = None,
    mtbf_bounds_s: Tuple[float, float] = (86_400.0, 3.2e12),
) -> Optional[float]:
    """The node MTBF (seconds) at which *technique* reaches
    *target_efficiency* for *app_type* at *fraction* of the machine —
    the procurement question Figs. 1-3 imply.  None if the target is
    unreachable within the bounds (e.g. above Parallel Recovery's mu
    ceiling)."""
    if not 0.0 < target_efficiency < 1.0:
        raise ValueError(
            f"target_efficiency must be in (0, 1), got {target_efficiency}"
        )

    def gap(mtbf_s: float) -> float:
        return (
            analytic_efficiency(
                technique, app_type, fraction, system, mtbf_s, severity
            )
            - target_efficiency
        )

    lo, hi = mtbf_bounds_s
    if gap(hi) < 0:
        return None  # even a near-perfect machine cannot reach it
    if gap(lo) >= 0:
        return lo  # already reachable at the pessimistic bound
    return float(sp_optimize.brentq(gap, lo, hi, rtol=1e-6))


def selection_map(
    system: HPCSystem,
    node_mtbf_s: float,
    fractions: Sequence[float],
    app_types: Optional[Sequence[str]] = None,
    candidates: Optional[Sequence[str]] = None,
    severity: Optional[SeverityModel] = None,
) -> Dict[Tuple[str, float], str]:
    """Winning technique per (application type, fraction) cell."""
    from repro.workload.synthetic import APP_TYPES

    app_types = list(app_types) if app_types is not None else sorted(APP_TYPES)
    names = (
        list(candidates)
        if candidates is not None
        else ["checkpoint_restart", "multilevel", "parallel_recovery"]
    )
    techniques = [get_technique(n) for n in names]
    out: Dict[Tuple[str, float], str] = {}
    for app_type in app_types:
        for fraction in fractions:
            best_name, best_eff = "", -1.0
            for technique in techniques:
                app = make_application(
                    app_type, nodes=system.fraction_to_nodes(fraction)
                )
                if not technique.fits(app, system):
                    continue
                eff = analytic_efficiency(
                    technique, app_type, fraction, system, node_mtbf_s, severity
                )
                if eff > best_eff:
                    best_name, best_eff = technique.name, eff
            out[(app_type, fraction)] = best_name
    return out


def render_selection_map(
    mapping: Dict[Tuple[str, float], str], fractions: Sequence[float]
) -> str:
    """Fixed-width table of a :func:`selection_map` result."""
    tags = {
        "checkpoint_restart": "CR",
        "multilevel": "ML",
        "parallel_recovery": "PR",
    }
    app_types = sorted({key[0] for key in mapping})
    header = "type  " + "".join(f"{100 * f:>7.0f}%" for f in fractions)
    lines = [header, "-" * len(header)]
    for app_type in app_types:
        row = [f"{app_type:<5}"]
        for fraction in fractions:
            name = mapping[(app_type, fraction)]
            row.append(tags.get(name, name[:2].upper()).rjust(8))
        lines.append("".join(row))
    return "\n".join(lines)
