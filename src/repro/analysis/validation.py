"""Simulator-versus-model validation.

The DES and the first-order analytic model are independent
implementations of the same stochastic system; this module runs both on
one configuration and reports the discrepancy.  Integration tests
assert the discrepancy stays within statistical + first-order
tolerance, which guards both implementations at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.analytic import predict
from repro.core.single_app import SingleAppConfig, run_trials
from repro.platform.system import HPCSystem
from repro.resilience.base import ResilienceTechnique
from repro.workload.application import Application


@dataclass(frozen=True)
class ValidationReport:
    """Side-by-side simulated and predicted efficiency."""

    technique: str
    simulated_mean: float
    simulated_std: float
    predicted: float
    trials: int

    @property
    def absolute_error(self) -> float:
        """``|simulated_mean - predicted|``."""
        return abs(self.simulated_mean - self.predicted)

    @property
    def relative_error(self) -> float:
        """Absolute error relative to the model prediction."""
        if self.predicted == 0:
            return float("inf")
        return self.absolute_error / self.predicted

    def __str__(self) -> str:
        return (
            f"{self.technique:<22} sim {self.simulated_mean:.4f} "
            f"+/- {self.simulated_std:.4f}  model {self.predicted:.4f}  "
            f"rel.err {100 * self.relative_error:.2f}%"
        )


def validate_plan(
    app: Application,
    technique: ResilienceTechnique,
    system: HPCSystem,
    trials: int = 30,
    config: Optional[SingleAppConfig] = None,
) -> ValidationReport:
    """Simulate *trials* replications and compare with the model."""
    config = config or SingleAppConfig()
    trial_set = run_trials(app, technique, system, trials, config)
    plan = technique.plan(
        app, system, config.node_mtbf_s, severity=config.severity_model()
    )
    prediction = predict(plan, config.node_mtbf_s, config.severity_model())
    return ValidationReport(
        technique=technique.name,
        simulated_mean=float(np.mean(trial_set.efficiencies)),
        simulated_std=float(np.std(trial_set.efficiencies)),
        predicted=prediction.expected_efficiency,
        trials=trials,
    )
