"""Simulator-versus-model validation.

The DES and the first-order analytic model are independent
implementations of the same stochastic system; this module runs both on
one configuration and reports the discrepancy.  Integration tests
assert the discrepancy stays within statistical + first-order
tolerance, which guards both implementations at once.

The analytic model assumes the paper's failure environment — a Poisson
process of independent single-node failures.  Scenario configurations
can leave that regime (Weibull/lognormal interarrivals, burst widths,
trace replay); :func:`analytic_inapplicability` names the violated
assumption, and :func:`validate_plan` refuses to predict under one
(raising :class:`AnalyticModelInapplicable`) rather than silently
mis-predicting.  Callers that can fall back — the scenario runtime
does — switch to simulation-backed estimates and surface the reason.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.analytic import predict
from repro.core.single_app import SingleAppConfig, run_trials
from repro.platform.system import HPCSystem
from repro.resilience.base import ResilienceTechnique
from repro.workload.application import Application


class AnalyticModelInapplicable(ValueError):
    """The analytic model's Poisson assumptions do not hold for this
    configuration; the message names the violated assumption."""


def analytic_inapplicability(
    config: Optional[SingleAppConfig] = None,
    *,
    trace_replay: bool = False,
) -> Optional[str]:
    """Why the first-order analytic model cannot predict *config*.

    Returns None when the paper's assumptions hold (Poisson
    interarrivals, independent single-node failures), otherwise a
    one-line reason.  ``trace_replay=True`` marks a recorded-trace
    replay, which is a single empirical realization rather than a
    stochastic ensemble.
    """
    if trace_replay:
        return (
            "trace replay drives the simulation with one recorded failure "
            "realization, not a Poisson ensemble; only simulation-backed "
            "estimates are meaningful"
        )
    if config is None:
        return None
    interarrival = config.interarrival
    if interarrival is not None and not getattr(interarrival, "memoryless", False):
        return (
            f"{type(interarrival).__name__} failure interarrivals are not "
            "exponential, so the renewal-reward model's memorylessness "
            "assumption fails; falling back to simulation-backed prediction"
        )
    if config.burst is not None and config.burst.continue_probability > 0.0:
        return (
            "burst failures violate the independent single-node failure "
            "assumption of the analytic model; falling back to "
            "simulation-backed prediction"
        )
    return None


@dataclass(frozen=True)
class ValidationReport:
    """Side-by-side simulated and predicted efficiency."""

    technique: str
    simulated_mean: float
    simulated_std: float
    predicted: float
    trials: int

    @property
    def absolute_error(self) -> float:
        """``|simulated_mean - predicted|``."""
        return abs(self.simulated_mean - self.predicted)

    @property
    def relative_error(self) -> float:
        """Absolute error relative to the model prediction."""
        if self.predicted == 0:
            return float("inf")
        return self.absolute_error / self.predicted

    def __str__(self) -> str:
        return (
            f"{self.technique:<22} sim {self.simulated_mean:.4f} "
            f"+/- {self.simulated_std:.4f}  model {self.predicted:.4f}  "
            f"rel.err {100 * self.relative_error:.2f}%"
        )


def validate_plan(
    app: Application,
    technique: ResilienceTechnique,
    system: HPCSystem,
    trials: int = 30,
    config: Optional[SingleAppConfig] = None,
) -> ValidationReport:
    """Simulate *trials* replications and compare with the model.

    Raises :class:`AnalyticModelInapplicable` when *config* leaves the
    analytic model's Poisson regime — a non-exponential prediction
    would be silently wrong, never just noisy.
    """
    config = config or SingleAppConfig()
    reason = analytic_inapplicability(config)
    if reason is not None:
        raise AnalyticModelInapplicable(reason)
    trial_set = run_trials(app, technique, system, trials, config)
    plan = technique.plan(
        app, system, config.node_mtbf_s, severity=config.severity_model()
    )
    prediction = predict(plan, config.node_mtbf_s, config.severity_model())
    return ValidationReport(
        technique=technique.name,
        simulated_mean=float(np.mean(trial_set.efficiencies)),
        simulated_std=float(np.std(trial_set.efficiencies)),
        predicted=prediction.expected_efficiency,
        trials=trials,
    )
