"""The paper's core: resilient execution, the Sec. V efficiency study,
the Sec. VI datacenter study, and Sec. VII Resilience Selection."""

from repro.core.comparison import (
    ComparisonResult,
    TechniqueSummary,
    compare_techniques,
)
from repro.core.execution import ExecutionStats, ResilientExecution
from repro.core.metrics import dropped_percentage, efficiency
from repro.core.paired import (
    PairedComparison,
    paired_compare,
    simulate_with_trace,
    trace_replay_driver,
)
from repro.core.timeline import activity_totals, render_timeline
from repro.core.single_app import (
    SingleAppConfig,
    FailureDriver,
    failure_driver,
    TrialSet,
    run_trials,
    simulate_application,
)

__all__ = [
    "ComparisonResult",
    "ExecutionStats",
    "PairedComparison",
    "ResilientExecution",
    "SingleAppConfig",
    "TechniqueSummary",
    "TrialSet",
    "activity_totals",
    "render_timeline",
    "compare_techniques",
    "dropped_percentage",
    "efficiency",
    "FailureDriver",
    "failure_driver",
    "run_trials",
    "paired_compare",
    "simulate_application",
    "simulate_with_trace",
    "trace_replay_driver",
]
