"""The generic resilient-execution engine.

One process class executes *any* :class:`repro.resilience.ExecutionPlan`
on the DES: it advances work between checkpoint boundaries, takes the
scheduled checkpoint level at each boundary, and reacts to failure
interrupts with the technique-appropriate restart/recovery behaviour.
All four techniques reduce to plan parameters:

- work positions live in *effective-work* space (baseline inflated by
  the plan's ``work_rate`` — Eqs. 7/8), so one wall second of normal
  execution advances the position by one second;
- checkpoint boundaries sit at multiples of the base period; the level
  taken at boundary *i* is the highest whose multiplier divides *i*;
- a severity-s failure rolls the position back to the newest checkpoint
  among levels that recover severity >= s and pays that level's restart
  cost (restart is itself interruptible by further failures);
- while the position is behind the furthest point ever reached, the
  engine is *recovering* and advances ``recovery_speedup`` times faster
  (Parallel Recovery's parallelized re-execution; 1x for the others);
- with a replica plan, a failure that leaves the struck virtual node
  with a live replica is absorbed without interruption; checkpoints and
  restarts repair all failed replicas (Sec. IV-E restart rule).

Failures are delivered as :class:`repro.sim.Interrupt` whose cause is a
:class:`repro.failures.Failure` with ``node_id`` *relative to the
application's physical allocation* (in ``[0, nodes_required)``).

Instrumentation: the engine publishes its whole lifecycle as typed
events on the simulator's :class:`repro.obs.bus.EventBus` —
:class:`~repro.obs.events.FailureInjected` when an interrupt reaches
it, checkpoint/restart/recovery milestones, and one
:class:`~repro.obs.events.ActivitySpan` per contiguous stretch of
work/recovery/checkpoint/restart/wait time.  :class:`ExecutionStats` is
itself a bus subscriber (keyed to the application id), so the numbers
it reports and the event stream sinks observe have one source of
truth.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List, Optional, Set, Tuple

from repro.failures.generator import Failure
from repro.obs.bus import EventBus
from repro.obs.events import (
    ActivitySpan,
    CheckpointFailed,
    CheckpointTaken,
    ExecutionCompleted,
    ExecutionStarted,
    FailureInjected,
    RecoveryCompleted,
    ReplicaAbsorbed,
    RestartStarted,
)
from repro.obs.sinks import TimelineSink
from repro.resilience.base import CheckpointLevel, ExecutionPlan
from repro.sim.engine import Simulator
from repro.sim.errors import Interrupt
from repro.sim.resources import SlotPool

#: Master switch for the failure-horizon fast path (docs/PERFORMANCE.md).
#: The stepped and fast paths are bit-identical, so this exists only for
#: measurement and bisection: set ``REPRO_FAST_PATH=0`` in the
#: environment, pass ``--no-fast-path`` on the CLI, or flip the module
#: attribute to force every engine onto the stepped path.
FAST_PATH_ENABLED = os.environ.get("REPRO_FAST_PATH", "1") != "0"

class JumpAborted(Exception):
    """Interrupt cause that aborts a fast-path jump without a failure.

    Sent by :class:`PoolContentionGate` when a newly placed job closes
    the gate while jumps that folded shared-pool checkpoints are in
    flight.  The engine rewinds to its nearest snapshot, fast-replays
    to the abort instant, finishes the operation in flight with real
    kernel sleeps (taking a real pool ticket when mid-checkpoint), and
    returns to the main loop under the now-closed gate.
    """


class PoolContentionGate:
    """Tracks whether a shared :class:`SlotPool` can possibly queue anyone.

    *Inertness invariant*: while the number of running jobs whose plans
    checkpoint through the pool (``users``) is at most the pool's slot
    count and nobody is queued, every ``request()`` grants immediately
    — a job holds at most one ticket at a time and never requests while
    holding, so at any request instant held tickets <= users - 1 <=
    slots - 1 and a slot is free.  Immediate grants are invisible to
    results: the wait span is zero-length (dropped by the stats guard
    on both paths) and ``contended_requests`` stays untouched.  While
    the invariant holds the gate is *open* and engines may fold pool
    checkpoints into closed-form jumps without touching the pool.

    ``users`` only grows inside a mapping event (:meth:`job_started`),
    so open -> closed is the single transition that needs action: every
    in-flight jump that folded pool checkpoints is aborted with
    :class:`JumpAborted` and resumes stepped-equivalently.  The closed
    -> open transition (a pool user finishing, the queue draining) is
    observed lazily the next time an engine plans a jump.
    """

    def __init__(self, pool: SlotPool) -> None:
        self._pool = pool
        self._users = 0
        #: Engines mid-jump with pool checkpoints folded -> their process.
        self._jumpers: Dict[object, object] = {}

    @property
    def open(self) -> bool:
        """Whether every pool request is currently guaranteed an
        immediate grant (see the inertness invariant above)."""
        return self._users <= self._pool.slots and self._pool.queued == 0

    @property
    def users(self) -> int:
        """Running jobs whose plans checkpoint through the pool."""
        return self._users

    def job_started(self) -> None:
        """Record a newly placed pool-using job; abort in-flight
        pool-folding jumps if this closes the gate."""
        was_open = self.open
        self._users += 1
        if was_open and not self.open:
            # Snapshot the registry first: each abort handler
            # deregisters its engine via end_jump during delivery.
            for proc in list(self._jumpers.values()):
                if proc is not None and proc.alive:
                    proc.interrupt(JumpAborted())

    def job_finished(self) -> None:
        """Record a pool-using job leaving the machine."""
        self._users -= 1
        assert self._users >= 0, "pool-user accounting out of sync"

    def begin_jump(self, engine: object, process: object) -> None:
        """Register *engine* (running as *process*) as mid-jump with
        pool checkpoints folded in."""
        self._jumpers[engine] = process

    def end_jump(self, engine: object) -> None:
        """Deregister *engine* (jump finished, failed, or aborted)."""
        self._jumpers.pop(engine, None)


#: ActivitySpan activity -> the ExecutionStats field it accumulates to.
_ACTIVITY_FIELD = {
    "work": "work_time_s",
    "recovery": "rework_time_s",
    "checkpoint": "checkpoint_time_s",
    "restart": "restart_time_s",
    "wait": "resource_wait_s",
}


@dataclass
class ExecutionStats:
    """Observable outcome of one resilient execution.

    The fields are derived entirely from the instrumentation-bus event
    stream: :meth:`listen` subscribes the instance (keyed to its
    application's id) and every counter/accumulator below is updated by
    an event handler.  The engine publishes events; it never mutates
    stats directly.
    """

    plan: ExecutionPlan
    start_time: float = 0.0
    end_time: float = math.nan
    completed: bool = False
    failures: int = 0
    restarts: int = 0
    replica_failures_absorbed: int = 0
    checkpoints_taken: Dict[int, int] = field(default_factory=dict)
    failed_checkpoints: int = 0
    #: Wall seconds by activity (work excludes rework).
    work_time_s: float = 0.0
    rework_time_s: float = 0.0
    checkpoint_time_s: float = 0.0
    restart_time_s: float = 0.0
    #: Wall seconds queued for shared resources (PFS contention; zero
    #: under the paper's isolated-application model).
    resource_wait_s: float = 0.0

    @property
    def elapsed_s(self) -> float:
        """Total wall time from start to completion (or interruption)."""
        return self.end_time - self.start_time

    @property
    def total_checkpoints(self) -> int:
        """Committed checkpoints across all levels."""
        return sum(self.checkpoints_taken.values())

    @property
    def overhead_s(self) -> float:
        """Wall time beyond the plan's failure-free effective work."""
        return self.elapsed_s - self.plan.effective_work_s

    def efficiency(self) -> float:
        """Paper metric: baseline time over actual time.  Note the
        numerator is the *uninflated* baseline T_B, so message-logging
        and redundancy slowdowns count as inefficiency (Sec. V)."""
        if not self.elapsed_s > 0:
            return 0.0
        return self.plan.app.baseline_time / self.elapsed_s

    # -- bus subscription ---------------------------------------------------

    def listen(self, bus: EventBus) -> None:
        """Subscribe this instance to *bus*, keyed to its application
        id, so the stats accumulate from the event stream."""
        app_id = self.plan.app.app_id
        bus.subscribe_key(ExecutionStarted, app_id, self._on_started)
        bus.subscribe_key(ExecutionCompleted, app_id, self._on_completed)
        bus.subscribe_key(FailureInjected, app_id, self._on_failure_injected)
        bus.subscribe_key(ReplicaAbsorbed, app_id, self._on_replica_absorbed)
        bus.subscribe_key(RestartStarted, app_id, self._on_restart_started)
        bus.subscribe_key(CheckpointTaken, app_id, self._on_checkpoint_taken)
        bus.subscribe_key(CheckpointFailed, app_id, self._on_checkpoint_failed)
        bus.subscribe_key(ActivitySpan, app_id, self._on_span)

    def _on_started(self, event: ExecutionStarted) -> None:
        self.start_time = event.time

    def _on_completed(self, event: ExecutionCompleted) -> None:
        self.completed = True
        self.end_time = event.time

    def _on_failure_injected(self, event: FailureInjected) -> None:
        self.failures += 1

    def _on_replica_absorbed(self, event: ReplicaAbsorbed) -> None:
        self.replica_failures_absorbed += 1

    def _on_restart_started(self, event: RestartStarted) -> None:
        if not event.retry:
            self.restarts += 1

    def _on_checkpoint_taken(self, event: CheckpointTaken) -> None:
        counts = self.checkpoints_taken
        counts[event.level_index] = counts.get(event.level_index, 0) + 1

    def _on_checkpoint_failed(self, event: CheckpointFailed) -> None:
        self.failed_checkpoints += 1

    def _on_span(self, event: ActivitySpan) -> None:
        name = _ACTIVITY_FIELD[event.activity]
        setattr(self, name, getattr(self, name) + (event.end - event.start))


class ResilientExecution:
    """Executes one plan as a DES process.

    Usage::

        engine = ResilientExecution(sim, plan)
        proc = sim.process(engine.run(), name="app-0")
        # deliver failures with proc.interrupt(failure)
        sim.run()
        stats = engine.stats

    With ``record_timeline=True`` the engine additionally collects
    ``(start, end, activity)`` spans consumable by
    :func:`repro.core.timeline.render_timeline` (a
    :class:`repro.obs.sinks.TimelineSink` attached to the simulator's
    bus; ``engine.timeline`` aliases its span list).
    """

    #: Float slop when mapping positions to boundary indices.
    _EPS = 1e-9

    #: Snapshot cadence inside greedy jumps: one state snapshot per
    #: this many folded iterations bounds replay-on-interrupt to a
    #: constant number of iterations without snapshotting every one.
    #: Snapshots are cheap (a few scalars + two small dict copies), so
    #: a tight cadence wins on failure-heavy cells; 8 measured fastest
    #: at fig4 scale, with 4 paying more in snapshots than it saves in
    #: replay.
    _SNAPSHOT_EVERY = 8

    #: Iteration budget per greedy jump.  An interrupted jump's applied
    #: iterations are thrown away and re-planned after the failure, so
    #: unbounded jumps cost O(failures x remaining-iterations) on
    #: failure-heavy jobs; capping a jump keeps the waste per interrupt
    #: constant while still folding dozens of kernel suspensions into
    #: one sleep.  32 balances the two at fig4 scale (~sqrt of the
    #: events-per-failure ratio); both larger and smaller caps measured
    #: slower end to end.
    _GREEDY_MAX_ITERATIONS = 32

    def __init__(
        self,
        sim: Simulator,
        plan: ExecutionPlan,
        record_timeline: bool = False,
        resources: Optional[Dict[str, "SlotPool"]] = None,
        failure_horizon: Optional[Callable[[], Optional[float]]] = None,
        until: Optional[float] = None,
        gate: Optional[PoolContentionGate] = None,
        greedy: bool = False,
    ) -> None:
        self._sim = sim
        self.plan = plan
        self._resources = resources or {}
        #: Callable returning the absolute time of the next pending
        #: failure interrupt (None when unknown).  Without one the
        #: engine always steps; with one it may take closed-form jumps
        #: over the failure-free stretch (see :meth:`_fast_forward`).
        self._failure_horizon = failure_horizon
        #: The kernel's run horizon (walltime cap): the fast path never
        #: jumps past it, so capped runs stop with exactly the stepped
        #: path's partial stats.
        self._until = until
        self._record_timeline = record_timeline
        #: Greedy mode (datacenter): jump all the way to the next
        #: checkpoint-boundary structure change or completion without
        #: consulting the failure horizon, relying entirely on
        #: interrupt-and-replay for exactness.  The horizon-bounded
        #: mode (single-app) never sleeps past the next known failure.
        self._greedy = greedy
        #: Contention gate for the shared pool the plan's levels may
        #: checkpoint through (datacenter PFS).  While it reports open,
        #: pool checkpoints fold into jumps; when it closes mid-jump the
        #: engine is aborted and resumes stepped-equivalently.
        self._gate = gate
        #: Level indices whose checkpoints go through a provided pool.
        self._pool_levels = {
            lvl.index
            for lvl in plan.levels
            if lvl.shared_resource is not None
            and lvl.shared_resource in self._resources
        }
        self._levels_by_index = {lvl.index: lvl for lvl in plan.levels}
        #: Precomputed boundary -> level table for the fast path's hot
        #: loop: ``boundary_level(b)`` depends only on ``b`` modulo the
        #: lcm of the level multipliers, so a small table replaces the
        #: per-boundary scan.  Built with exactly boundary_level's
        #: last-divider-wins rule; None when the lcm is implausibly
        #: large (the scan then stays in place).
        mults = [plan.level_multiplier(lvl.index) for lvl in plan.levels]
        table_period = 1
        for mult in mults:
            table_period = math.lcm(table_period, mult)
        self._level_table: Optional[tuple] = None
        self._level_table_period = table_period
        if table_period <= 4096:
            table = []
            for residue in range(table_period):
                chosen = plan.levels[0]
                for lvl, mult in zip(plan.levels, mults):
                    if residue % mult == 0:
                        chosen = lvl
                table.append(chosen)
            self._level_table = tuple(table)
        #: This engine's process handle (see :meth:`bind_process`);
        #: needed only for gate registration.
        self._process = None
        #: True when some level may queue on a provided shared pool and
        #: no gate tracks its contention; slot waits then make the
        #: inter-failure stretch non-deterministic, so the fast path
        #: must not skip while one is possible.  With a gate the engine
        #: jumps whenever the gate proves waits impossible.
        self._contended = bool(self._pool_levels) and gate is None
        #: Fast-path introspection: closed-form jumps taken, and stepped
        #: main-loop iterations those jumps replaced.
        self.fast_jumps = 0
        self.fast_iterations_skipped = 0
        #: The simulator's shared bus (external sinks subscribe here).
        self._bus = sim.bus
        #: Engine-local bus: this execution's own stats and timeline
        #: subscribe here, so two engines that happen to share an
        #: ``app_id`` on one simulator never cross-feed each other.
        self._local_bus = EventBus()
        self._app_id = plan.app.app_id
        self._technique = plan.technique
        self.stats = ExecutionStats(plan=plan)
        self.stats.listen(self._local_bus)
        self._done = 0.0
        self._furthest = 0.0
        #: Newest checkpointed work position per level index.
        self._saved: Dict[int, float] = {lvl.index: 0.0 for lvl in plan.levels}
        #: Replicated virtual nodes currently running on one replica.
        self._degraded: Set[int] = set()
        #: In-flight semi-blocking checkpoint: (level_index, work
        #: position, commit time); committed lazily once due.
        self._pending_commit: Optional[tuple] = None
        #: Optional (start, end, activity) spans for visualization.
        self.timeline: list = []
        if record_timeline:
            sink = TimelineSink(app_id=self._app_id)
            sink.attach(self._local_bus)
            self.timeline = sink.spans

    def _publish(self, event) -> None:
        """Publish *event* on the engine-local bus (stats, timeline)
        and mirror it on the simulator's shared bus (external sinks)."""
        self._local_bus.publish(event)
        self._bus.publish(event)

    # -- observability -------------------------------------------------------

    @property
    def work_position(self) -> float:
        """Current position in effective-work space, seconds."""
        return self._done

    @property
    def progress(self) -> float:
        """Fraction of effective work committed, in [0, 1]."""
        return min(1.0, self._done / self.plan.effective_work_s)

    @property
    def degraded_virtual_nodes(self) -> int:
        """Replicated virtual nodes currently running on one replica."""
        return len(self._degraded)

    # -- process body -----------------------------------------------------------

    def run(self) -> Generator:
        """Process generator: run the application to completion."""
        plan = self.plan
        total = plan.effective_work_s
        base = plan.base_period_s
        self._publish(
            ExecutionStarted(
                time=self._sim.now, app_id=self._app_id, technique=self._technique
            )
        )
        while self._done < total - self._EPS:
            if self._fast_path_usable():
                advanced = yield from self._fast_forward(total, base)
                if advanced:
                    continue
            boundary = int(self._done / base + self._EPS) + 1
            target = min(boundary * base, total)
            reached = yield from self._work_to(target)
            if not reached:
                continue  # failure handled; position rolled back
            if self._done >= total - self._EPS:
                break
            level = plan.boundary_level(boundary)
            yield from self._checkpoint(level)
        self._publish(
            ExecutionCompleted(
                time=self._sim.now, app_id=self._app_id, technique=self._technique
            )
        )
        return self.stats

    # -- internals -----------------------------------------------------------

    def _work_to(self, target: float) -> Generator:
        """Advance work to *target*; False if a failure intervened."""
        while self._done < target - self._EPS:
            if self._done < self._furthest - self._EPS:
                segment_end = min(self._furthest, target)
                speed = self.plan.recovery_speedup
                recovering = True
            else:
                segment_end = target
                speed = 1.0
                recovering = False
            duration = (segment_end - self._done) / speed
            started = self._sim.now
            kind = "recovery" if recovering else "work"
            try:
                yield duration
            except Interrupt as interrupt:
                elapsed = self._sim.now - started
                self._advance(elapsed, speed)
                self._note(kind, started, self._sim.now)
                yield from self._on_failure(interrupt.cause)
                return False
            self._advance(duration, speed)
            self._note(kind, started, self._sim.now)
        return True

    def _advance(self, wall_s: float, speed: float) -> None:
        self._done = min(
            self.plan.effective_work_s, self._done + wall_s * speed
        )
        self._furthest = max(self._furthest, self._done)

    # -- failure-horizon fast path -------------------------------------------

    def set_failure_horizon(
        self, provider: Callable[[], Optional[float]]
    ) -> None:
        """Install the fast path's horizon *provider* (a callable
        returning the absolute time of the next pending failure
        interrupt, or None when unknown) after construction — failure
        sources usually need the engine's process to exist first."""
        self._failure_horizon = provider

    def bind_process(self, process) -> None:
        """Attach this engine's :class:`~repro.sim.process.Process`
        handle so the contention gate can deliver jump aborts.  Like
        :meth:`set_failure_horizon` this happens after construction —
        the process wrapping :meth:`run` cannot exist before the
        engine does."""
        self._process = process

    def _fast_path_usable(self) -> bool:
        """Whether the next stretch may be advanced in closed form.

        The fast path skips the per-boundary kernel events, so it is
        only taken when nothing can tell the difference: shared-pool
        contention without a gate makes slot waits possible inside the
        stretch; a timeline recorder or any shared-bus observer (sinks,
        kernel taps) expects the full per-boundary event stream, so
        observed runs auto-fall back to the stepped path.  The
        horizon-bounded mode additionally needs a horizon provider;
        greedy mode needs none (interrupts abort the jump wherever
        they land).
        """
        if (
            not FAST_PATH_ENABLED
            or self._contended
            or self._record_timeline
            or self._bus.observed
        ):
            return False
        return self._greedy or self._failure_horizon is not None

    def _fast_forward(self, total: float, base: float) -> Generator:
        """Closed-form jump over the failure-free stretch.

        Applies whole main-loop iterations (work segments + boundary
        checkpoint) whose kernel suspensions would all land strictly
        before the next failure interrupt and at or before the run
        horizon, then sleeps once to the folded end time.  Returns True
        when anything was applied (the main loop then re-evaluates) and
        False to fall back to one stepped iteration.

        Exactness: :meth:`_plan_iteration` replays the stepped path's
        float operations in program order and no RNG is consumed
        between failures, so state and stats are bit-identical (the
        exactness argument is spelled out in docs/PERFORMANCE.md).  The
        horizon may move *earlier* mid-jump (the datacenter injector
        re-draws its pending gap on every allocation change, and a
        system failure may strike another application first); the
        interrupt then lands inside the jump timeout, and the engine
        restores the nearest preceding snapshot and replays the planned
        segments up to the interrupt instant exactly as the stepped
        path would have run them, before handling the failure normally.

        Greedy mode (datacenter) ignores the horizon entirely: the jump
        runs to completion (or the run cap, or the first iteration the
        contention gate forbids) and relies on interrupt-and-replay for
        any failure that lands inside it — the engine only wakes when a
        failure actually strikes *it*.  Jumps that fold shared-pool
        checkpoints register with the gate, whose closing aborts them
        mid-sleep (:class:`JumpAborted` -> :meth:`_resume_after_abort`);
        while the gate is closed, planning stops before the first
        pool-backed boundary so that checkpoint queues for real.
        Snapshots are taken every :attr:`_SNAPSHOT_EVERY` folded
        iterations to bound the replay length.
        """
        start = self._sim.now
        if self._greedy:
            horizon = math.inf
        else:
            fire = self._failure_horizon()
            horizon = math.inf if fire is None else fire
            if horizon <= start:
                return False  # the pending failure is due right now
        cap = math.inf if self._until is None else self._until
        gate = self._gate
        plan = self.plan
        stats = self.stats
        eps = self._EPS
        recovery_speedup = plan.recovery_speedup
        pool_levels = self._pool_levels
        table = self._level_table
        table_period = self._level_table_period
        max_iterations = self._GREEDY_MAX_ITERATIONS if self._greedy else None
        snaps: List[Tuple[float, tuple]] = []
        uses_pool = False
        iterations = 0
        t = start
        # The loop below is :meth:`_plan_iteration` + :meth:`_apply_op`
        # fused and inlined — this is the hot path of every simulation,
        # so op tuples and per-op dispatch are traded for one in-place
        # pass per iteration.  Work/rework totals are accumulated as
        # the segments are computed and restored bit-exactly from the
        # saved scalars when the iteration turns out unacceptable (the
        # only state touched before the acceptance check); everything
        # else commits after it.  The engine's scalar state lives in
        # locals for the duration of the loop (synced back to
        # ``self``/``stats`` before each snapshot and once at exit —
        # there are no yields inside, so no one can observe the
        # in-flight locals).  Any arithmetic edit here needs its mirror
        # in _plan_iteration/_apply_op (and in the stepped path), which
        # the bit-identity suites enforce.
        snapshot_every = self._SNAPSHOT_EVERY
        done_v = self._done
        furthest_v = self._furthest
        pending_v = self._pending_commit
        work_v = stats.work_time_s
        rework_v = stats.rework_time_s
        ckpt_v = stats.checkpoint_time_s
        failed_v = stats.failed_checkpoints
        saved = self._saved
        degraded = self._degraded
        counts = stats.checkpoints_taken
        while True:
            # Snapshot *pre-iteration* state: rejected iterations roll
            # their stats writes back below, so the state at virtual
            # time ``t`` always matches what the snapshot recorded.
            if iterations % snapshot_every == 0:
                self._done = done_v
                self._furthest = furthest_v
                self._pending_commit = pending_v
                stats.work_time_s = work_v
                stats.rework_time_s = rework_v
                stats.checkpoint_time_s = ckpt_v
                stats.failed_checkpoints = failed_v
                snaps.append((t, self._snapshot_state()))
            d = done_v
            f = furthest_v
            work0 = work_v
            rework0 = rework_v
            boundary = int(d / base + eps) + 1
            target = boundary * base
            if target > total:
                target = total
            tt = t
            while d < target - eps:
                if d < f - eps:
                    seg_pos = f if f < target else target
                    speed = recovery_speedup
                    rework_seg = True
                else:
                    seg_pos = target
                    speed = 1.0
                    rework_seg = False
                duration = (seg_pos - d) / speed
                seg_start = tt
                tt = tt + duration
                d = d + duration * speed
                if d > total:
                    d = total
                if d > f:
                    f = d
                if tt > seg_start:
                    if rework_seg:
                        rework_v = rework_v + (tt - seg_start)
                    else:
                        work_v = work_v + (tt - seg_start)
            completed = d >= total - eps
            seg_end = tt
            level = None
            blocking = 0.0
            iteration_uses_pool = False
            if not completed:
                level = (
                    table[boundary % table_period]
                    if table is not None
                    else plan.boundary_level(boundary)
                )
                if level.index in pool_levels:
                    # This boundary checkpoint goes through the shared
                    # pool: fold it only while the gate proves every
                    # request grants immediately; otherwise stop here
                    # and let it queue for real on the stepped path.
                    if gate is None or not gate.open:
                        work_v = work0
                        rework_v = rework0
                        break
                    iteration_uses_pool = True
                blocking = level.cost_s * level.blocking_fraction
                tt = tt + blocking
            end = tt
            # Suspension instants grow monotonically through the
            # iteration, so checking its last one covers them all.  A
            # failure exactly at a wake instant preempts the wake
            # (FAILURE_PRIORITY / the driver's earlier event), hence
            # the strict horizon comparison.
            if end >= horizon or end > cap or end <= t:
                work_v = work0
                rework_v = rework0
                break
            # -- accepted: commit position and checkpoint effects.
            done_v = d
            furthest_v = f
            if not completed:
                if pending_v is not None:
                    idx, work, commit_time = pending_v
                    pending_v = None
                    if commit_time <= seg_end + eps:
                        saved[idx] = work
                        if degraded:
                            degraded.clear()
                        counts[idx] = counts.get(idx, 0) + 1
                    else:
                        failed_v += 1
                if end > seg_end:
                    ckpt_v = ckpt_v + (end - seg_end)
                if level.blocking_fraction >= 1.0:
                    saved[level.index] = d
                    if degraded:
                        degraded.clear()
                    counts[level.index] = counts.get(level.index, 0) + 1
                else:
                    remainder = level.cost_s - blocking
                    pending_v = (level.index, d, end + remainder)
                if iteration_uses_pool:
                    uses_pool = True
            t = end
            iterations += 1
            if completed:
                break
            if max_iterations is not None and iterations >= max_iterations:
                break  # wake once and jump again; see _GREEDY_MAX_ITERATIONS
        self._done = done_v
        self._furthest = furthest_v
        self._pending_commit = pending_v
        stats.work_time_s = work_v
        stats.rework_time_s = rework_v
        stats.checkpoint_time_s = ckpt_v
        stats.failed_checkpoints = failed_v
        self.fast_iterations_skipped += iterations
        if t == start:
            return False
        self.fast_jumps += 1
        registered = uses_pool and gate is not None
        if registered:
            gate.begin_jump(self, self._process)
        try:
            yield self._sim.timeout_at(t)
        except Interrupt as interrupt:
            if registered:
                gate.end_jump(self)
            if isinstance(interrupt.cause, JumpAborted):
                yield from self._resume_after_abort(snaps, total, base)
                return True
            until = self._sim.now
            ts, snapshot = self._nearest_snapshot(snaps, until)
            self._restore_state(snapshot)
            self._replay_to(ts, total, base, until)
            yield from self._on_failure(interrupt.cause)
            return True
        if registered:
            gate.end_jump(self)
        return True

    def _plan_iteration(
        self, t: float, total: float, base: float
    ) -> Tuple[List[tuple], float, bool]:
        """One stepped-path main-loop iteration, computed arithmetically.

        Returns ``(ops, end, completed)``: the ordered effect list the
        stepped path would produce starting at virtual time *t* from
        the engine's current state, the virtual time after the
        iteration, and whether the work completes within it.  Pure —
        nothing is applied here.

        Every float expression below replicates, operation for
        operation and in program order, what :meth:`run` /
        :meth:`_work_to` / :meth:`_checkpoint` compute on the stepped
        path (wake times are ``started + duration`` there too, via the
        kernel's ``now + delay`` scheduling); any edit on either side
        needs its mirror, which the fast-path bit-identity tests
        enforce.
        """
        plan = self.plan
        eps = self._EPS
        done = self._done
        furthest = self._furthest
        ops: List[tuple] = []
        boundary = int(done / base + eps) + 1
        target = min(boundary * base, total)
        while done < target - eps:
            if done < furthest - eps:
                segment_end = min(furthest, target)
                speed = plan.recovery_speedup
                field_name = "rework_time_s"
            else:
                segment_end = target
                speed = 1.0
                field_name = "work_time_s"
            duration = (segment_end - done) / speed
            started = t
            t = started + duration
            ops.append(("seg", field_name, started, t, duration, speed))
            done = min(total, done + duration * speed)
            furthest = max(furthest, done)
        if done >= total - eps:
            return ops, t, True
        level = plan.boundary_level(boundary)
        if self._pending_commit is not None:
            idx, work, commit_time = self._pending_commit
            if commit_time <= t + eps:
                ops.append(("settle_commit", idx, work))
            else:
                ops.append(("settle_void", idx))
        blocking = level.cost_s * level.blocking_fraction
        started = t
        t = started + blocking
        ops.append(("ckpt", level.index, started, t))
        if level.blocking_fraction >= 1.0:
            ops.append(("commit", level.index, done))
        else:
            remainder = level.cost_s - blocking
            ops.append(("pending", level.index, done, t + remainder))
        return ops, t, False

    def _apply_op(self, op: tuple) -> None:
        """Apply one planned effect with the exact float operations the
        stepped path's code and stats handlers would perform."""
        kind = op[0]
        if kind == "seg":
            _, field_name, started, end, duration, speed = op
            self._advance(duration, speed)
            self._note_stat(field_name, started, end)
        elif kind == "ckpt":
            _, _level_index, started, end = op
            self._note_stat("checkpoint_time_s", started, end)
        elif kind == "commit" or kind == "settle_commit":
            _, level_index, work = op
            if kind == "settle_commit":
                self._pending_commit = None
            self._saved[level_index] = work
            self._degraded.clear()
            counts = self.stats.checkpoints_taken
            counts[level_index] = counts.get(level_index, 0) + 1
        elif kind == "settle_void":
            self._pending_commit = None
            self.stats.failed_checkpoints += 1
        else:  # "pending"
            _, level_index, work, commit_time = op
            self._pending_commit = (level_index, work, commit_time)

    def _note_stat(self, field_name: str, start: float, end: float) -> None:
        """The fast path's stand-in for one ActivitySpan round trip:
        same zero-length guard and accumulation float op as
        :meth:`_note` + :meth:`ExecutionStats._on_span`, without the
        event object (valid because nothing observes the bus)."""
        if end > start:
            stats = self.stats
            setattr(stats, field_name, getattr(stats, field_name) + (end - start))

    def _snapshot_state(self) -> tuple:
        """Everything a jump's ops may mutate, for replay-on-interrupt."""
        stats = self.stats
        return (
            self._done,
            self._furthest,
            dict(self._saved),
            set(self._degraded),
            self._pending_commit,
            stats.work_time_s,
            stats.rework_time_s,
            stats.checkpoint_time_s,
            stats.failed_checkpoints,
            dict(stats.checkpoints_taken),
        )

    def _restore_state(self, snapshot: tuple) -> None:
        stats = self.stats
        (
            self._done,
            self._furthest,
            self._saved,
            self._degraded,
            self._pending_commit,
            stats.work_time_s,
            stats.rework_time_s,
            stats.checkpoint_time_s,
            stats.failed_checkpoints,
            stats.checkpoints_taken,
        ) = snapshot

    def _replay_to(
        self, t: float, total: float, base: float, until: float
    ) -> None:
        """Re-derive the jump's segments from the restored snapshot and
        apply them up to the interrupt instant *until*.

        Segments ending before *until* are applied in full (their
        synchronous follow-up ops included — on the stepped path those
        ran inside wake events strictly before the interrupt).  The
        first segment reaching *until* is the interrupted one: a
        failure at a wake instant preempts the wake, so ties cut here
        too, with exactly the stepped path's interrupt-handler
        arithmetic.  The caller then runs :meth:`_on_failure`.
        """
        while True:
            ops, end, completed = self._plan_iteration(t, total, base)
            for op in ops:
                kind = op[0]
                if kind == "seg":
                    _, field_name, started, seg_end, _duration, speed = op
                    if seg_end < until:
                        self._apply_op(op)
                        continue
                    elapsed = until - started
                    self._advance(elapsed, speed)
                    self._note_stat(field_name, started, until)
                    return
                if kind == "ckpt":
                    _, _level_index, started, seg_end = op
                    if seg_end < until:
                        self._apply_op(op)
                        continue
                    self._note_stat("checkpoint_time_s", started, until)
                    self.stats.failed_checkpoints += 1
                    return
                self._apply_op(op)
            t = end
            if completed or end >= until:  # pragma: no cover - defensive
                return

    def _nearest_snapshot(
        self, snaps: List[Tuple[float, tuple]], until: float, inclusive: bool = False
    ) -> Tuple[float, tuple]:
        """The newest ``(virtual_time, snapshot)`` from which replaying
        reaches the interrupt instant *until*.

        Failure replay needs a snapshot strictly *before* the failure —
        a failure delivered exactly at a planned wake instant preempts
        the wake, so the op ending there must be replayed as partial,
        from earlier state.  A snapshot whose timestamp *equals* the
        failure instant was taken after applying that op, too late.
        When no snapshot qualifies (the failure lands at the jump's
        very start), the pre-jump snapshot replays an elapsed-zero
        partial op, exactly the stepped path's interrupt-at-suspension
        arithmetic.  Abort resume passes ``inclusive=True``: operations
        ending at the abort instant completed on the stepped path
        (wakes precede the mapping event that flips the gate), so
        state exactly *at* the instant is usable.
        """
        best = snaps[0]
        for ts, snap in snaps:
            if ts < until or (inclusive and ts <= until):
                best = (ts, snap)
            else:
                break
        return best

    def _resume_after_abort(
        self, snaps: List[Tuple[float, tuple]], total: float, base: float
    ) -> Generator:
        """Resume stepped-equivalently after the gate aborted a jump.

        The abort lands at the instant T a mapping event closed the
        gate.  On the stepped path nothing special happens at T: wake
        events at (T, wake-priority) ran *before* the mapping, so every
        planned operation ending at or before T completed, and exactly
        one timed operation is in flight across T.  This method rebuilds
        that picture: restore the newest snapshot at or before T,
        re-apply completed operations arithmetically, then finish the
        in-flight operation with a real kernel sleep *to its original
        planned end* (never re-deriving the remainder: ``(T - s) +
        (e - T)`` need not equal ``e - s`` in floats, so the op is
        applied with the planner's untouched values).  An in-flight
        pool checkpoint re-acquires a real ticket at T — guaranteed
        immediate because stepped-path holders plus mid-jump
        checkpointers never exceed the pre-flip user count, which the
        open gate bounded by the slot count.  Failures during the
        resume sleeps take exactly the stepped path's interrupt
        branches.  Control then returns to the main loop, which
        re-derives the remaining boundary structure from state under
        the now-closed gate.
        """
        until = self._sim.now
        ts, snapshot = self._nearest_snapshot(snaps, until, inclusive=True)
        self._restore_state(snapshot)
        t = ts
        while True:
            ops, end, completed = self._plan_iteration(t, total, base)
            for position, op in enumerate(ops):
                kind = op[0]
                if kind == "seg":
                    _, field_name, started, seg_end, _duration, speed = op
                    if seg_end <= until:
                        self._apply_op(op)
                        continue
                    try:
                        yield self._sim.timeout_at(seg_end)
                    except Interrupt as interrupt:
                        elapsed = self._sim.now - started
                        self._advance(elapsed, speed)
                        self._note_stat(field_name, started, self._sim.now)
                        yield from self._on_failure(interrupt.cause)
                        return
                    self._apply_op(op)
                    following = (
                        ops[position + 1] if position + 1 < len(ops) else None
                    )
                    if following is not None and following[0] != "seg":
                        # That was the iteration's last work segment, so
                        # the position now sits exactly on the boundary —
                        # where the main loop would derive the *next*
                        # boundary and skip this one's checkpoint.  Take
                        # it here, through the real stepped code: the
                        # gate is closed now, so a pool level may
                        # genuinely queue.
                        ckpt_op = next(o for o in ops if o[0] == "ckpt")
                        level = self._levels_by_index[ckpt_op[1]]
                        yield from self._checkpoint(level)
                    # Remaining mid-iteration segments (a recovery ->
                    # work transition) re-derive exactly from state in
                    # the main loop.
                    return
                if kind == "ckpt":
                    _, level_index, started, seg_end = op
                    if seg_end <= until:
                        self._apply_op(op)
                        continue
                    level = self._levels_by_index[level_index]
                    pool = (
                        self._resources.get(level.shared_resource)
                        if level.shared_resource is not None
                        else None
                    )
                    ticket = pool.request() if pool is not None else None
                    try:
                        yield self._sim.timeout_at(seg_end)
                    except Interrupt as interrupt:
                        if ticket is not None:
                            ticket.release()
                        self._note_stat(
                            "checkpoint_time_s", started, self._sim.now
                        )
                        self.stats.failed_checkpoints += 1
                        yield from self._on_failure(interrupt.cause)
                        return
                    if ticket is not None:
                        ticket.release()
                    self._apply_op(op)
                    # The commit/pending op right after the checkpoint
                    # is synchronous at its end instant.
                    self._apply_op(ops[position + 1])
                    return
                self._apply_op(op)
            t = end
            # An iteration ending exactly at T completed before the
            # flip (its wake preceded the mapping event), so only
            # ``completed`` exits: the next iteration re-plans from t
            # and its first timed op crosses T as the in-flight one.
            if completed:
                return

    def _checkpoint(self, level: CheckpointLevel) -> Generator:
        """Take a checkpoint at *level*; on failure the in-progress
        checkpoint is discarded.

        With ``blocking_fraction < 1`` only the blocking portion stalls
        execution; the checkpoint commits once its full cost has
        elapsed in the background (or is voided by an earlier failure
        or by the next checkpoint starting first)."""
        self._settle_pending_commit()
        try:
            ticket = yield from self._acquire(level)
        except Interrupt as interrupt:
            self._checkpoint_failed(level.index)
            yield from self._on_failure(interrupt.cause)
            return False
        blocking = level.cost_s * level.blocking_fraction
        started = self._sim.now
        try:
            yield blocking
        except Interrupt as interrupt:
            if ticket is not None:
                ticket.release()
            self._note("checkpoint", started, self._sim.now)
            self._checkpoint_failed(level.index)
            yield from self._on_failure(interrupt.cause)
            return False
        if ticket is not None:
            ticket.release()
        self._note("checkpoint", started, self._sim.now)
        if level.blocking_fraction >= 1.0:
            self._commit(level.index, self._done)
        else:
            remainder = level.cost_s - blocking
            self._pending_commit = (
                level.index,
                self._done,
                self._sim.now + remainder,
            )
        return True

    def _commit(self, level_index: int, work: float) -> None:
        self._saved[level_index] = work
        self._degraded.clear()  # checkpoints repair failed replicas
        self._publish(
            CheckpointTaken(
                time=self._sim.now,
                app_id=self._app_id,
                technique=self._technique,
                level_index=level_index,
                position=work,
            )
        )

    def _checkpoint_failed(self, level_index: int) -> None:
        self._publish(
            CheckpointFailed(
                time=self._sim.now,
                app_id=self._app_id,
                technique=self._technique,
                level_index=level_index,
            )
        )

    def _settle_pending_commit(self) -> None:
        """Apply an in-flight semi-blocking checkpoint if its full cost
        has elapsed; otherwise void it (a failure arrived first, or the
        next checkpoint superseded it)."""
        if self._pending_commit is None:
            return
        level_index, work, commit_time = self._pending_commit
        self._pending_commit = None
        if commit_time <= self._sim.now + self._EPS:
            self._commit(level_index, work)
        else:
            self._checkpoint_failed(level_index)

    def _absorbed_by_replica(self, failure: Failure) -> bool:
        """Redundancy rule: True when live replicas keep every struck
        virtual node running (no interruption).

        Handles burst failures (``failure.width > 1``): the burst
        strikes contiguous physical nodes, so it can take out both
        (adjacent) replicas of a virtual node at once — the spatial-
        correlation hazard of contiguous partner placement."""
        replicas = self.plan.replicas
        if replicas is None:
            return False
        start = failure.node_id % replicas.physical_nodes
        stop = min(start + failure.width, replicas.physical_nodes)
        hits: Dict[int, int] = {}
        for phys in range(start, stop):
            virtual = replicas.virtual_of_physical(phys)
            hits[virtual] = hits.get(virtual, 0) + 1
        for virtual, struck in hits.items():
            total = replicas.replicas_of(virtual)
            already_dead = 1 if (total == 2 and virtual in self._degraded) else 0
            if already_dead + struck >= total:
                return False  # some virtual node lost all replicas
        for virtual in hits:
            if replicas.replicas_of(virtual) == 2:
                self._degraded.add(virtual)
        self._publish(
            ReplicaAbsorbed(
                time=self._sim.now,
                app_id=self._app_id,
                technique=self._technique,
                degraded_virtual_nodes=len(self._degraded),
            )
        )
        return True

    def _failure_injected(self, failure: Optional[Failure], severity: int) -> None:
        """Publish the delivery of one failure interrupt.  *severity*
        covers interrupts whose cause carries no failure object."""
        if failure is not None:
            self._publish(
                FailureInjected(
                    time=self._sim.now,
                    app_id=self._app_id,
                    node_id=failure.node_id,
                    severity=failure.severity,
                    width=failure.width,
                )
            )
        else:
            self._publish(
                FailureInjected(
                    time=self._sim.now,
                    app_id=self._app_id,
                    node_id=-1,
                    severity=severity,
                )
            )

    def _on_failure(self, failure: Failure) -> Generator:
        """Handle one delivered failure: maybe absorb, else restart."""
        self._failure_injected(failure, failure.severity if failure else 0)
        self._settle_pending_commit()
        if self._absorbed_by_replica(failure):
            return
        severity = failure.severity
        retry = False
        while True:
            level = self._restore_level(severity)
            self._publish(
                RestartStarted(
                    time=self._sim.now,
                    app_id=self._app_id,
                    technique=self._technique,
                    severity=severity,
                    level_index=level.index,
                    retry=retry,
                )
            )
            try:
                ticket = yield from self._acquire(level)
            except Interrupt as interrupt:
                cause = interrupt.cause
                self._failure_injected(cause, severity)
                severity = max(severity, cause.severity if cause else severity)
                retry = True
                continue
            started = self._sim.now
            try:
                yield level.restart_s
            except Interrupt as interrupt:
                # Failure during restart: restart the restart, from the
                # worst severity seen (replicas are all mid-restore, so
                # no absorption applies here).
                if ticket is not None:
                    ticket.release()
                self._note("restart", started, self._sim.now)
                cause = interrupt.cause
                self._failure_injected(cause, severity)
                severity = max(severity, cause.severity if cause else severity)
                retry = True
                continue
            if ticket is not None:
                ticket.release()
            self._note("restart", started, self._sim.now)
            break
        self._publish(
            RecoveryCompleted(
                time=self._sim.now,
                app_id=self._app_id,
                technique=self._technique,
                level_index=level.index,
                position=self._saved[level.index],
            )
        )
        self._degraded.clear()
        self._done = self._saved[level.index]

    def _acquire(self, level: CheckpointLevel) -> Generator:
        """Queue for the level's shared resource, if any.

        Returns a held ticket (or None when uncontended); propagates
        interrupts after abandoning the request.
        """
        pool = (
            self._resources.get(level.shared_resource)
            if level.shared_resource is not None
            else None
        )
        if pool is None:
            return None
        ticket = pool.request()
        started = self._sim.now
        try:
            yield from ticket.wait()
        except Interrupt:
            ticket.abandon()
            self._note("wait", started, self._sim.now)
            raise
        self._note("wait", started, self._sim.now)
        return ticket

    def _note(self, activity: str, start: float, end: float) -> None:
        """Publish the closed activity span (zero-length spans are
        skipped; they carry no time)."""
        if end > start:
            self._publish(
                ActivitySpan(
                    time=end,
                    app_id=self._app_id,
                    technique=self._technique,
                    activity=activity,
                    start=start,
                    end=end,
                )
            )

    def _restore_level(self, severity: int) -> CheckpointLevel:
        """The level holding the newest state recoverable at *severity*
        (ties favour the cheaper restart)."""
        usable = self.plan.recovery_levels(severity)
        return max(usable, key=lambda lvl: (self._saved[lvl.index], -lvl.restart_s))
