"""The generic resilient-execution engine.

One process class executes *any* :class:`repro.resilience.ExecutionPlan`
on the DES: it advances work between checkpoint boundaries, takes the
scheduled checkpoint level at each boundary, and reacts to failure
interrupts with the technique-appropriate restart/recovery behaviour.
All four techniques reduce to plan parameters:

- work positions live in *effective-work* space (baseline inflated by
  the plan's ``work_rate`` — Eqs. 7/8), so one wall second of normal
  execution advances the position by one second;
- checkpoint boundaries sit at multiples of the base period; the level
  taken at boundary *i* is the highest whose multiplier divides *i*;
- a severity-s failure rolls the position back to the newest checkpoint
  among levels that recover severity >= s and pays that level's restart
  cost (restart is itself interruptible by further failures);
- while the position is behind the furthest point ever reached, the
  engine is *recovering* and advances ``recovery_speedup`` times faster
  (Parallel Recovery's parallelized re-execution; 1x for the others);
- with a replica plan, a failure that leaves the struck virtual node
  with a live replica is absorbed without interruption; checkpoints and
  restarts repair all failed replicas (Sec. IV-E restart rule).

Failures are delivered as :class:`repro.sim.Interrupt` whose cause is a
:class:`repro.failures.Failure` with ``node_id`` *relative to the
application's physical allocation* (in ``[0, nodes_required)``).

Instrumentation: the engine publishes its whole lifecycle as typed
events on the simulator's :class:`repro.obs.bus.EventBus` —
:class:`~repro.obs.events.FailureInjected` when an interrupt reaches
it, checkpoint/restart/recovery milestones, and one
:class:`~repro.obs.events.ActivitySpan` per contiguous stretch of
work/recovery/checkpoint/restart/wait time.  :class:`ExecutionStats` is
itself a bus subscriber (keyed to the application id), so the numbers
it reports and the event stream sinks observe have one source of
truth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Generator, Optional, Set

from repro.failures.generator import Failure
from repro.obs.bus import EventBus
from repro.obs.events import (
    ActivitySpan,
    CheckpointFailed,
    CheckpointTaken,
    ExecutionCompleted,
    ExecutionStarted,
    FailureInjected,
    RecoveryCompleted,
    ReplicaAbsorbed,
    RestartStarted,
)
from repro.obs.sinks import TimelineSink
from repro.resilience.base import CheckpointLevel, ExecutionPlan
from repro.sim.engine import Simulator
from repro.sim.errors import Interrupt
from repro.sim.resources import SlotPool

#: ActivitySpan activity -> the ExecutionStats field it accumulates to.
_ACTIVITY_FIELD = {
    "work": "work_time_s",
    "recovery": "rework_time_s",
    "checkpoint": "checkpoint_time_s",
    "restart": "restart_time_s",
    "wait": "resource_wait_s",
}


@dataclass
class ExecutionStats:
    """Observable outcome of one resilient execution.

    The fields are derived entirely from the instrumentation-bus event
    stream: :meth:`listen` subscribes the instance (keyed to its
    application's id) and every counter/accumulator below is updated by
    an event handler.  The engine publishes events; it never mutates
    stats directly.
    """

    plan: ExecutionPlan
    start_time: float = 0.0
    end_time: float = math.nan
    completed: bool = False
    failures: int = 0
    restarts: int = 0
    replica_failures_absorbed: int = 0
    checkpoints_taken: Dict[int, int] = field(default_factory=dict)
    failed_checkpoints: int = 0
    #: Wall seconds by activity (work excludes rework).
    work_time_s: float = 0.0
    rework_time_s: float = 0.0
    checkpoint_time_s: float = 0.0
    restart_time_s: float = 0.0
    #: Wall seconds queued for shared resources (PFS contention; zero
    #: under the paper's isolated-application model).
    resource_wait_s: float = 0.0

    @property
    def elapsed_s(self) -> float:
        """Total wall time from start to completion (or interruption)."""
        return self.end_time - self.start_time

    @property
    def total_checkpoints(self) -> int:
        """Committed checkpoints across all levels."""
        return sum(self.checkpoints_taken.values())

    @property
    def overhead_s(self) -> float:
        """Wall time beyond the plan's failure-free effective work."""
        return self.elapsed_s - self.plan.effective_work_s

    def efficiency(self) -> float:
        """Paper metric: baseline time over actual time.  Note the
        numerator is the *uninflated* baseline T_B, so message-logging
        and redundancy slowdowns count as inefficiency (Sec. V)."""
        if not self.elapsed_s > 0:
            return 0.0
        return self.plan.app.baseline_time / self.elapsed_s

    # -- bus subscription ---------------------------------------------------

    def listen(self, bus: EventBus) -> None:
        """Subscribe this instance to *bus*, keyed to its application
        id, so the stats accumulate from the event stream."""
        app_id = self.plan.app.app_id
        bus.subscribe_key(ExecutionStarted, app_id, self._on_started)
        bus.subscribe_key(ExecutionCompleted, app_id, self._on_completed)
        bus.subscribe_key(FailureInjected, app_id, self._on_failure_injected)
        bus.subscribe_key(ReplicaAbsorbed, app_id, self._on_replica_absorbed)
        bus.subscribe_key(RestartStarted, app_id, self._on_restart_started)
        bus.subscribe_key(CheckpointTaken, app_id, self._on_checkpoint_taken)
        bus.subscribe_key(CheckpointFailed, app_id, self._on_checkpoint_failed)
        bus.subscribe_key(ActivitySpan, app_id, self._on_span)

    def _on_started(self, event: ExecutionStarted) -> None:
        self.start_time = event.time

    def _on_completed(self, event: ExecutionCompleted) -> None:
        self.completed = True
        self.end_time = event.time

    def _on_failure_injected(self, event: FailureInjected) -> None:
        self.failures += 1

    def _on_replica_absorbed(self, event: ReplicaAbsorbed) -> None:
        self.replica_failures_absorbed += 1

    def _on_restart_started(self, event: RestartStarted) -> None:
        if not event.retry:
            self.restarts += 1

    def _on_checkpoint_taken(self, event: CheckpointTaken) -> None:
        counts = self.checkpoints_taken
        counts[event.level_index] = counts.get(event.level_index, 0) + 1

    def _on_checkpoint_failed(self, event: CheckpointFailed) -> None:
        self.failed_checkpoints += 1

    def _on_span(self, event: ActivitySpan) -> None:
        name = _ACTIVITY_FIELD[event.activity]
        setattr(self, name, getattr(self, name) + (event.end - event.start))


class ResilientExecution:
    """Executes one plan as a DES process.

    Usage::

        engine = ResilientExecution(sim, plan)
        proc = sim.process(engine.run(), name="app-0")
        # deliver failures with proc.interrupt(failure)
        sim.run()
        stats = engine.stats

    With ``record_timeline=True`` the engine additionally collects
    ``(start, end, activity)`` spans consumable by
    :func:`repro.core.timeline.render_timeline` (a
    :class:`repro.obs.sinks.TimelineSink` attached to the simulator's
    bus; ``engine.timeline`` aliases its span list).
    """

    #: Float slop when mapping positions to boundary indices.
    _EPS = 1e-9

    def __init__(
        self,
        sim: Simulator,
        plan: ExecutionPlan,
        record_timeline: bool = False,
        resources: Optional[Dict[str, "SlotPool"]] = None,
    ) -> None:
        self._sim = sim
        self.plan = plan
        self._resources = resources or {}
        #: The simulator's shared bus (external sinks subscribe here).
        self._bus = sim.bus
        #: Engine-local bus: this execution's own stats and timeline
        #: subscribe here, so two engines that happen to share an
        #: ``app_id`` on one simulator never cross-feed each other.
        self._local_bus = EventBus()
        self._app_id = plan.app.app_id
        self._technique = plan.technique
        self.stats = ExecutionStats(plan=plan)
        self.stats.listen(self._local_bus)
        self._done = 0.0
        self._furthest = 0.0
        #: Newest checkpointed work position per level index.
        self._saved: Dict[int, float] = {lvl.index: 0.0 for lvl in plan.levels}
        #: Replicated virtual nodes currently running on one replica.
        self._degraded: Set[int] = set()
        #: In-flight semi-blocking checkpoint: (level_index, work
        #: position, commit time); committed lazily once due.
        self._pending_commit: Optional[tuple] = None
        #: Optional (start, end, activity) spans for visualization.
        self.timeline: list = []
        if record_timeline:
            sink = TimelineSink(app_id=self._app_id)
            sink.attach(self._local_bus)
            self.timeline = sink.spans

    def _publish(self, event) -> None:
        """Publish *event* on the engine-local bus (stats, timeline)
        and mirror it on the simulator's shared bus (external sinks)."""
        self._local_bus.publish(event)
        self._bus.publish(event)

    # -- observability -------------------------------------------------------

    @property
    def work_position(self) -> float:
        """Current position in effective-work space, seconds."""
        return self._done

    @property
    def progress(self) -> float:
        """Fraction of effective work committed, in [0, 1]."""
        return min(1.0, self._done / self.plan.effective_work_s)

    @property
    def degraded_virtual_nodes(self) -> int:
        """Replicated virtual nodes currently running on one replica."""
        return len(self._degraded)

    # -- process body -----------------------------------------------------------

    def run(self) -> Generator:
        """Process generator: run the application to completion."""
        plan = self.plan
        total = plan.effective_work_s
        base = plan.base_period_s
        self._publish(
            ExecutionStarted(
                time=self._sim.now, app_id=self._app_id, technique=self._technique
            )
        )
        while self._done < total - self._EPS:
            boundary = int(self._done / base + self._EPS) + 1
            target = min(boundary * base, total)
            reached = yield from self._work_to(target)
            if not reached:
                continue  # failure handled; position rolled back
            if self._done >= total - self._EPS:
                break
            level = plan.boundary_level(boundary)
            yield from self._checkpoint(level)
        self._publish(
            ExecutionCompleted(
                time=self._sim.now, app_id=self._app_id, technique=self._technique
            )
        )
        return self.stats

    # -- internals -----------------------------------------------------------

    def _work_to(self, target: float) -> Generator:
        """Advance work to *target*; False if a failure intervened."""
        while self._done < target - self._EPS:
            if self._done < self._furthest - self._EPS:
                segment_end = min(self._furthest, target)
                speed = self.plan.recovery_speedup
                recovering = True
            else:
                segment_end = target
                speed = 1.0
                recovering = False
            duration = (segment_end - self._done) / speed
            started = self._sim.now
            kind = "recovery" if recovering else "work"
            try:
                yield self._sim.timeout(duration)
            except Interrupt as interrupt:
                elapsed = self._sim.now - started
                self._advance(elapsed, speed)
                self._note(kind, started, self._sim.now)
                yield from self._on_failure(interrupt.cause)
                return False
            self._advance(duration, speed)
            self._note(kind, started, self._sim.now)
        return True

    def _advance(self, wall_s: float, speed: float) -> None:
        self._done = min(
            self.plan.effective_work_s, self._done + wall_s * speed
        )
        self._furthest = max(self._furthest, self._done)

    def _checkpoint(self, level: CheckpointLevel) -> Generator:
        """Take a checkpoint at *level*; on failure the in-progress
        checkpoint is discarded.

        With ``blocking_fraction < 1`` only the blocking portion stalls
        execution; the checkpoint commits once its full cost has
        elapsed in the background (or is voided by an earlier failure
        or by the next checkpoint starting first)."""
        self._settle_pending_commit()
        try:
            ticket = yield from self._acquire(level)
        except Interrupt as interrupt:
            self._checkpoint_failed(level.index)
            yield from self._on_failure(interrupt.cause)
            return False
        blocking = level.cost_s * level.blocking_fraction
        started = self._sim.now
        try:
            yield self._sim.timeout(blocking)
        except Interrupt as interrupt:
            if ticket is not None:
                ticket.release()
            self._note("checkpoint", started, self._sim.now)
            self._checkpoint_failed(level.index)
            yield from self._on_failure(interrupt.cause)
            return False
        if ticket is not None:
            ticket.release()
        self._note("checkpoint", started, self._sim.now)
        if level.blocking_fraction >= 1.0:
            self._commit(level.index, self._done)
        else:
            remainder = level.cost_s - blocking
            self._pending_commit = (
                level.index,
                self._done,
                self._sim.now + remainder,
            )
        return True

    def _commit(self, level_index: int, work: float) -> None:
        self._saved[level_index] = work
        self._degraded.clear()  # checkpoints repair failed replicas
        self._publish(
            CheckpointTaken(
                time=self._sim.now,
                app_id=self._app_id,
                technique=self._technique,
                level_index=level_index,
                position=work,
            )
        )

    def _checkpoint_failed(self, level_index: int) -> None:
        self._publish(
            CheckpointFailed(
                time=self._sim.now,
                app_id=self._app_id,
                technique=self._technique,
                level_index=level_index,
            )
        )

    def _settle_pending_commit(self) -> None:
        """Apply an in-flight semi-blocking checkpoint if its full cost
        has elapsed; otherwise void it (a failure arrived first, or the
        next checkpoint superseded it)."""
        if self._pending_commit is None:
            return
        level_index, work, commit_time = self._pending_commit
        self._pending_commit = None
        if commit_time <= self._sim.now + self._EPS:
            self._commit(level_index, work)
        else:
            self._checkpoint_failed(level_index)

    def _absorbed_by_replica(self, failure: Failure) -> bool:
        """Redundancy rule: True when live replicas keep every struck
        virtual node running (no interruption).

        Handles burst failures (``failure.width > 1``): the burst
        strikes contiguous physical nodes, so it can take out both
        (adjacent) replicas of a virtual node at once — the spatial-
        correlation hazard of contiguous partner placement."""
        replicas = self.plan.replicas
        if replicas is None:
            return False
        start = failure.node_id % replicas.physical_nodes
        stop = min(start + failure.width, replicas.physical_nodes)
        hits: Dict[int, int] = {}
        for phys in range(start, stop):
            virtual = replicas.virtual_of_physical(phys)
            hits[virtual] = hits.get(virtual, 0) + 1
        for virtual, struck in hits.items():
            total = replicas.replicas_of(virtual)
            already_dead = 1 if (total == 2 and virtual in self._degraded) else 0
            if already_dead + struck >= total:
                return False  # some virtual node lost all replicas
        for virtual in hits:
            if replicas.replicas_of(virtual) == 2:
                self._degraded.add(virtual)
        self._publish(
            ReplicaAbsorbed(
                time=self._sim.now,
                app_id=self._app_id,
                technique=self._technique,
                degraded_virtual_nodes=len(self._degraded),
            )
        )
        return True

    def _failure_injected(self, failure: Optional[Failure], severity: int) -> None:
        """Publish the delivery of one failure interrupt.  *severity*
        covers interrupts whose cause carries no failure object."""
        if failure is not None:
            self._publish(
                FailureInjected(
                    time=self._sim.now,
                    app_id=self._app_id,
                    node_id=failure.node_id,
                    severity=failure.severity,
                    width=failure.width,
                )
            )
        else:
            self._publish(
                FailureInjected(
                    time=self._sim.now,
                    app_id=self._app_id,
                    node_id=-1,
                    severity=severity,
                )
            )

    def _on_failure(self, failure: Failure) -> Generator:
        """Handle one delivered failure: maybe absorb, else restart."""
        self._failure_injected(failure, failure.severity if failure else 0)
        self._settle_pending_commit()
        if self._absorbed_by_replica(failure):
            return
        severity = failure.severity
        retry = False
        while True:
            level = self._restore_level(severity)
            self._publish(
                RestartStarted(
                    time=self._sim.now,
                    app_id=self._app_id,
                    technique=self._technique,
                    severity=severity,
                    level_index=level.index,
                    retry=retry,
                )
            )
            try:
                ticket = yield from self._acquire(level)
            except Interrupt as interrupt:
                cause = interrupt.cause
                self._failure_injected(cause, severity)
                severity = max(severity, cause.severity if cause else severity)
                retry = True
                continue
            started = self._sim.now
            try:
                yield self._sim.timeout(level.restart_s)
            except Interrupt as interrupt:
                # Failure during restart: restart the restart, from the
                # worst severity seen (replicas are all mid-restore, so
                # no absorption applies here).
                if ticket is not None:
                    ticket.release()
                self._note("restart", started, self._sim.now)
                cause = interrupt.cause
                self._failure_injected(cause, severity)
                severity = max(severity, cause.severity if cause else severity)
                retry = True
                continue
            if ticket is not None:
                ticket.release()
            self._note("restart", started, self._sim.now)
            break
        self._publish(
            RecoveryCompleted(
                time=self._sim.now,
                app_id=self._app_id,
                technique=self._technique,
                level_index=level.index,
                position=self._saved[level.index],
            )
        )
        self._degraded.clear()
        self._done = self._saved[level.index]

    def _acquire(self, level: CheckpointLevel) -> Generator:
        """Queue for the level's shared resource, if any.

        Returns a held ticket (or None when uncontended); propagates
        interrupts after abandoning the request.
        """
        pool = (
            self._resources.get(level.shared_resource)
            if level.shared_resource is not None
            else None
        )
        if pool is None:
            return None
        ticket = pool.request()
        started = self._sim.now
        try:
            yield from ticket.wait()
        except Interrupt:
            ticket.abandon()
            self._note("wait", started, self._sim.now)
            raise
        self._note("wait", started, self._sim.now)
        return ticket

    def _note(self, activity: str, start: float, end: float) -> None:
        """Publish the closed activity span (zero-length spans are
        skipped; they carry no time)."""
        if end > start:
            self._publish(
                ActivitySpan(
                    time=end,
                    app_id=self._app_id,
                    technique=self._technique,
                    activity=activity,
                    start=start,
                    end=end,
                )
            )

    def _restore_level(self, severity: int) -> CheckpointLevel:
        """The level holding the newest state recoverable at *severity*
        (ties favour the cheaper restart)."""
        usable = self.plan.recovery_levels(severity)
        return max(usable, key=lambda lvl: (self._saved[lvl.index], -lvl.restart_s))
