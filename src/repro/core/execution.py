"""The generic resilient-execution engine.

One process class executes *any* :class:`repro.resilience.ExecutionPlan`
on the DES: it advances work between checkpoint boundaries, takes the
scheduled checkpoint level at each boundary, and reacts to failure
interrupts with the technique-appropriate restart/recovery behaviour.
All four techniques reduce to plan parameters:

- work positions live in *effective-work* space (baseline inflated by
  the plan's ``work_rate`` — Eqs. 7/8), so one wall second of normal
  execution advances the position by one second;
- checkpoint boundaries sit at multiples of the base period; the level
  taken at boundary *i* is the highest whose multiplier divides *i*;
- a severity-s failure rolls the position back to the newest checkpoint
  among levels that recover severity >= s and pays that level's restart
  cost (restart is itself interruptible by further failures);
- while the position is behind the furthest point ever reached, the
  engine is *recovering* and advances ``recovery_speedup`` times faster
  (Parallel Recovery's parallelized re-execution; 1x for the others);
- with a replica plan, a failure that leaves the struck virtual node
  with a live replica is absorbed without interruption; checkpoints and
  restarts repair all failed replicas (Sec. IV-E restart rule).

Failures are delivered as :class:`repro.sim.Interrupt` whose cause is a
:class:`repro.failures.Failure` with ``node_id`` *relative to the
application's physical allocation* (in ``[0, nodes_required)``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Generator, Optional, Set

from repro.failures.generator import Failure
from repro.resilience.base import CheckpointLevel, ExecutionPlan
from repro.sim.engine import Simulator
from repro.sim.errors import Interrupt
from repro.sim.resources import SlotPool


@dataclass
class ExecutionStats:
    """Observable outcome of one resilient execution."""

    plan: ExecutionPlan
    start_time: float = 0.0
    end_time: float = math.nan
    completed: bool = False
    failures: int = 0
    restarts: int = 0
    replica_failures_absorbed: int = 0
    checkpoints_taken: Dict[int, int] = field(default_factory=dict)
    failed_checkpoints: int = 0
    #: Wall seconds by activity (work excludes rework).
    work_time_s: float = 0.0
    rework_time_s: float = 0.0
    checkpoint_time_s: float = 0.0
    restart_time_s: float = 0.0
    #: Wall seconds queued for shared resources (PFS contention; zero
    #: under the paper's isolated-application model).
    resource_wait_s: float = 0.0

    @property
    def elapsed_s(self) -> float:
        """Total wall time from start to completion (or interruption)."""
        return self.end_time - self.start_time

    @property
    def total_checkpoints(self) -> int:
        """Committed checkpoints across all levels."""
        return sum(self.checkpoints_taken.values())

    @property
    def overhead_s(self) -> float:
        """Wall time beyond the plan's failure-free effective work."""
        return self.elapsed_s - self.plan.effective_work_s

    def efficiency(self) -> float:
        """Paper metric: baseline time over actual time.  Note the
        numerator is the *uninflated* baseline T_B, so message-logging
        and redundancy slowdowns count as inefficiency (Sec. V)."""
        if not self.elapsed_s > 0:
            return 0.0
        return self.plan.app.baseline_time / self.elapsed_s


class ResilientExecution:
    """Executes one plan as a DES process.

    Usage::

        engine = ResilientExecution(sim, plan)
        proc = sim.process(engine.run(), name="app-0")
        # deliver failures with proc.interrupt(failure)
        sim.run()
        stats = engine.stats

    With ``record_timeline=True`` the engine additionally collects
    ``(start, end, activity)`` spans consumable by
    :func:`repro.core.timeline.render_timeline`.
    """

    #: Float slop when mapping positions to boundary indices.
    _EPS = 1e-9

    def __init__(
        self,
        sim: Simulator,
        plan: ExecutionPlan,
        record_timeline: bool = False,
        resources: Optional[Dict[str, "SlotPool"]] = None,
    ) -> None:
        self._sim = sim
        self.plan = plan
        self._resources = resources or {}
        self.stats = ExecutionStats(plan=plan)
        self._done = 0.0
        self._furthest = 0.0
        #: Newest checkpointed work position per level index.
        self._saved: Dict[int, float] = {lvl.index: 0.0 for lvl in plan.levels}
        #: Replicated virtual nodes currently running on one replica.
        self._degraded: Set[int] = set()
        #: In-flight semi-blocking checkpoint: (level_index, work
        #: position, commit time); committed lazily once due.
        self._pending_commit: Optional[tuple] = None
        #: Optional (start, end, activity) spans for visualization.
        self.timeline: list = []
        self._record_timeline = record_timeline

    # -- observability -------------------------------------------------------

    @property
    def work_position(self) -> float:
        """Current position in effective-work space, seconds."""
        return self._done

    @property
    def progress(self) -> float:
        """Fraction of effective work committed, in [0, 1]."""
        return min(1.0, self._done / self.plan.effective_work_s)

    @property
    def degraded_virtual_nodes(self) -> int:
        """Replicated virtual nodes currently running on one replica."""
        return len(self._degraded)

    # -- process body -----------------------------------------------------------

    def run(self) -> Generator:
        """Process generator: run the application to completion."""
        plan = self.plan
        total = plan.effective_work_s
        base = plan.base_period_s
        self.stats.start_time = self._sim.now
        while self._done < total - self._EPS:
            boundary = int(self._done / base + self._EPS) + 1
            target = min(boundary * base, total)
            reached = yield from self._work_to(target)
            if not reached:
                continue  # failure handled; position rolled back
            if self._done >= total - self._EPS:
                break
            level = plan.boundary_level(boundary)
            yield from self._checkpoint(level)
        self.stats.completed = True
        self.stats.end_time = self._sim.now
        return self.stats

    # -- internals -----------------------------------------------------------

    def _work_to(self, target: float) -> Generator:
        """Advance work to *target*; False if a failure intervened."""
        while self._done < target - self._EPS:
            if self._done < self._furthest - self._EPS:
                segment_end = min(self._furthest, target)
                speed = self.plan.recovery_speedup
                recovering = True
            else:
                segment_end = target
                speed = 1.0
                recovering = False
            duration = (segment_end - self._done) / speed
            started = self._sim.now
            kind = "recovery" if recovering else "work"
            try:
                yield self._sim.timeout(duration)
            except Interrupt as interrupt:
                elapsed = self._sim.now - started
                self._advance(elapsed, speed, recovering)
                self._note(kind, started, self._sim.now)
                yield from self._on_failure(interrupt.cause)
                return False
            self._advance(duration, speed, recovering)
            self._note(kind, started, self._sim.now)
        return True

    def _advance(self, wall_s: float, speed: float, recovering: bool) -> None:
        self._done = min(
            self.plan.effective_work_s, self._done + wall_s * speed
        )
        self._furthest = max(self._furthest, self._done)
        if recovering:
            self.stats.rework_time_s += wall_s
        else:
            self.stats.work_time_s += wall_s

    def _checkpoint(self, level: CheckpointLevel) -> Generator:
        """Take a checkpoint at *level*; on failure the in-progress
        checkpoint is discarded.

        With ``blocking_fraction < 1`` only the blocking portion stalls
        execution; the checkpoint commits once its full cost has
        elapsed in the background (or is voided by an earlier failure
        or by the next checkpoint starting first)."""
        self._settle_pending_commit()
        try:
            ticket = yield from self._acquire(level)
        except Interrupt as interrupt:
            self.stats.failed_checkpoints += 1
            yield from self._on_failure(interrupt.cause)
            return False
        blocking = level.cost_s * level.blocking_fraction
        started = self._sim.now
        try:
            yield self._sim.timeout(blocking)
        except Interrupt as interrupt:
            if ticket is not None:
                ticket.release()
            self.stats.checkpoint_time_s += self._sim.now - started
            self.stats.failed_checkpoints += 1
            yield from self._on_failure(interrupt.cause)
            return False
        if ticket is not None:
            ticket.release()
        self.stats.checkpoint_time_s += blocking
        self._note("checkpoint", started, self._sim.now)
        if level.blocking_fraction >= 1.0:
            self._commit(level.index, self._done)
        else:
            remainder = level.cost_s - blocking
            self._pending_commit = (
                level.index,
                self._done,
                self._sim.now + remainder,
            )
        return True

    def _commit(self, level_index: int, work: float) -> None:
        self._saved[level_index] = work
        self._degraded.clear()  # checkpoints repair failed replicas
        counts = self.stats.checkpoints_taken
        counts[level_index] = counts.get(level_index, 0) + 1

    def _settle_pending_commit(self) -> None:
        """Apply an in-flight semi-blocking checkpoint if its full cost
        has elapsed; otherwise void it (a failure arrived first, or the
        next checkpoint superseded it)."""
        if self._pending_commit is None:
            return
        level_index, work, commit_time = self._pending_commit
        self._pending_commit = None
        if commit_time <= self._sim.now + self._EPS:
            self._commit(level_index, work)
        else:
            self.stats.failed_checkpoints += 1

    def _absorbed_by_replica(self, failure: Failure) -> bool:
        """Redundancy rule: True when live replicas keep every struck
        virtual node running (no interruption).

        Handles burst failures (``failure.width > 1``): the burst
        strikes contiguous physical nodes, so it can take out both
        (adjacent) replicas of a virtual node at once — the spatial-
        correlation hazard of contiguous partner placement."""
        replicas = self.plan.replicas
        if replicas is None:
            return False
        start = failure.node_id % replicas.physical_nodes
        stop = min(start + failure.width, replicas.physical_nodes)
        hits: Dict[int, int] = {}
        for phys in range(start, stop):
            virtual = replicas.virtual_of_physical(phys)
            hits[virtual] = hits.get(virtual, 0) + 1
        for virtual, struck in hits.items():
            total = replicas.replicas_of(virtual)
            already_dead = 1 if (total == 2 and virtual in self._degraded) else 0
            if already_dead + struck >= total:
                return False  # some virtual node lost all replicas
        for virtual in hits:
            if replicas.replicas_of(virtual) == 2:
                self._degraded.add(virtual)
        self.stats.replica_failures_absorbed += 1
        return True

    def _on_failure(self, failure: Failure) -> Generator:
        """Handle one delivered failure: maybe absorb, else restart."""
        self.stats.failures += 1
        self._settle_pending_commit()
        if self._absorbed_by_replica(failure):
            return
        self.stats.restarts += 1
        severity = failure.severity
        while True:
            level = self._restore_level(severity)
            try:
                ticket = yield from self._acquire(level)
            except Interrupt as interrupt:
                self.stats.failures += 1
                cause = interrupt.cause
                severity = max(severity, cause.severity if cause else severity)
                continue
            started = self._sim.now
            try:
                yield self._sim.timeout(level.restart_s)
            except Interrupt as interrupt:
                # Failure during restart: restart the restart, from the
                # worst severity seen (replicas are all mid-restore, so
                # no absorption applies here).
                if ticket is not None:
                    ticket.release()
                self.stats.restart_time_s += self._sim.now - started
                self._note("restart", started, self._sim.now)
                self.stats.failures += 1
                cause = interrupt.cause
                severity = max(severity, cause.severity if cause else severity)
                continue
            if ticket is not None:
                ticket.release()
            self.stats.restart_time_s += level.restart_s
            self._note("restart", started, self._sim.now)
            break
        self._degraded.clear()
        self._done = self._saved[level.index]

    def _acquire(self, level: CheckpointLevel) -> Generator:
        """Queue for the level's shared resource, if any.

        Returns a held ticket (or None when uncontended); propagates
        interrupts after abandoning the request.
        """
        pool = (
            self._resources.get(level.shared_resource)
            if level.shared_resource is not None
            else None
        )
        if pool is None:
            return None
        ticket = pool.request()
        started = self._sim.now
        try:
            yield from ticket.wait()
        except Interrupt:
            ticket.abandon()
            self.stats.resource_wait_s += self._sim.now - started
            self._note("wait", started, self._sim.now)
            raise
        self.stats.resource_wait_s += self._sim.now - started
        self._note("wait", started, self._sim.now)
        return ticket

    def _note(self, activity: str, start: float, end: float) -> None:
        if self._record_timeline and end > start:
            self.timeline.append((start, end, activity))

    def _restore_level(self, severity: int) -> CheckpointLevel:
        """The level holding the newest state recoverable at *severity*
        (ties favour the cheaper restart)."""
        usable = self.plan.recovery_levels(severity)
        return max(usable, key=lambda lvl: (self._saved[lvl.index], -lvl.restart_s))
