"""Single-application simulation (the Sec. V studies).

Simulates one application executing alone on its allocation under one
resilience technique, with failures striking its physical nodes at the
application failure rate ``lambda_a = nodes_required / M_n``.  This is
the workhorse behind Figs. 1-3: each bar is the mean efficiency over
``trials`` independent replications.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional, Sequence

import numpy as np

from repro.constants import DEFAULT_NODE_MTBF_S
from repro.core.execution import ExecutionStats, ResilientExecution
from repro.failures.burst import BurstModel
from repro.failures.generator import AppFailureGenerator, InterarrivalModel
from repro.failures.severity import SeverityModel
from repro.obs import live
from repro.obs.counters import counter_value, global_bus
from repro.obs.events import TrialFinished, TrialStarted
from repro.obs.sinks import Sink
from repro.platform.system import HPCSystem
from repro.resilience.base import ExecutionPlan, ResilienceTechnique
from repro.rng.streams import StreamFactory
from repro.sim.engine import Simulator
from repro.sim.process import Process
from repro.workload.application import Application


@dataclass(frozen=True)
class SingleAppConfig:
    """Environment for a Sec. V-style run.

    Attributes
    ----------
    node_mtbf_s:
        Per-node MTBF (10 years in Figs. 1-2; 2.5 years in Fig. 3).
    severity_pmf:
        Optional override of the failure-severity PMF.
    max_time_factor:
        Walltime cap as a multiple of the (inflated) failure-free
        execution time; runs that thrash past the cap are reported
        uncompleted with the cap as their elapsed time, which drives
        their efficiency toward zero — the paper's Fig. 3 Checkpoint
        Restart behaviour ("unable to even complete execution").
    seed:
        Root seed; trial *i* derives an independent child stream.
    burst:
        Optional spatially-correlated failure model (extension; the
        paper's independent single-node failures when None).
    interarrival:
        Optional failure-interarrival regime (see
        :mod:`repro.failures.generator`).  None keeps the paper's
        Poisson process bit-identically; a Weibull/lognormal model
        reshapes the renewal gaps at the same mean rate.  Non-
        memoryless regimes invalidate the first-order analytic model —
        :func:`repro.analysis.validation.analytic_inapplicability`
        reports why.
    stream_key:
        When None (the default, and what every figure uses), trial *i*
        draws the same failure realisation in every cell — the paper's
        common-random-numbers discipline that lets techniques be
        compared pairwise.  Setting a per-cell key derives seeds unique
        to each (cell, trial) pair instead, making replications fully
        independent across cells.
    """

    node_mtbf_s: float = DEFAULT_NODE_MTBF_S
    severity_pmf: Optional[tuple] = None
    max_time_factor: float = 20.0
    seed: int = 2017
    burst: Optional["BurstModel"] = None
    interarrival: Optional[InterarrivalModel] = None
    stream_key: Optional[str] = None

    def __post_init__(self) -> None:
        if self.node_mtbf_s <= 0:
            raise ValueError(f"node_mtbf_s must be > 0, got {self.node_mtbf_s}")
        if self.max_time_factor <= 1:
            raise ValueError(
                f"max_time_factor must be > 1, got {self.max_time_factor}"
            )

    def severity_model(self) -> SeverityModel:
        """The configured severity model (default when pmf is None)."""
        if self.severity_pmf is None:
            return SeverityModel.default()
        return SeverityModel.from_probabilities(self.severity_pmf)


def simulation_call_count() -> int:
    """Number of single-app simulations run on this process's behalf.

    Derived from the process-global instrumentation counters (each
    :func:`simulate_application` publishes a
    :class:`~repro.obs.events.TrialStarted`); the parallel executor
    merges worker-side counts back, so a warm-cache rerun provably
    performs zero simulation work even across worker processes."""
    return counter_value("single_app.simulations")


def failure_driver(
    sim: Simulator, target: Process, generator: AppFailureGenerator
) -> Generator:
    """Process that interrupts *target* with each generated failure."""
    while True:
        gap = generator.next_interarrival()
        yield sim.timeout(gap)
        if not target.alive:
            return
        target.interrupt(generator.failure_at(sim.now))


class FailureDriver:
    """:func:`failure_driver` plus a queryable next-failure horizon.

    Drives exactly the same process body (same RNG draw order, same
    kernel event sequence) but records the absolute wake time of the
    pending gap, which :meth:`next_fire_time` exposes for the execution
    engine's closed-form fast path.  The horizon is updated
    synchronously right after each interrupt is issued — before the
    driver re-yields — so the engine's failure handler already sees the
    next horizon when it resumes.
    """

    def __init__(
        self, sim: Simulator, target: Process, generator: AppFailureGenerator
    ) -> None:
        self._sim = sim
        self._target = target
        self._generator = generator
        # Draw the first gap eagerly so the horizon is known before the
        # engine's first fast-path check; the driver process then yields
        # this pre-drawn gap, keeping the draw order of failure_driver().
        self._next_gap = generator.next_interarrival()
        self._next_fire = sim.now + self._next_gap
        self.process = sim.process(self._run(), name="failures")

    def next_fire_time(self) -> Optional[float]:
        """Absolute simulated time of the next failure interrupt."""
        return self._next_fire

    def _run(self) -> Generator:
        sim = self._sim
        generator = self._generator
        while True:
            yield sim.timeout(self._next_gap)
            if not self._target.alive:
                self._next_fire = None
                return
            self._target.interrupt(generator.failure_at(sim.now))
            self._next_gap = generator.next_interarrival()
            self._next_fire = sim.now + self._next_gap


def simulate_application(
    app: Application,
    technique: ResilienceTechnique,
    system: HPCSystem,
    config: Optional[SingleAppConfig] = None,
    trial: int = 0,
    sinks: Optional[Sequence[Sink]] = None,
    plan: Optional[ExecutionPlan] = None,
) -> ExecutionStats:
    """Run one trial; returns the execution stats.

    *sinks* are attached to the simulation's instrumentation bus before
    the run (instrumentation is passive: any sink configuration,
    including none, produces bit-identical stats).

    *plan* short-circuits technique planning: callers running many
    trials of one configuration (:func:`run_trials`) compute the plan
    once and pass it in.  Planning is a pure function of
    ``(app, system, config)`` and the plan is immutable, so a hoisted
    plan is indistinguishable from a per-trial one.

    Raises :class:`ValueError` when the technique cannot fit the
    application on the system at all (the redundancy wall of Sec. V) —
    callers that want "zero efficiency" semantics should check
    ``technique.fits(app, system)`` first (as
    :func:`run_trials` does).
    """
    config = config or SingleAppConfig()
    if plan is None:
        plan = technique.plan(
            app, system, config.node_mtbf_s, severity=config.severity_model()
        )
    if config.stream_key is None:
        streams = StreamFactory(config.seed).spawn_indexed(trial)
    else:
        streams = StreamFactory(config.seed).for_trial(config.stream_key, trial)
    failure_rng = streams.stream("failures")

    sim = Simulator()
    if sinks:
        for sink in sinks:
            sink.attach(sim.bus)
    # Thread-locally activated live sinks (the telemetry feed of a
    # watched service job); a no-op when nothing is activated, so
    # unwatched trials keep the unobserved fast path.
    live.attach_current(sim.bus)
    started = TrialStarted(
        time=0.0,
        scope="single_app",
        app_id=app.app_id,
        technique=technique.name,
        trial=trial,
    )
    global_bus().publish(started)
    sim.bus.publish(started)
    cap = config.max_time_factor * plan.effective_work_s
    engine = ResilientExecution(sim, plan, until=cap)
    proc = sim.process(engine.run(), name=f"app-{app.app_id}")
    generator = AppFailureGenerator(
        failure_rng,
        nodes=plan.nodes_required,
        node_mtbf_s=config.node_mtbf_s,
        severity=config.severity_model(),
        burst=config.burst,
        interarrival=config.interarrival,
    )
    driver = FailureDriver(sim, proc, generator)
    engine.set_failure_horizon(driver.next_fire_time)

    sim.run(until=cap)
    if not engine.stats.completed:
        engine.stats.end_time = cap
    finished = TrialFinished(
        time=sim.now,
        scope="single_app",
        app_id=app.app_id,
        technique=technique.name,
        trial=trial,
        completed=engine.stats.completed,
    )
    sim.bus.publish(finished)
    global_bus().publish(finished)
    return engine.stats


@dataclass
class TrialSet:
    """Efficiencies of repeated trials of one configuration."""

    app: Application
    technique_name: str
    efficiencies: List[float] = field(default_factory=list)
    stats: List[ExecutionStats] = field(default_factory=list)
    #: True when the technique could not fit on the machine (redundancy
    #: above its size wall): efficiency is defined as zero.
    infeasible: bool = False

    @property
    def mean_efficiency(self) -> float:
        """Mean efficiency over trials (0 when infeasible)."""
        if self.infeasible or not self.efficiencies:
            return 0.0
        return float(np.mean(self.efficiencies))

    @property
    def std_efficiency(self) -> float:
        """Sample standard deviation of the trial efficiencies."""
        if self.infeasible or len(self.efficiencies) < 2:
            return 0.0
        return float(np.std(self.efficiencies, ddof=1))


def run_trials(
    app: Application,
    technique: ResilienceTechnique,
    system: HPCSystem,
    trials: int,
    config: Optional[SingleAppConfig] = None,
    keep_stats: bool = False,
    sinks: Optional[Sequence[Sink]] = None,
    first_trial: int = 0,
) -> TrialSet:
    """Run *trials* independent replications (a Fig. 1-3 bar).

    *sinks* are attached to every trial's bus in turn, so one sink
    accumulates the cell's whole event stream in trial order.

    *first_trial* offsets the trial indices that seed each replication:
    trial ``i`` of a cell is a pure function of ``(seed, i)``, so
    running trials ``[k, k + trials)`` reproduces exactly that slice of
    an exhaustive run — the adaptive campaign controller uses this to
    submit a cell's trial budget in batches whose concatenation is
    byte-identical to a single full run.

    When the technique cannot fit the application on the machine the
    result is marked infeasible with zero efficiency, matching the
    paper's treatment of redundancy at large application sizes.
    """
    if trials <= 0:
        raise ValueError(f"trials must be > 0, got {trials}")
    if first_trial < 0:
        raise ValueError(f"first_trial must be >= 0, got {first_trial}")
    result = TrialSet(app=app, technique_name=technique.name)
    if not technique.fits(app, system):
        result.infeasible = True
        return result
    effective = config or SingleAppConfig()
    plan = technique.plan(
        app, system, effective.node_mtbf_s, severity=effective.severity_model()
    )
    for trial in range(first_trial, first_trial + trials):
        stats = simulate_application(
            app, technique, system, config, trial=trial, sinks=sinks, plan=plan
        )
        result.efficiencies.append(stats.efficiency())
        if keep_stats:
            result.stats.append(stats)
    return result
