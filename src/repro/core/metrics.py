"""Performance metrics used by the paper's evaluation.

- **Efficiency** (Figs. 1-3): "the ratio of an application's time
  without slowdowns (from failures or checkpointing) over the
  application's execution time with slowdowns".
- **Dropped percentage** (Figs. 4-5): the share of applications removed
  because they could not meet their deadlines.
"""

from __future__ import annotations

from typing import Sequence


def efficiency(baseline_s: float, actual_s: float) -> float:
    """Baseline execution time over actual execution time, in [0, 1].

    Clamped at 0 for degenerate inputs and at 1 when ``actual_s``
    undercuts the baseline (a resilient execution cannot be *more*
    efficient than the failure-free baseline; float noise or a
    mis-measured baseline must not report super-unit efficiency)."""
    if baseline_s <= 0:
        raise ValueError(f"baseline_s must be > 0, got {baseline_s}")
    if actual_s <= 0:
        return 0.0
    return min(1.0, baseline_s / actual_s)


def dropped_percentage(dropped: int, total: int) -> float:
    """Percentage of applications dropped, in [0, 100]."""
    if total <= 0:
        raise ValueError(f"total must be > 0, got {total}")
    if not 0 <= dropped <= total:
        raise ValueError(f"dropped must be in 0..{total}, got {dropped}")
    return 100.0 * dropped / total


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (errors on empty input, unlike numpy's nan)."""
    if len(values) == 0:
        raise ValueError("mean of empty sequence")
    return float(sum(values)) / len(values)
