"""Resilience Selection (Sec. VII).

"In addition to deciding when and on what nodes an application will
execute, the system resource manager will also be given the opportunity
to intelligently select the resilience technique that is most likely to
provide the best performance for each application based on the results
from Section V."

We implement the selection oracle with the analytic efficiency model of
:mod:`repro.analysis.analytic` (which the DES validates against the
Sec. V results): for each arriving application the selector predicts
every candidate technique's efficiency at the application's size and
picks the argmax.  Techniques that do not fit on the machine (the
redundancy wall) are excluded automatically.
"""

from __future__ import annotations

from typing import Optional, Protocol, Sequence

from repro.analysis.analytic import predict_efficiency
from repro.failures.severity import SeverityModel
from repro.platform.system import HPCSystem
from repro.resilience.base import ResilienceTechnique
from repro.resilience.registry import datacenter_techniques
from repro.workload.application import Application


class TechniqueSelector(Protocol):
    """Strategy deciding which technique an application executes with."""

    name: str

    def select(self, app: Application, system: HPCSystem) -> ResilienceTechnique:
        """Technique to use for *app* on *system*."""
        ...


class FixedSelector:
    """Every application uses the same technique (Fig. 4 bars)."""

    def __init__(self, technique: ResilienceTechnique) -> None:
        self.technique = technique
        self.name = technique.name

    def select(self, app: Application, system: HPCSystem) -> ResilienceTechnique:
        """Always the configured technique."""
        return self.technique


class ResilienceSelection:
    """Per-application argmax-predicted-efficiency selection (Fig. 5).

    Parameters
    ----------
    candidates:
        Techniques to choose among; defaults to the datacenter trio
        (Checkpoint Restart, Multilevel, Parallel Recovery).
    node_mtbf_s:
        Failure environment the prediction assumes.
    """

    name = "selection"

    def __init__(
        self,
        node_mtbf_s: float,
        candidates: Optional[Sequence[ResilienceTechnique]] = None,
        severity: Optional[SeverityModel] = None,
    ) -> None:
        if node_mtbf_s <= 0:
            raise ValueError(f"node_mtbf_s must be > 0, got {node_mtbf_s}")
        self.node_mtbf_s = node_mtbf_s
        self.candidates = (
            list(candidates) if candidates is not None else datacenter_techniques()
        )
        if not self.candidates:
            raise ValueError("need at least one candidate technique")
        self.severity = severity if severity is not None else SeverityModel.default()
        #: How many times each technique was selected (observability).
        self.selection_counts: dict[str, int] = {}

    def select(self, app: Application, system: HPCSystem) -> ResilienceTechnique:
        """The feasible candidate with the highest predicted efficiency."""
        best: Optional[ResilienceTechnique] = None
        best_eff = -1.0
        for technique in self.candidates:
            if not technique.fits(app, system):
                continue
            plan = technique.plan(app, system, self.node_mtbf_s, self.severity)
            eff = predict_efficiency(plan, self.node_mtbf_s, self.severity)
            if eff > best_eff:
                best, best_eff = technique, eff
        if best is None:
            raise ValueError(
                f"no candidate technique fits app {app.app_id} "
                f"({app.nodes} nodes) on a {system.total_nodes}-node system"
            )
        self.selection_counts[best.name] = self.selection_counts.get(best.name, 0) + 1
        return best
