"""ASCII execution timelines.

Renders the ``(start, end, activity)`` spans collected by
:class:`repro.core.execution.ResilientExecution` (with
``record_timeline=True``) as a labelled text gantt — handy for
debugging resilience behaviour and for documentation.

::

    work       |####  ##   ####### ... |  83.1%
    recovery   |    #                  |   2.4%
    checkpoint |        #              |   1.1%
    restart    |     #                 |  13.4%
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

Span = Tuple[float, float, str]

#: Row order in the rendering.
ACTIVITIES = ("work", "recovery", "checkpoint", "restart", "wait")


def activity_totals(spans: Sequence[Span]) -> dict:
    """Total seconds per activity."""
    totals = {name: 0.0 for name in ACTIVITIES}
    for start, end, activity in spans:
        if activity not in totals:
            raise ValueError(f"unknown activity {activity!r}")
        if end < start:
            raise ValueError(f"inverted span ({start}, {end})")
        totals[activity] += end - start
    return totals


def render_timeline(spans: Sequence[Span], width: int = 72) -> str:
    """Render *spans* as one text row per activity.

    Each of the ``width`` columns covers an equal slice of the full
    duration; a column is marked when more than half of it is spent in
    that activity.
    """
    if width < 10:
        raise ValueError(f"width must be >= 10, got {width}")
    if not spans:
        return "(empty timeline)"
    t0 = min(s[0] for s in spans)
    t1 = max(s[1] for s in spans)
    duration = max(t1 - t0, 1e-12)
    column = duration / width

    rows: List[str] = []
    totals = activity_totals(spans)
    grand_total = sum(totals.values()) or 1.0
    for activity in ACTIVITIES:
        fill = [0.0] * width
        for start, end, kind in spans:
            if kind != activity:
                continue
            first = int((start - t0) / column)
            last = min(width - 1, int((end - t0 - 1e-12) / column))
            for i in range(first, last + 1):
                slice_start = t0 + i * column
                slice_end = slice_start + column
                overlap = min(end, slice_end) - max(start, slice_start)
                fill[i] += max(0.0, overlap)
        cells = "".join("#" if f > column / 2 else " " for f in fill)
        share = 100.0 * totals[activity] / grand_total
        rows.append(f"{activity:<10} |{cells}| {share:5.1f}%")
    header = (
        f"t = {t0:.0f} .. {t1:.0f} s "
        f"({(t1 - t0) / 3600:.2f} h, {len(spans)} spans)"
    )
    return "\n".join([header] + rows)
