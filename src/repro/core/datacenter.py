"""The oversubscribed-datacenter simulator (Sec. VI/VII).

Simulates an exascale machine over days-to-weeks of operation serving
one :class:`repro.workload.ArrivalPattern`:

- at time zero the machine is filled with the pattern's fill
  applications and the 100 arrivals are scheduled;
- *mapping events* fire after every arrival and every completion; the
  configured resource manager decides which pending applications start
  (and, for slack-based, which are dropped);
- a mapped application executes under the technique chosen by the
  configured :class:`repro.core.selection.TechniqueSelector` via the
  generic resilient-execution engine, on a contiguous allocation;
- the global failure injector fires at ``lambda_s = N_s / M_n`` over
  the *currently active* nodes and interrupts the owning application;
- an application that finishes after its deadline — or is dropped by
  the slack policy, or never completes within the horizon — counts
  toward the dropped percentage (Figs. 4-5 metric).

The *Ideal Baseline* mode disables failures and resilience overheads
entirely (applications run for exactly their baseline time), isolating
the loss attributable to failures + resilience from ordinary
oversubscription losses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Generator, List, Optional, Sequence, Set

from repro.constants import DEFAULT_NODE_MTBF_S
from repro.core.execution import (
    ExecutionStats,
    PoolContentionGate,
    ResilientExecution,
)
from repro.core.metrics import dropped_percentage
from repro.core.selection import TechniqueSelector
from repro.failures.burst import BurstModel
from repro.failures.generator import Failure
from repro.failures.injector import FailureInjector
from repro.failures.severity import SeverityModel
from repro.obs import live
from repro.obs.counters import counter_value, global_bus
from repro.obs.events import (
    JobArrived,
    JobCompleted,
    JobDropped,
    JobMapped,
    TrialFinished,
    TrialStarted,
)
from repro.obs.sinks import Sink
from repro.platform.system import HPCSystem
from repro.resilience.fingerprint import technique_fingerprint
from repro.rm.base import ResourceManager
from repro.rm.slack import remaining_slack
from repro.rng.streams import StreamFactory
from repro.sim.engine import Simulator
from repro.sim.events import EventKind
from repro.sim.process import Process
from repro.sim.resources import SlotPool
from repro.units import DAY
from repro.workload.application import Application
from repro.workload.patterns import ArrivalPattern


class JobStatus(enum.Enum):
    """Lifecycle state of one datacenter job."""
    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    DROPPED = "dropped"


@dataclass
class JobRecord:
    """Lifecycle record of one application in the datacenter."""

    app: Application
    is_fill: bool
    status: JobStatus = JobStatus.PENDING
    technique: Optional[str] = None
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    stats: Optional[ExecutionStats] = None

    @property
    def met_deadline(self) -> bool:
        """True when the job completed by its deadline (jobs without
        deadlines always 'meet' them)."""
        if self.status is not JobStatus.COMPLETED:
            return False
        if self.app.deadline is None:
            return True
        assert self.end_time is not None
        return self.end_time <= self.app.deadline

    @property
    def dropped(self) -> bool:
        """The Figs. 4-5 notion of dropped: removed by the scheduler or
        failed to complete by its deadline."""
        return not self.met_deadline


@dataclass(frozen=True)
class DatacenterConfig:
    """Environment of a Sec. VI/VII run."""

    node_mtbf_s: float = DEFAULT_NODE_MTBF_S
    severity_pmf: Optional[tuple] = None
    seed: int = 2017
    #: Ideal Baseline: no failures, no resilience overhead.
    ideal: bool = False
    #: Hard simulation horizon beyond the last arrival; jobs unresolved
    #: by then are dropped (guards against pathological thrashing).
    horizon_after_last_arrival_s: float = 120.0 * DAY
    #: Concurrent checkpoint/restart streams the parallel file system
    #: accepts.  None (the paper's model) means unlimited — each
    #: application sees Eq. 3 in isolation; a finite value makes PFS
    #: levels contend (extension).
    pfs_slots: Optional[int] = None
    #: Optional spatially-correlated failure model (extension); None is
    #: the paper's independent single-node failures.
    burst: Optional["BurstModel"] = None

    def __post_init__(self) -> None:
        if self.pfs_slots is not None and self.pfs_slots < 1:
            raise ValueError(f"pfs_slots must be >= 1, got {self.pfs_slots}")

    def severity_model(self) -> SeverityModel:
        """The configured severity model (default when pmf is None)."""
        if self.severity_pmf is None:
            return SeverityModel.default()
        return SeverityModel.from_probabilities(self.severity_pmf)


@dataclass
class DatacenterResult:
    """Outcome of one pattern under one (RM, selector) combination."""

    pattern_index: int
    rm_name: str
    selector_name: str
    records: List[JobRecord] = field(default_factory=list)
    failures_injected: int = 0
    end_time: float = 0.0

    def arriving_records(self) -> List[JobRecord]:
        """Records of the pattern's arriving (non-fill) applications."""
        return [r for r in self.records if not r.is_fill]

    @property
    def dropped_pct(self) -> float:
        """Dropped percentage over the 100 arriving applications
        (DESIGN.md substitution #5)."""
        arriving = self.arriving_records()
        return dropped_percentage(sum(r.dropped for r in arriving), len(arriving))

    @property
    def completed_count(self) -> int:
        """Number of jobs that ran to completion (fill included)."""
        return sum(r.status is JobStatus.COMPLETED for r in self.records)

    def technique_counts(self) -> Dict[str, int]:
        """How many jobs executed under each technique (selection
        observability)."""
        counts: Dict[str, int] = {}
        for record in self.records:
            if record.technique is not None:
                counts[record.technique] = counts.get(record.technique, 0) + 1
        return counts

    def mean_wait_s(self) -> float:
        """Mean queueing delay (start - arrival) of started jobs."""
        waits = [
            r.start_time - r.app.arrival_time
            for r in self.records
            if r.start_time is not None
        ]
        if not waits:
            return 0.0
        return float(sum(waits) / len(waits))

    def utilization(self, total_nodes: int) -> float:
        """Fraction of node-time spent executing applications over the
        whole simulated horizon, in [0, 1]."""
        if total_nodes <= 0:
            raise ValueError(f"total_nodes must be > 0, got {total_nodes}")
        if self.end_time <= 0:
            return 0.0
        busy = 0.0
        for record in self.records:
            if record.start_time is None:
                continue
            end = record.end_time if record.end_time is not None else self.end_time
            busy += (end - record.start_time) * record.app.nodes
        return min(1.0, busy / (total_nodes * self.end_time))


class PlanCache:
    """Memoizes :class:`~repro.resilience.base.ExecutionPlan` construction.

    Plan construction is a pure function of the technique's
    configuration, the application *shape* (type, steps, communication
    fraction, memory, nodes — never its id, arrival time, or deadline),
    the system, and the failure environment.  Shapes are drawn from a
    small discrete space, so a batch of patterns rebuilds the same
    handful of plans thousands of times; this cache builds each once
    and rebinds cached plans to new applications with
    :func:`dataclasses.replace` (plans are frozen and never mutated by
    the engine, so sharing the level tuples is safe).

    The cache key deliberately omits the system and failure
    environment: one instance must only ever serve runs that share
    them, which is how :func:`run_datacenter_batch` scopes it (one
    cache per batch, fixed system/config).
    """

    def __init__(self) -> None:
        self._plans: Dict[tuple, object] = {}

    def plan_for(self, technique, app, system, node_mtbf_s, severity):
        """The technique's plan for *app*, built or rebound from cache."""
        key = (
            technique_fingerprint(technique),
            app.type_name,
            app.time_steps,
            app.comm_fraction,
            app.memory_per_node_gb,
            app.nodes,
        )
        cached = self._plans.get(key)
        if cached is None:
            cached = technique.plan(
                app, system, node_mtbf_s, severity=severity
            )
            self._plans[key] = cached
            return cached
        return replace(cached, app=app)


class DatacenterSimulator:
    """Runs one arrival pattern to completion.

    Implements the :class:`repro.rm.base.Placer` protocol so the
    resource manager can start and drop applications directly.
    """

    def __init__(
        self,
        pattern: ArrivalPattern,
        manager: ResourceManager,
        selector: TechniqueSelector,
        system: HPCSystem,
        config: Optional[DatacenterConfig] = None,
        plan_cache: Optional[PlanCache] = None,
    ) -> None:
        self.pattern = pattern
        self.manager = manager
        self.selector = selector
        self.system = system
        self.config = config or DatacenterConfig()
        self._plan_cache = plan_cache
        self.sim = Simulator()
        streams = StreamFactory(self.config.seed).spawn(
            f"datacenter-{pattern.index}-{pattern.bias.value}"
        )
        self._failure_rng = streams.stream("failures")
        self._records: Dict[int, JobRecord] = {}
        self._procs: Dict[int, Process] = {}
        self._pending: List[Application] = []
        self._selected: Dict[int, object] = {}
        self._mapping_scheduled = False
        self._resources: Dict[str, SlotPool] = {}
        self._gate: Optional[PoolContentionGate] = None
        #: app_ids of running jobs counted as PFS users on the gate.
        self._pool_users: Set[int] = set()
        if self.config.pfs_slots is not None:
            self._resources["pfs"] = SlotPool(
                self.sim, self.config.pfs_slots, name="pfs"
            )
            self._gate = PoolContentionGate(self._resources["pfs"])
        #: Absolute run horizon, set by :meth:`run` before the event
        #: loop starts so lifecycle engines cap their fast-path jumps.
        self._horizon_time: Optional[float] = None
        self._injector: Optional[FailureInjector] = None
        if not self.config.ideal:
            self._injector = FailureInjector(
                self.sim,
                self.system,
                self.config.node_mtbf_s,
                self._failure_rng,
                self._on_failure,
                severity=self.config.severity_model(),
                burst=self.config.burst,
            )

    # -- Placer protocol ------------------------------------------------------

    def can_place(self, app: Application) -> bool:
        """Placer protocol: whether *app* can start right now."""
        nodes = self._nodes_required(app)
        return nodes <= self.system.total_nodes and self.system.can_allocate(nodes)

    def place(self, app: Application) -> None:
        """Placer protocol: allocate nodes and start *app*."""
        record = self._records[app.app_id]
        nodes = self._nodes_required(app)
        self.system.allocate(app.app_id, nodes)
        record.status = JobStatus.RUNNING
        record.start_time = self.sim.now
        if self.config.ideal:
            record.technique = "ideal"
            proc = self.sim.process(
                self._ideal_lifecycle(record), name=f"job-{app.app_id}"
            )
        else:
            technique = self._technique_for(app)
            record.technique = technique.name
            if self._plan_cache is not None:
                plan = self._plan_cache.plan_for(
                    technique,
                    app,
                    self.system,
                    self.config.node_mtbf_s,
                    self.config.severity_model(),
                )
            else:
                plan = technique.plan(
                    app,
                    self.system,
                    self.config.node_mtbf_s,
                    severity=self.config.severity_model(),
                )
            proc = self.sim.process(
                self._lifecycle(record, plan), name=f"job-{app.app_id}"
            )
            if self._gate is not None and any(
                lvl.shared_resource in self._resources
                for lvl in plan.levels
                if lvl.shared_resource is not None
            ):
                # Gate accounting before anything else can observe the
                # new job: a closing gate aborts in-flight jumps that
                # folded PFS checkpoints.
                self._pool_users.add(app.app_id)
                self._gate.job_started()
        self._procs[app.app_id] = proc
        self.sim.bus.publish(
            JobMapped(
                time=self.sim.now,
                app_id=app.app_id,
                nodes=nodes,
                technique=record.technique,
                is_fill=record.is_fill,
            )
        )
        if self._injector is not None:
            self._injector.notify_allocation_change()

    def drop(self, app: Application) -> None:
        """Placer protocol: remove *app* without executing it."""
        record = self._records[app.app_id]
        record.status = JobStatus.DROPPED
        record.end_time = self.sim.now
        self.sim.bus.publish(
            JobDropped(
                time=self.sim.now,
                app_id=app.app_id,
                reason="scheduler",
                is_fill=record.is_fill,
            )
        )

    # -- ReservingPlacer extras (for planning policies like EASY) --------

    def running_jobs(self) -> List:
        """``(nodes, estimated_end)`` per running job; estimates use the
        baseline plus 20% resilience headroom (what a scheduler without
        oracle knowledge would assume)."""
        out = []
        for record in self._records.values():
            if record.status is not JobStatus.RUNNING:
                continue
            allocation = self.system.allocation_of(record.app.app_id)
            if allocation is None:  # pragma: no cover - defensive
                continue
            assert record.start_time is not None
            estimate = record.start_time + 1.2 * record.app.baseline_time
            out.append((allocation.nodes, max(estimate, self.sim.now)))
        return out

    def free_nodes(self) -> int:
        """ReservingPlacer protocol: idle nodes right now."""
        return self.system.idle_nodes

    def nodes_needed(self, app: Application) -> int:
        """ReservingPlacer protocol: physical nodes *app* will occupy."""
        return self._nodes_required(app)

    # -- lifecycle processes ------------------------------------------------------

    def _lifecycle(self, record: JobRecord, plan) -> Generator:
        engine = ResilientExecution(
            self.sim,
            plan,
            resources=self._resources,
            failure_horizon=(
                self._injector.next_fire_time
                if self._injector is not None
                else None
            ),
            until=self._horizon_time,
            gate=self._gate,
            # Greedy jumps: run to completion in one closed-form leap
            # and let interrupt-and-replay handle whatever lands inside
            # it, instead of waking at every global failure horizon.
            greedy=True,
        )
        # The generator body first runs after place() stored the
        # process handle, so it is available to bind here.
        engine.bind_process(self._procs[record.app.app_id])
        stats = yield from engine.run()
        record.stats = stats
        self._complete(record)

    def _ideal_lifecycle(self, record: JobRecord) -> Generator:
        yield self.sim.timeout(record.app.baseline_time)
        self._complete(record)

    def _complete(self, record: JobRecord) -> None:
        record.status = JobStatus.COMPLETED
        record.end_time = self.sim.now
        self._procs.pop(record.app.app_id, None)
        self.system.release(record.app.app_id)
        if self._gate is not None and record.app.app_id in self._pool_users:
            self._pool_users.discard(record.app.app_id)
            self._gate.job_finished()
        met = record.met_deadline
        self.sim.bus.publish(
            JobCompleted(
                time=self.sim.now,
                app_id=record.app.app_id,
                met_deadline=met,
                is_fill=record.is_fill,
            )
        )
        if not met:
            # Completed after its deadline: still counts toward the
            # Figs. 4-5 dropped percentage.
            self.sim.bus.publish(
                JobDropped(
                    time=self.sim.now,
                    app_id=record.app.app_id,
                    reason="deadline_miss",
                    is_fill=record.is_fill,
                )
            )
        if self._injector is not None:
            self._injector.notify_allocation_change()
        self._schedule_mapping()

    # -- events ------------------------------------------------------------

    def _on_failure(self, owner, failure: Failure) -> None:
        proc = self._procs.get(owner)
        if proc is None or not proc.alive:
            return  # completion raced the failure at the same instant
        allocation = self.system.allocation_of(owner)
        assert allocation is not None
        relative = Failure(
            time=failure.time,
            node_id=failure.node_id - allocation.block.start,
            severity=failure.severity,
            width=failure.width,
        )
        proc.interrupt(relative)

    def _on_arrival(self, app: Application) -> None:
        self._pending.append(app)
        self.sim.bus.publish(
            JobArrived(time=self.sim.now, app_id=app.app_id, nodes=app.nodes)
        )
        self._schedule_mapping()

    def _schedule_mapping(self) -> None:
        """Coalesce mapping work at the current instant into one event."""
        if self._mapping_scheduled:
            return
        self._mapping_scheduled = True
        self.sim.schedule(0.0, self._run_mapping, kind=EventKind.MAPPING, priority=10)

    def _run_mapping(self, _event) -> None:
        self._mapping_scheduled = False
        if not self._pending:
            return
        # System-wide deadline rule (Sec. III-C): applications that can
        # no longer complete by their deadline are removed from the
        # system at mapping events, whatever the mapping policy.  (The
        # slack policy additionally *prioritizes* by slack.)
        viable: List[Application] = []
        for app in self._pending:
            if remaining_slack(app, self.sim.now) < 0.0:
                self.drop(app)
            else:
                viable.append(app)
        self._pending = self.manager.map_applications(viable, self, self.sim.now)

    # -- driver -----------------------------------------------------------

    def _technique_for(self, app: Application):
        """The selected technique for *app*, decided once per job."""
        technique = self._selected.get(app.app_id)
        if technique is None:
            technique = self.selector.select(app, self.system)
            self._selected[app.app_id] = technique
        return technique

    def _nodes_required(self, app: Application) -> int:
        if self.config.ideal:
            return app.nodes
        return self._technique_for(app).nodes_required(app)

    def run(self) -> DatacenterResult:
        """Execute the pattern; returns the aggregated result."""
        for app in self.pattern.fill_apps:
            self._records[app.app_id] = JobRecord(app=app, is_fill=True)
            self._pending.append(app)
            self.sim.bus.publish(
                JobArrived(
                    time=0.0, app_id=app.app_id, nodes=app.nodes, is_fill=True
                )
            )
        last_arrival = 0.0
        for app in self.pattern.arriving_apps:
            self._records[app.app_id] = JobRecord(app=app, is_fill=False)
            self.sim.schedule_at(
                app.arrival_time,
                lambda _ev, a=app: self._on_arrival(a),
                kind=EventKind.ARRIVAL,
            )
            last_arrival = max(last_arrival, app.arrival_time)
        self._schedule_mapping()
        if self._injector is not None:
            self._injector.start()

        horizon = last_arrival + self.config.horizon_after_last_arrival_s
        self._horizon_time = horizon
        self.sim.run(until=horizon)
        if self._injector is not None:
            self._injector.stop()

        result = DatacenterResult(
            pattern_index=self.pattern.index,
            rm_name=self.manager.name,
            selector_name=getattr(self.selector, "name", "ideal"),
            failures_injected=(
                self._injector.failures_injected if self._injector else 0
            ),
            end_time=self.sim.now,
        )
        for record in sorted(self._records.values(), key=lambda r: r.app.app_id):
            if record.status in (JobStatus.PENDING, JobStatus.RUNNING):
                # Unresolved at the horizon: count as dropped.
                record.status = JobStatus.DROPPED
                record.end_time = self.sim.now
                self.sim.bus.publish(
                    JobDropped(
                        time=self.sim.now,
                        app_id=record.app.app_id,
                        reason="horizon",
                        is_fill=record.is_fill,
                    )
                )
            result.records.append(record)
        return result


def simulation_call_count() -> int:
    """Number of datacenter simulations run on this process's behalf.

    Derived from the process-global instrumentation counters (each
    :func:`run_datacenter` publishes a
    :class:`~repro.obs.events.TrialStarted`); worker-side counts are
    merged back by the parallel executor, so the cache tests can assert
    a warm rerun performs zero simulations."""
    return counter_value("datacenter.simulations")


def run_datacenter(
    pattern: ArrivalPattern,
    manager: ResourceManager,
    selector: TechniqueSelector,
    system: HPCSystem,
    config: Optional[DatacenterConfig] = None,
    sinks: Optional[Sequence[Sink]] = None,
    plan_cache: Optional[PlanCache] = None,
) -> DatacenterResult:
    """Convenience wrapper: build and run one simulation.

    *sinks* are attached to the simulation's instrumentation bus before
    the run; instrumentation is passive, so any sink configuration
    (including none) produces bit-identical results.  An optional
    *plan_cache* (scoped to a fixed system/config — see
    :class:`PlanCache`) skips redundant plan construction; cached plans
    are value-identical, so results do not change."""
    simulator = DatacenterSimulator(
        pattern, manager, selector, system, config, plan_cache=plan_cache
    )
    if sinks:
        for sink in sinks:
            sink.attach(simulator.sim.bus)
    # Thread-locally activated live sinks (the telemetry feed of a
    # watched service job); a no-op when nothing is activated, so
    # unwatched trials keep the unobserved fast path.
    live.attach_current(simulator.sim.bus)
    started = TrialStarted(
        time=0.0, scope="datacenter", trial=pattern.index
    )
    global_bus().publish(started)
    simulator.sim.bus.publish(started)
    result = simulator.run()
    finished = TrialFinished(
        time=result.end_time, scope="datacenter", trial=pattern.index
    )
    simulator.sim.bus.publish(finished)
    global_bus().publish(finished)
    return result


def run_datacenter_batch(
    patterns: Sequence[ArrivalPattern],
    manager_factory: Callable[[ArrivalPattern], ResourceManager],
    selector_factory: Callable[[], TechniqueSelector],
    system: HPCSystem,
    config: Optional[DatacenterConfig] = None,
    sinks: Optional[Sequence[Sink]] = None,
) -> List[DatacenterResult]:
    """Run a cell's patterns as one batch over shared setup.

    Bit-identical to calling :func:`run_datacenter` once per pattern
    with a fresh system and fresh manager/selector instances — the
    batched-trials equivalence tests enforce this — but amortizes the
    per-trial setup: one :class:`~repro.platform.system.HPCSystem`
    (reset between patterns; a reset system is indistinguishable from
    a fresh one) and one :class:`PlanCache` shared across the whole
    batch (valid because the batch fixes system and config).  The
    factories supply per-pattern manager and selector instances, which
    carry per-pattern RNG streams and selection state and so cannot be
    shared.
    """
    plan_cache = PlanCache()
    results: List[DatacenterResult] = []
    for pattern in patterns:
        system.reset()
        results.append(
            run_datacenter(
                pattern,
                manager_factory(pattern),
                selector_factory(),
                system,
                config,
                sinks=sinks,
                plan_cache=plan_cache,
            )
        )
    return results
