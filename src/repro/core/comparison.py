"""High-level comparison API: "which technique should this app use?"

This is the package's front door: one call runs every technique on one
application configuration and summarizes efficiencies, reproducing a
single x-position of Figs. 1-3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.constants import SCALING_STUDY_BASELINE_S
from repro.core.single_app import SingleAppConfig, TrialSet, run_trials
from repro.platform.presets import exascale_system
from repro.platform.system import HPCSystem
from repro.resilience.base import ResilienceTechnique
from repro.resilience.registry import scaling_study_techniques
from repro.units import MINUTE
from repro.workload.synthetic import make_application


@dataclass(frozen=True)
class TechniqueSummary:
    """Mean/std efficiency of one technique on one configuration."""

    technique: str
    mean_efficiency: float
    std_efficiency: float
    trials: int
    infeasible: bool

    def __str__(self) -> str:
        if self.infeasible:
            return f"{self.technique:<22} infeasible (not enough nodes)"
        return (
            f"{self.technique:<22} efficiency {self.mean_efficiency:6.3f} "
            f"+/- {self.std_efficiency:5.3f}  ({self.trials} trials)"
        )


@dataclass(frozen=True)
class ComparisonResult:
    """All techniques on one (app type, size) configuration."""

    app_type: str
    nodes: int
    fraction: float
    summaries: tuple

    @property
    def best(self) -> TechniqueSummary:
        """Highest mean efficiency among feasible techniques."""
        feasible = [s for s in self.summaries if not s.infeasible]
        if not feasible:
            raise ValueError("no feasible technique for this configuration")
        return max(feasible, key=lambda s: s.mean_efficiency)

    def summary(self) -> str:
        """Multi-line human-readable comparison report."""
        lines = [
            f"Application {self.app_type} on {self.nodes} nodes "
            f"({100 * self.fraction:.0f}% of system):"
        ]
        lines += [f"  {s}" for s in self.summaries]
        lines.append(f"  -> best: {self.best.technique}")
        return "\n".join(lines)


def compare_techniques(
    app_type: str,
    fraction: float,
    trials: int = 20,
    system: Optional[HPCSystem] = None,
    techniques: Optional[Sequence[ResilienceTechnique]] = None,
    config: Optional[SingleAppConfig] = None,
    baseline_s: float = SCALING_STUDY_BASELINE_S,
) -> ComparisonResult:
    """Compare all techniques for one Table I type at one system
    fraction (a vertical slice of Figs. 1-3)."""
    system = system if system is not None else exascale_system()
    techniques = (
        list(techniques) if techniques is not None else scaling_study_techniques()
    )
    config = config or SingleAppConfig()
    nodes = system.fraction_to_nodes(fraction)
    app = make_application(
        app_type, nodes=nodes, time_steps=max(1, round(baseline_s / MINUTE))
    )
    summaries: List[TechniqueSummary] = []
    for technique in techniques:
        trial_set: TrialSet = run_trials(app, technique, system, trials, config)
        summaries.append(
            TechniqueSummary(
                technique=technique.name,
                mean_efficiency=trial_set.mean_efficiency,
                std_efficiency=trial_set.std_efficiency,
                trials=len(trial_set.efficiencies),
                infeasible=trial_set.infeasible,
            )
        )
    return ComparisonResult(
        app_type=app.type_name,
        nodes=nodes,
        fraction=fraction,
        summaries=tuple(summaries),
    )
