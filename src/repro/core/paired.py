"""Paired technique comparison with common random numbers.

The Sec. V bars compare techniques across *independent* failure
realizations, so small efficiency differences need many trials to
resolve.  This module drives every technique with the *same* failure
trace per trial (see :mod:`repro.failures.trace`), which cancels the
realization noise out of the difference — the classic common-random-
numbers variance-reduction — and reports per-trial paired differences
with a significance test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Sequence

from repro.core.execution import ExecutionStats, ResilientExecution
from repro.core.single_app import SingleAppConfig
from repro.experiments.stats import SummaryStats, paired_summary
from repro.failures.trace import FailureTrace, record_trace
from repro.platform.system import HPCSystem
from repro.resilience.base import ResilienceTechnique
from repro.rng.streams import StreamFactory
from repro.sim.engine import Simulator
from repro.sim.process import Process
from repro.workload.application import Application


def trace_replay_driver(
    sim: Simulator, target: Process, trace: FailureTrace, nodes: int
) -> Generator:
    """Process that replays *trace* (scaled to *nodes*) into *target*."""
    last = 0.0
    for failure in trace.scaled(nodes):
        gap = failure.time - last
        last = failure.time
        if gap > 0:
            yield sim.timeout(gap)
        if not target.alive:
            return
        target.interrupt(failure)


def simulate_with_trace(
    app: Application,
    technique: ResilienceTechnique,
    system: HPCSystem,
    trace: FailureTrace,
    config: Optional[SingleAppConfig] = None,
) -> ExecutionStats:
    """One execution of *app* under *technique* against *trace*."""
    config = config or SingleAppConfig()
    plan = technique.plan(
        app, system, config.node_mtbf_s, severity=config.severity_model()
    )
    sim = Simulator()
    engine = ResilientExecution(sim, plan)
    proc = sim.process(engine.run(), name=f"app-{app.app_id}")
    sim.process(
        trace_replay_driver(sim, proc, trace, plan.nodes_required),
        name="trace-replay",
    )
    cap = min(
        config.max_time_factor * plan.effective_work_s,
        trace.scaled_horizon(plan.nodes_required),
    )
    sim.run(until=cap)
    if not engine.stats.completed:
        engine.stats.end_time = cap
    return engine.stats


@dataclass(frozen=True)
class PairedComparison:
    """Outcome of a common-random-numbers comparison."""

    app: Application
    efficiencies: Dict[str, SummaryStats]
    #: Per-trial efficiency samples by technique name.
    samples: Dict[str, tuple]

    def difference(self, a: str, b: str):
        """Paired summary of technique *a* minus technique *b*."""
        return paired_summary(self.samples[a], self.samples[b])

    def best(self) -> str:
        """Technique name with the highest mean efficiency."""
        return max(self.efficiencies, key=lambda n: self.efficiencies[n].mean)


def paired_compare(
    app: Application,
    techniques: Sequence[ResilienceTechnique],
    system: HPCSystem,
    trials: int = 10,
    config: Optional[SingleAppConfig] = None,
) -> PairedComparison:
    """Compare *techniques* on *app* with one shared failure trace per
    trial.

    Traces are recorded long enough for the slowest plausible execution
    (the walltime cap times the largest node requirement among the
    candidates).
    """
    if trials <= 0:
        raise ValueError(f"trials must be > 0, got {trials}")
    config = config or SingleAppConfig()
    severity = config.severity_model()
    max_nodes = max(t.nodes_required(app) for t in techniques)
    # Unit-time horizon: cap * max inflation is bounded by 2x baseline
    # inflation; be generous.
    unit_horizon = (
        config.max_time_factor * app.baseline_time * 2.0 * max_nodes
    )
    streams = StreamFactory(config.seed)
    samples: Dict[str, List[float]] = {t.name: [] for t in techniques}
    for trial in range(trials):
        rng = streams.fresh(f"trace-{trial}")
        trace = record_trace(
            rng, config.node_mtbf_s, unit_horizon, severity=severity
        )
        for technique in techniques:
            stats = simulate_with_trace(app, technique, system, trace, config)
            samples[technique.name].append(stats.efficiency())
    return PairedComparison(
        app=app,
        efficiencies={
            name: SummaryStats.from_samples(values)
            for name, values in samples.items()
        },
        samples={name: tuple(values) for name, values in samples.items()},
    )
