"""Trace recording for simulations.

A :class:`TraceRecorder` collects ``(time, kind, payload)`` tuples for
every executed event.  Traces are the ground truth that tests and the
experiment harness use to verify event ordering (e.g. "a restart event
follows every failure that hits an executing application").
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional, Union

from repro.sim.events import EventKind


@dataclass(frozen=True)
class TraceEntry:
    """One executed event."""

    time: float
    kind: EventKind
    payload: Any

    def __str__(self) -> str:
        return f"[{self.time:14.3f}s] {self.kind.value:<12} {self.payload!r}"


class TraceRecorder:
    """Append-only event trace with filtering helpers.

    Parameters
    ----------
    kinds:
        If given, only events of these kinds are recorded (keeps traces
        small for long simulations).
    capacity:
        Optional hard cap on recorded entries; older entries are dropped
        FIFO when exceeded (O(1) per event: the trace is a bounded
        :class:`collections.deque`).
    """

    def __init__(
        self,
        kinds: Optional[set[EventKind]] = None,
        capacity: Optional[int] = None,
    ) -> None:
        self._entries: Deque[TraceEntry] = deque(maxlen=capacity)
        self._kinds = kinds
        self._capacity = capacity
        self.dropped = 0

    def record(self, time: float, kind: EventKind, payload: Any) -> None:
        """Append one executed event (subject to kind filter/capacity)."""
        if self._kinds is not None and kind not in self._kinds:
            return
        if self._capacity is not None and len(self._entries) == self._capacity:
            self.dropped += 1  # deque(maxlen=...) evicts the oldest
        self._entries.append(TraceEntry(time, kind, payload))

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self._entries)

    def __getitem__(
        self, index: Union[int, slice]
    ) -> Union[TraceEntry, List[TraceEntry]]:
        if isinstance(index, slice):
            return list(self._entries)[index]
        return self._entries[index]

    def filter(
        self,
        kind: Optional[EventKind] = None,
        predicate: Optional[Callable[[TraceEntry], bool]] = None,
    ) -> List[TraceEntry]:
        """Entries matching *kind* and/or an arbitrary predicate."""
        out = self._entries
        if kind is not None:
            out = [e for e in out if e.kind is kind]
        if predicate is not None:
            out = [e for e in out if predicate(e)]
        return list(out)

    def counts(self) -> Dict[EventKind, int]:
        """Histogram of recorded event kinds."""
        hist: Dict[EventKind, int] = {}
        for entry in self._entries:
            hist[entry.kind] = hist.get(entry.kind, 0) + 1
        return hist

    def clear(self) -> None:
        """Drop all recorded entries."""
        self._entries.clear()
        self.dropped = 0

    def dump(self, limit: Optional[int] = None) -> str:
        """Human-readable trace text (first *limit* entries)."""
        entries = self._entries if limit is None else self[:limit]
        return "\n".join(str(e) for e in entries)
