"""Generator-based simulation processes with interrupts.

A process is a Python generator driven by the kernel.  It may yield:

- :class:`Timeout` — suspend for a simulated duration;
- a bare non-negative number — shorthand for ``Timeout(n)`` that
  reuses one Timeout object per process (the hot path of the
  execution engine, which suspends at every checkpoint boundary);
- another :class:`Process` — suspend until that process terminates
  (its return value is sent back in);

and it may be interrupted at any suspension point via
:meth:`Process.interrupt`, which raises
:class:`repro.sim.errors.Interrupt` inside the generator.  This is the
mechanism failures use to preempt application execution (Sec. III-A).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Generator, List, Optional

from repro.sim.errors import Interrupt, ProcessError
from repro.sim.events import Event, EventKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator


class Timeout:
    """A pending delay, yielded by a process.

    After the process resumes (normally or via interrupt) the attribute
    :attr:`wake_at` tells when the timeout *would have* completed, which
    lets interrupt handlers compute how much of the delay elapsed.
    """

    __slots__ = ("delay", "at", "started_at", "wake_at")

    def __init__(self, delay: float, at: Optional[float] = None) -> None:
        if delay < 0:
            raise ValueError(f"timeout delay must be >= 0, got {delay}")
        self.delay = delay
        #: Absolute completion time; when set, the wake event is
        #: scheduled exactly at this instant (no ``now + delay`` float
        #: round-trip).  Created by :meth:`Simulator.timeout_at`.
        self.at = at
        self.started_at: Optional[float] = None
        self.wake_at: Optional[float] = None

    def elapsed(self, now: float) -> float:
        """Simulated time spent inside this timeout as of *now*."""
        if self.started_at is None:
            return 0.0
        return max(0.0, min(now, self.wake_at or now) - self.started_at)

    def remaining(self, now: float) -> float:
        """Delay remaining as of *now* (0 if complete or not started)."""
        if self.wake_at is None:
            return self.delay
        return max(0.0, self.wake_at - now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timeout({self.delay!r})"


class ProcessState(enum.Enum):
    """Lifecycle state of a kernel process."""
    CREATED = "created"
    RUNNING = "running"
    FINISHED = "finished"
    FAILED = "failed"


class Process:
    """A coroutine scheduled on a :class:`repro.sim.engine.Simulator`.

    Do not instantiate directly; use :meth:`Simulator.process`.
    """

    def __init__(
        self, sim: "Simulator", generator: Generator[Any, Any, Any], name: str
    ) -> None:
        self._sim = sim
        self._gen = generator
        self.name = name
        self.state = ProcessState.CREATED
        #: Return value of the generator once FINISHED.
        self.value: Any = None
        #: Exception that escaped the generator once FAILED.
        self.error: Optional[BaseException] = None
        self._pending_event: Optional[Event] = None
        self._pending_timeout: Optional[Timeout] = None
        #: Reused for bare-number yields so boundary-dense processes do
        #: not allocate one Timeout object per suspension.
        self._scratch_timeout: Optional[Timeout] = None
        self._joined_on: Optional["Process"] = None
        self._waiting_signal = None  # Optional[Signal]
        self._watchers: List["Process"] = []
        # Kick off the first step "immediately" (same simulated time).
        self._pending_event = sim.schedule(
            0.0, self._on_wake, kind=EventKind.INTERNAL, payload=self
        )

    # -- public API ---------------------------------------------------------

    @property
    def alive(self) -> bool:
        """True while the generator has not terminated."""
        return self.state in (ProcessState.CREATED, ProcessState.RUNNING)

    @property
    def pending_timeout(self) -> Optional[Timeout]:
        """The Timeout this process is currently suspended on, if any."""
        return self._pending_timeout

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupt` inside the process at its current
        suspension point.  The interrupt is delivered immediately (at the
        current simulated time) via a high-priority wakeup."""
        if not self.alive:
            raise ProcessError(f"cannot interrupt terminated process {self.name!r}")
        self._unlink_wait()
        # Deliver on the event loop so interrupts issued from inside an
        # event callback do not reenter the generator recursively.
        self._pending_event = self._sim.schedule(
            0.0,
            lambda _ev, c=cause: self._step(throw=Interrupt(c)),
            kind=EventKind.INTERNAL,
            payload=self,
            priority=-1,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name!r} {self.state.value}>"

    # -- kernel side ----------------------------------------------------------

    def _unlink_wait(self) -> None:
        """Detach from whatever the process is currently waiting on."""
        if self._pending_event is not None:
            self._sim.cancel(self._pending_event)
            self._pending_event = None
        if self._joined_on is not None:
            try:
                self._joined_on._watchers.remove(self)
            except ValueError:  # pragma: no cover - defensive
                pass
            self._joined_on = None
        if self._waiting_signal is not None:
            self._waiting_signal._remove_waiter(self)
            self._waiting_signal = None
        self._pending_timeout = None

    def _on_wake(self, _event: Event) -> None:
        self._step(send=None)

    def _step(self, send: Any = None, throw: Optional[BaseException] = None) -> None:
        """Advance the generator one suspension point."""
        self._pending_event = None
        self._pending_timeout = None
        self._waiting_signal = None
        self.state = ProcessState.RUNNING
        try:
            if throw is not None:
                yielded = self._gen.throw(throw)
            else:
                yielded = self._gen.send(send)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except Interrupt as intr:
            # An unhandled Interrupt terminates the process cleanly with
            # the interrupt cause as its error.
            self.state = ProcessState.FAILED
            self.error = intr
            self._notify_watchers()
            return
        except BaseException as exc:
            self.state = ProcessState.FAILED
            self.error = exc
            self._notify_watchers()
            raise
        self._suspend_on(yielded)

    def _suspend_on(self, yielded: Any) -> None:
        from repro.sim.resources import Signal  # local: avoid cycle

        if isinstance(yielded, Signal):
            if yielded._add_waiter(self):
                self._waiting_signal = yielded
            else:
                # Already fired: resume immediately with its value.
                value = yielded.value
                self._pending_event = self._sim.schedule(
                    0.0,
                    lambda _ev, v=value: self._step(send=v),
                    payload=self,
                )
        elif isinstance(yielded, Timeout):
            self._suspend_on_timeout(yielded)
        elif isinstance(yielded, (int, float)) and not isinstance(yielded, bool):
            # Hot path: a bare non-negative number means "sleep that
            # many seconds" (identical semantics to yielding
            # ``sim.timeout(n)``, without the per-yield allocation).
            if yielded < 0:
                self.state = ProcessState.FAILED
                self.error = ProcessError(
                    f"process yielded negative delay {yielded}"
                )
                self._notify_watchers()
                raise self.error
            timeout = self._scratch_timeout
            if timeout is None:
                timeout = self._scratch_timeout = Timeout(0.0)
            timeout.delay = float(yielded)
            timeout.at = None
            self._suspend_on_timeout(timeout)
        elif isinstance(yielded, Process):
            if yielded.alive:
                self._joined_on = yielded
                yielded._watchers.append(self)
            else:
                # Already finished: resume immediately with its value.
                value = yielded.value
                self._pending_event = self._sim.schedule(
                    0.0,
                    lambda _ev, v=value: self._step(send=v),
                    kind=EventKind.INTERNAL,
                    payload=self,
                )
        else:
            bad = type(yielded).__name__
            self.state = ProcessState.FAILED
            self.error = ProcessError(f"process yielded unsupported {bad}")
            self._notify_watchers()
            raise self.error

    def _suspend_on_timeout(self, timeout: Timeout) -> None:
        sim = self._sim
        timeout.started_at = sim.now
        self._pending_timeout = timeout
        if timeout.at is not None:
            timeout.wake_at = timeout.at
            self._pending_event = sim.schedule_at(
                timeout.at, self._on_wake, kind=EventKind.INTERNAL, payload=self
            )
        else:
            timeout.wake_at = sim.now + timeout.delay
            self._pending_event = sim.schedule(
                timeout.delay, self._on_wake, kind=EventKind.INTERNAL, payload=self
            )

    def _finish(self, value: Any) -> None:
        self.state = ProcessState.FINISHED
        self.value = value
        self._notify_watchers()

    def _notify_watchers(self) -> None:
        watchers, self._watchers = self._watchers, []
        for watcher in watchers:
            watcher._joined_on = None
            if self.state is ProcessState.FINISHED:
                value = self.value
                watcher._pending_event = self._sim.schedule(
                    0.0,
                    lambda _ev, w=watcher, v=value: w._step(send=v),
                    kind=EventKind.INTERNAL,
                    payload=watcher,
                )
            else:
                error = self.error
                watcher._pending_event = self._sim.schedule(
                    0.0,
                    lambda _ev, w=watcher, e=error: w._step(
                        throw=ProcessError(f"joined process failed: {e!r}")
                    ),
                    kind=EventKind.INTERNAL,
                    payload=watcher,
                )
