"""Event objects for the simulation kernel.

An :class:`Event` is a callback scheduled at a simulated time.  Events
carry a :class:`EventKind` tag so traces can be filtered by the event
taxonomy of Sec. III-A of the paper (arrival, mapping, computation,
failure, checkpoint, restart, recovery).
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Optional


class EventKind(enum.Enum):
    """Taxonomy of simulation events (Sec. III-A of the paper)."""

    ARRIVAL = "arrival"
    MAPPING = "mapping"
    COMPUTATION = "computation"
    FAILURE = "failure"
    CHECKPOINT = "checkpoint"
    RESTART = "restart"
    RECOVERY = "recovery"
    #: Kernel-internal events (process wakeups etc.).
    INTERNAL = "internal"

    def __str__(self) -> str:
        return self.value


class Event:
    """A scheduled callback.

    Events are ordered by ``(time, priority, seq)``: earlier times first,
    then lower priority values, then insertion order.  Cancelling an
    event is O(1); the queue discards cancelled events lazily.
    """

    __slots__ = (
        "time",
        "priority",
        "seq",
        "callback",
        "payload",
        "kind",
        "cancelled",
        "in_queue",
    )

    def __init__(
        self,
        time: float,
        callback: Callable[["Event"], None],
        *,
        priority: int = 0,
        seq: int = 0,
        kind: EventKind = EventKind.INTERNAL,
        payload: Any = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.payload = payload
        self.kind = kind
        self.cancelled = False
        #: Maintained by :class:`repro.sim.queue.EventQueue`: True while
        #: the event sits in the pending heap.  Lets the kernel tell a
        #: cancelled-while-pending event (which must decrement the live
        #: count) from one that already executed or was never queued.
        self.in_queue = False

    def cancel(self) -> None:
        """Mark the event so the kernel will skip it."""
        self.cancelled = True

    @property
    def sort_key(self) -> tuple[float, int, int]:
        """Heap ordering key ``(time, priority, seq)``."""
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key < other.sort_key

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event {self.kind} t={self.time:.6g} prio={self.priority}{state}>"


#: Priority assigned to failure events so that a failure scheduled at the
#: same instant as a process wakeup is delivered first (the failure
#: happened *during* the preceding interval).
FAILURE_PRIORITY = -10

#: Default priority for ordinary events.
DEFAULT_PRIORITY = 0

Callback = Callable[[Event], None]
OptionalEvent = Optional[Event]
