"""Shared-resource primitives for the simulation kernel.

Two pieces:

- :class:`Signal` — a one-shot waitable a process can ``yield``;
  another party resumes it with :meth:`Signal.fire`.  (The kernel's
  third suspension kind, next to timeouts and process joins.)
- :class:`SlotPool` — a counted resource with FIFO queuing built on
  signals.  Used to model contention: e.g. the parallel file system
  accepting only K concurrent checkpoint/restart streams.

Processes interact with a pool through :meth:`SlotPool.request`::

    ticket = pool.request()
    yield from ticket.wait()      # may Interrupt: call ticket.abandon()
    try:
        ...                        # hold the slot
    finally:
        ticket.release()

The ticket protocol is interrupt-safe: abandoning a queued ticket
removes it from the line; abandoning a granted-but-unconsumed ticket
returns the slot.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.sim.process import Process


class Signal:
    """A one-shot event processes can wait on.

    ``yield signal`` suspends until someone calls :meth:`fire`; the
    fired value is sent back into the generator.  Firing before any
    waiter arrives is fine — later waiters resume immediately.
    """

    __slots__ = ("_sim", "_waiters", "fired", "value")

    def __init__(self, sim: "Simulator") -> None:
        self._sim = sim
        self._waiters: List["Process"] = []
        self.fired = False
        self.value: Any = None

    def fire(self, value: Any = None) -> None:
        """Fire the signal, resuming all current and future waiters."""
        if self.fired:
            raise RuntimeError("signal already fired")
        self.fired = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            # Track the resume on the waiter so an interrupt landing
            # between fire and delivery cancels it (no double resume).
            waiter._waiting_signal = None
            waiter._pending_event = self._sim.schedule(
                0.0,
                lambda _ev, w=waiter: w._step(send=self.value),
                payload=waiter,
            )

    # -- kernel side (called by Process) ---------------------------------

    def _add_waiter(self, process: "Process") -> bool:
        """Register *process*; False if already fired (resume now)."""
        if self.fired:
            return False
        self._waiters.append(process)
        return True

    def _remove_waiter(self, process: "Process") -> None:
        try:
            self._waiters.remove(process)
        except ValueError:  # pragma: no cover - defensive
            pass


class SlotTicket:
    """One request against a :class:`SlotPool` (see module docstring)."""

    def __init__(self, pool: "SlotPool") -> None:
        self._pool = pool
        self._signal: Optional[Signal] = None
        #: queued -> granted -> held -> released; or abandoned.
        self.state = "new"

    def wait(self) -> Generator:
        """Generator: suspends until the slot is granted.

        Raises whatever interrupt strikes while queued — callers must
        then call :meth:`abandon`.
        """
        if self.state == "held":
            return
        if self.state != "queued":
            raise RuntimeError(f"cannot wait on a {self.state} ticket")
        assert self._signal is not None
        yield self._signal
        # The pool granted us the slot just before firing.
        self.state = "held"

    def abandon(self) -> None:
        """Give up on the request (interrupt handling).

        Safe in any state: a queued ticket leaves the line; a granted
        ticket returns its slot; held tickets are released.
        """
        if self.state in ("queued", "granted", "held"):
            self._pool._abandon(self)
        self.state = "abandoned"

    def release(self) -> None:
        """Return the held slot to the pool."""
        if self.state != "held":
            raise RuntimeError(f"cannot release a {self.state} ticket")
        self.state = "released"
        self._pool._release_one()


class SlotPool:
    """A counted resource with FIFO queuing.

    Parameters
    ----------
    sim:
        The owning simulator.
    slots:
        Concurrent holders allowed.
    name:
        For diagnostics.
    """

    def __init__(self, sim: "Simulator", slots: int, name: str = "pool") -> None:
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        self._sim = sim
        self.slots = slots
        self.name = name
        self._free = slots
        self._queue: List[SlotTicket] = []
        #: Cumulative count of requests that had to wait (observability).
        self.contended_requests = 0

    @property
    def free(self) -> int:
        """Slots currently available."""
        return self._free

    @property
    def queued(self) -> int:
        """Requests waiting in line."""
        return len(self._queue)

    @property
    def in_use(self) -> int:
        """Slots currently held."""
        return self.slots - self._free

    def request(self) -> SlotTicket:
        """Create a ticket; grants immediately when a slot is free."""
        ticket = SlotTicket(self)
        if self._free > 0:
            self._free -= 1
            ticket.state = "held"
        else:
            ticket._signal = Signal(self._sim)
            ticket.state = "queued"
            self._queue.append(ticket)
            self.contended_requests += 1
        return ticket

    # -- internal ----------------------------------------------------------

    def _release_one(self) -> None:
        if self._queue:
            nxt = self._queue.pop(0)
            nxt.state = "granted"
            assert nxt._signal is not None
            nxt._signal.fire()
        else:
            self._free += 1
            assert self._free <= self.slots, "slot over-release"

    def _abandon(self, ticket: SlotTicket) -> None:
        if ticket.state == "queued":
            try:
                self._queue.remove(ticket)
            except ValueError:  # pragma: no cover - defensive
                pass
        elif ticket.state in ("granted", "held"):
            # The slot was already ours; give it back (possibly handing
            # it straight to the next in line).
            self._release_one()
