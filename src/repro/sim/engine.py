"""The simulation kernel: clock + event loop.

:class:`Simulator` owns the simulated clock and the pending-event queue
and drives callbacks and :class:`repro.sim.process.Process` coroutines.
The kernel is deliberately small — everything domain-specific (failures,
checkpoints, mapping) lives in higher layers and interacts with the
kernel only through ``schedule`` / ``process`` / ``interrupt``.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Generator, Optional

from repro.obs.bus import EventBus
from repro.sim.errors import SchedulingError
from repro.sim.events import DEFAULT_PRIORITY, Event, EventKind
from repro.sim.process import Process, Timeout
from repro.sim.queue import EventQueue


class Simulator:
    """Event-driven simulation kernel.

    Parameters
    ----------
    bus:
        Optional :class:`repro.obs.bus.EventBus`; one is created when
        not given.  Every executed kernel event is forwarded to the
        bus's kernel taps (attach a :class:`repro.obs.sinks.TraceSink`
        to record them), and higher layers publish their typed domain
        events through the same bus.  An empty bus costs one attribute
        access per executed event.
    """

    def __init__(self, bus: Optional[EventBus] = None) -> None:
        self._now = 0.0
        self._queue = EventQueue()
        self._seq = 0
        self._running = False
        self._event_count = 0
        self.bus = bus if bus is not None else EventBus()

    # -- clock ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def event_count(self) -> int:
        """Number of events executed so far."""
        return self._event_count

    @property
    def pending(self) -> int:
        """Number of live events waiting in the queue."""
        return len(self._queue)

    # -- scheduling -------------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable[[Event], None],
        *,
        kind: EventKind = EventKind.INTERNAL,
        payload: Any = None,
        priority: int = DEFAULT_PRIORITY,
    ) -> Event:
        """Schedule *callback* to run ``delay`` seconds from now."""
        return self.schedule_at(
            self._now + delay, callback, kind=kind, payload=payload, priority=priority
        )

    def schedule_at(
        self,
        time: float,
        callback: Callable[[Event], None],
        *,
        kind: EventKind = EventKind.INTERNAL,
        payload: Any = None,
        priority: int = DEFAULT_PRIORITY,
    ) -> Event:
        """Schedule *callback* at absolute simulated time *time*."""
        if not math.isfinite(time):
            raise SchedulingError(f"event time must be finite, got {time!r}")
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule event at t={time} before now={self._now}"
            )
        self._seq += 1
        event = Event(
            time, callback, priority=priority, seq=self._seq, kind=kind, payload=payload
        )
        self._queue.push(event)
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a pending event (no-op if already cancelled).

        Safe to call on events that already executed or were never
        queued: only an event still sitting in the pending queue
        decrements the queue's live count.
        """
        if event.cancelled:
            return
        event.cancel()
        if event.in_queue:
            self._queue.notify_cancelled()

    # -- processes ----------------------------------------------------------

    def process(
        self, generator: Generator[Any, Any, Any], name: str = "process"
    ) -> Process:
        """Spawn a coroutine process; its first step runs at the current
        time (once control returns to the event loop)."""
        return Process(self, generator, name=name)

    def timeout(self, delay: float) -> Timeout:
        """Create a :class:`Timeout` for ``yield`` inside a process."""
        return Timeout(delay)

    def timeout_at(self, time: float) -> Timeout:
        """A :class:`Timeout` completing at absolute simulated *time*.

        The wake event is scheduled exactly at *time* — no float
        round-trip through ``now + (time - now)`` — which is what lets
        the execution engine's fast path land bit-exactly on a stepped
        wake instant.  A *time* already in the past wakes immediately.
        """
        return Timeout(max(0.0, time - self._now), at=max(time, self._now))

    # -- event loop ---------------------------------------------------------

    def step(self) -> bool:
        """Execute the next event.  Returns False when the queue is empty."""
        try:
            event = self._queue.pop()
        except IndexError:
            return False
        self._now = event.time
        self._event_count += 1
        taps = self.bus.kernel_taps
        if taps:
            for tap in taps:
                tap(event.time, event.kind, event.payload)
        event.callback(event)
        return True

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> float:
        """Run until the queue drains, ``until`` is reached, or
        ``max_events`` more events have executed.

        Returns the simulated time at which the loop stopped.  When
        ``until`` is given and events remain beyond it, the clock is
        advanced exactly to ``until``.
        """
        if self._running:
            raise SchedulingError("Simulator.run is not reentrant")
        self._running = True
        executed = 0
        queue = self._queue
        try:
            # Inlined step() with a fused peek+pop (pop_due): one
            # tombstone scan per executed event instead of two.
            while True:
                if max_events is not None and executed >= max_events:
                    break
                event = queue.pop_due(until)
                if event is None:
                    if until is not None and queue:
                        # Live events remain beyond the horizon.
                        self._now = max(self._now, until)
                    break
                self._now = event.time
                self._event_count += 1
                taps = self.bus.kernel_taps
                if taps:
                    for tap in taps:
                        tap(event.time, event.kind, event.payload)
                event.callback(event)
                executed += 1
        finally:
            self._running = False
        return self._now

    def run_until_empty(self, max_events: Optional[int] = None) -> float:
        """Run with no time horizon (guarded by ``max_events`` if given)."""
        return self.run(until=None, max_events=max_events)
