"""Discrete-event simulation kernel (built from scratch; SimPy-like).

Public surface::

    sim = Simulator()
    proc = sim.process(my_generator())
    sim.run(until=3600.0)
"""

from repro.sim.engine import Simulator
from repro.sim.errors import Interrupt, ProcessError, SchedulingError, SimulationError
from repro.sim.events import Event, EventKind, FAILURE_PRIORITY
from repro.sim.process import Process, ProcessState, Timeout
from repro.sim.queue import EventQueue
from repro.sim.resources import Signal, SlotPool, SlotTicket
from repro.sim.tracing import TraceEntry, TraceRecorder

__all__ = [
    "Event",
    "EventKind",
    "EventQueue",
    "FAILURE_PRIORITY",
    "Interrupt",
    "Process",
    "ProcessError",
    "ProcessState",
    "SchedulingError",
    "Signal",
    "SimulationError",
    "SlotPool",
    "SlotTicket",
    "Simulator",
    "Timeout",
    "TraceEntry",
    "TraceRecorder",
]
