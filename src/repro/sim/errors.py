"""Exceptions used by the discrete-event simulation kernel."""

from __future__ import annotations

from typing import Any


class SimulationError(RuntimeError):
    """Base class for kernel-level errors."""


class SchedulingError(SimulationError):
    """An event was scheduled in the past or on a stopped simulator."""


class ProcessError(SimulationError):
    """A process was used in an invalid state (e.g. interrupting a
    process that already terminated)."""


class Interrupt(Exception):
    """Thrown *into* a process generator when it is interrupted.

    The interrupting party supplies an arbitrary ``cause`` (for this
    project, usually a :class:`repro.failures.generator.Failure`), which
    the interrupted process inspects to decide how to recover.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Interrupt(cause={self.cause!r})"
