"""Pending-event set: a binary heap with lazy cancellation.

The classic DES pending-event structure.  ``cancel`` is O(1) (a flag on
the event); cancelled events are dropped when they reach the top of the
heap, so each event is pushed and popped at most once and all operations
stay O(log n) amortized.
"""

from __future__ import annotations

import heapq
from typing import Iterator, List, Optional

from repro.sim.events import Event


class EventQueue:
    """Min-heap of :class:`Event` ordered by ``(time, priority, seq)``."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._live = 0

    def __len__(self) -> int:
        """Number of *live* (non-cancelled) events."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, event: Event) -> None:
        """Insert *event*."""
        if event.cancelled:
            raise ValueError("cannot schedule a cancelled event")
        heapq.heappush(self._heap, event)
        self._live += 1

    def notify_cancelled(self) -> None:
        """Account for one event having been cancelled in place.

        Callers cancel events by calling :meth:`Event.cancel` and must
        then call this exactly once so the live count stays accurate.
        :meth:`repro.sim.engine.Simulator.cancel` does this pairing.
        """
        self._live -= 1

    def pop(self) -> Event:
        """Remove and return the earliest live event.

        Raises :class:`IndexError` when no live events remain.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        raise IndexError("pop from empty EventQueue")

    def peek(self) -> Optional[Event]:
        """Return the earliest live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0] if self._heap else None

    def peek_time(self) -> Optional[float]:
        """Simulated time of the next live event, or None if empty."""
        head = self.peek()
        return head.time if head is not None else None

    def clear(self) -> None:
        """Drop all events."""
        self._heap.clear()
        self._live = 0

    def __iter__(self) -> Iterator[Event]:
        """Iterate over live events in heap (not chronological) order."""
        return (e for e in self._heap if not e.cancelled)
