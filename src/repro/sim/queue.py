"""Pending-event set: a binary heap with lazy cancellation.

The classic DES pending-event structure.  ``cancel`` is O(1) (a flag on
the event); cancelled events are dropped when they reach the top of the
heap, so each event is pushed and popped at most once and all operations
stay O(log n) amortized.  When cancelled entries come to dominate the
heap (heavy interrupt traffic) the queue compacts itself: survivors are
re-heapified, which preserves pop order exactly because sort keys
``(time, priority, seq)`` are unique.
"""

from __future__ import annotations

import heapq
from typing import Iterator, List, Optional

from repro.sim.events import Event


class EventQueue:
    """Min-heap of :class:`Event` ordered by ``(time, priority, seq)``."""

    #: Compact the heap when it holds at least this many cancelled
    #: entries *and* they outnumber the live ones — the O(n) rebuild is
    #: then amortized against the >= n/2 dead entries it removes.
    _COMPACT_MIN_DEAD = 64

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._live = 0

    def __len__(self) -> int:
        """Number of *live* (non-cancelled) events."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, event: Event) -> None:
        """Insert *event*."""
        if event.cancelled:
            raise ValueError("cannot schedule a cancelled event")
        event.in_queue = True
        heapq.heappush(self._heap, event)
        self._live += 1

    def notify_cancelled(self) -> None:
        """Account for one event having been cancelled in place.

        Callers cancel events by calling :meth:`Event.cancel` and must
        then call this exactly once so the live count stays accurate.
        :meth:`repro.sim.engine.Simulator.cancel` does this pairing.
        """
        self._live -= 1
        dead = len(self._heap) - self._live
        if dead >= self._COMPACT_MIN_DEAD and dead > self._live:
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without its cancelled entries."""
        survivors = []
        for event in self._heap:
            if event.cancelled:
                event.in_queue = False
            else:
                survivors.append(event)
        heapq.heapify(survivors)
        self._heap = survivors

    def _prune(self) -> None:
        """Drop cancelled entries from the top of the heap — the single
        tombstone scan shared by :meth:`peek`, :meth:`pop`, and
        :meth:`pop_due`."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap).in_queue = False

    def pop(self) -> Event:
        """Remove and return the earliest live event.

        Raises :class:`IndexError` when no live events remain.
        """
        self._prune()
        if not self._heap:
            raise IndexError("pop from empty EventQueue")
        event = heapq.heappop(self._heap)
        event.in_queue = False
        self._live -= 1
        return event

    def pop_due(self, limit: Optional[float] = None) -> Optional[Event]:
        """Remove and return the earliest live event with ``time <=
        limit`` (no limit when None); None when the queue is empty or
        the head lies beyond *limit*.

        This fuses the peek-then-pop pair of the kernel loop so each
        heap entry is tombstone-scanned once.
        """
        self._prune()
        heap = self._heap
        if not heap or (limit is not None and heap[0].time > limit):
            return None
        event = heapq.heappop(heap)
        event.in_queue = False
        self._live -= 1
        return event

    def peek(self) -> Optional[Event]:
        """Return the earliest live event without removing it."""
        self._prune()
        return self._heap[0] if self._heap else None

    def peek_time(self) -> Optional[float]:
        """Simulated time of the next live event, or None if empty."""
        head = self.peek()
        return head.time if head is not None else None

    def clear(self) -> None:
        """Drop all events."""
        for event in self._heap:
            event.in_queue = False
        self._heap.clear()
        self._live = 0

    def __iter__(self) -> Iterator[Event]:
        """Iterate over live events in heap (not chronological) order."""
        return (e for e in self._heap if not e.cancelled)
