"""Deterministic time-varying grid curves (electricity price, carbon
intensity).

The paper's Resilience Selection maximizes node-efficiency; pricing the
joules that :mod:`repro.energy` accounts requires a model of *when*
they are drawn, because real facilities pay time-varying electricity
rates and grid carbon intensity follows daily generation cycles.  This
module supplies the curve models the grid subsystem folds executions
against:

- :class:`FlatCurve` — a constant level (the degenerate tariff);
- :class:`PiecewiseCurve` — a piecewise-constant step schedule,
  optionally periodic (the classic off-peak / shoulder / peak tariff);
- :class:`SinusoidalCurve` — a daily sinusoid with an optional second
  harmonic, reproducing the morning/evening double peak of real demand
  curves;
- :class:`TraceCurve` — replay of a recorded curve from a versioned
  JSONL file with a SHA-256 digest, mirroring
  :mod:`repro.failures.trace` byte for byte in spirit: record once,
  replay everywhere, identity by digest.

Every curve is evaluable at any simulated instant (:meth:`Curve
.value_at`) **and** integrable in closed form over ``[t0, t1)``
(:meth:`Curve.integral`) — no quadrature, no sampling grid — so cost
accounting is exact and independent of how the execution engine
stepped through time.  The failure-horizon fast path therefore stays
bit-identical: accounting only ever sees the final
:class:`~repro.core.execution.ExecutionStats`, never the step
sequence.

Units: curve time is **seconds**; a price curve is in **USD per kWh**
and a carbon curve in **gCO2 per kWh** (the ``unit`` attribute records
which role an instance plays).
"""

from __future__ import annotations

import abc
import hashlib
import json
import math
import os
from bisect import bisect_right
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Joules per kilowatt-hour (the bridge between the engine's
#: node-second energy accounting and grid tariffs).
J_PER_KWH = 3_600_000.0

#: Seconds per day (the default period of daily curves).
DAY_S = 86_400.0

#: Unit tag of electricity price curves (USD per kWh).
UNIT_PRICE = "usd_per_kwh"

#: Unit tag of grid carbon-intensity curves (gCO2 per kWh).
UNIT_CARBON = "gco2_per_kwh"


def _require_finite(name: str, value: float) -> float:
    value = float(value)
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    return value


class Curve(abc.ABC):
    """A nonnegative function of time with exact interval integrals.

    Subclasses guarantee that :meth:`integral` is the closed-form
    antiderivative difference — bit-identical however the caller
    partitions an interval is *not* promised (float addition is not
    associative), but evaluating the same ``[t0, t1)`` always yields
    the same bits on every worker, cache state, and execution path.
    """

    #: Short kind tag (``flat`` / ``piecewise`` / ``sinusoidal`` /
    #: ``trace``), mirrored in scenario documents.
    kind: str = ""

    #: What the level means (:data:`UNIT_PRICE`, :data:`UNIT_CARBON`,
    #: or a free-form tag; empty when unspecified).
    unit: str = ""

    @abc.abstractmethod
    def value_at(self, t: float) -> float:
        """The curve level at instant *t* (seconds)."""

    @abc.abstractmethod
    def integral(self, t0: float, t1: float) -> float:
        """The exact integral over ``[t0, t1)``; 0.0 when ``t1 <= t0``."""

    def mean(self, t0: float, t1: float) -> float:
        """The exact mean level over ``[t0, t1)`` (the point value at
        *t0* for an empty interval, so zero-length executions still
        price at a well-defined instant)."""
        if t1 <= t0:
            return self.value_at(t0)
        return self.integral(t0, t1) / (t1 - t0)

    @abc.abstractmethod
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe description (provenance stamps and exports)."""


class FlatCurve(Curve):
    """A constant level at all times."""

    kind = "flat"

    def __init__(self, level: float, unit: str = "") -> None:
        self.level = _require_finite("level", level)
        if self.level < 0:
            raise ValueError(f"level must be >= 0, got {self.level}")
        self.unit = unit

    def value_at(self, t: float) -> float:
        """The constant level, at any *t*."""
        return self.level

    def integral(self, t0: float, t1: float) -> float:
        """``level * (t1 - t0)``; 0.0 for an empty interval."""
        if t1 <= t0:
            return 0.0
        return self.level * (t1 - t0)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe description (kind, unit, level)."""
        return {"kind": self.kind, "unit": self.unit, "level": self.level}


class PiecewiseCurve(Curve):
    """A piecewise-constant step schedule.

    *times_s* are the segment start offsets (the first must be 0.0,
    strictly increasing), *levels* the level of each segment.  With
    *period_s* the schedule repeats forever (every start offset must
    fall inside the period); without it the last level holds to
    infinity and the first level extends to ``-inf``.
    """

    kind = "piecewise"

    def __init__(
        self,
        times_s: Sequence[float],
        levels: Sequence[float],
        period_s: Optional[float] = None,
        unit: str = "",
    ) -> None:
        times = [_require_finite("times_s", t) for t in times_s]
        values = [_require_finite("levels", v) for v in levels]
        if not times:
            raise ValueError("piecewise curve needs at least one segment")
        if len(times) != len(values):
            raise ValueError(
                f"times_s and levels must pair up, got "
                f"{len(times)} times and {len(values)} levels"
            )
        if times[0] != 0.0:
            raise ValueError(
                f"the first segment must start at 0.0, got {times[0]}"
            )
        for a, b in zip(times, times[1:]):
            if b <= a:
                raise ValueError(
                    f"segment starts must be strictly increasing, "
                    f"got {a} then {b}"
                )
        for v in values:
            if v < 0:
                raise ValueError(f"levels must be >= 0, got {v}")
        if period_s is not None:
            period_s = _require_finite("period_s", period_s)
            if period_s <= 0:
                raise ValueError(f"period_s must be > 0, got {period_s}")
            if times[-1] >= period_s:
                raise ValueError(
                    f"segment starts must fall inside the period, "
                    f"got {times[-1]} >= {period_s}"
                )
        self.times_s: Tuple[float, ...] = tuple(times)
        self.levels: Tuple[float, ...] = tuple(values)
        self.period_s = period_s
        self.unit = unit
        # Cumulative integral from offset 0 to each segment start, and
        # over one full period, precomputed once so interval integrals
        # are pure arithmetic.
        cumulative: List[float] = [0.0]
        for i in range(1, len(times)):
            cumulative.append(
                cumulative[-1] + values[i - 1] * (times[i] - times[i - 1])
            )
        self._cumulative: Tuple[float, ...] = tuple(cumulative)
        if period_s is not None:
            self._period_integral = (
                cumulative[-1] + values[-1] * (period_s - times[-1])
            )
        else:
            self._period_integral = 0.0

    def _phase(self, t: float) -> float:
        """Map *t* onto one period (identity when aperiodic)."""
        if self.period_s is None:
            return t
        k = math.floor(t / self.period_s)
        return t - k * self.period_s

    def value_at(self, t: float) -> float:
        """The level of the segment containing *t* (period-folded)."""
        phase = self._phase(t)
        index = bisect_right(self.times_s, phase) - 1
        if index < 0:
            index = 0
        return self.levels[index]

    def _antiderivative(self, t: float) -> float:
        """Integral from offset 0 to *t* (t >= 0 after phase folding;
        negative aperiodic times extend the first segment)."""
        if self.period_s is None:
            if t <= 0.0:
                return self.levels[0] * t
            index = bisect_right(self.times_s, t) - 1
            return self._cumulative[index] + self.levels[index] * (
                t - self.times_s[index]
            )
        k = math.floor(t / self.period_s)
        phase = t - k * self.period_s
        index = bisect_right(self.times_s, phase) - 1
        if index < 0:  # pragma: no cover - phase is always >= 0
            index = 0
        partial = self._cumulative[index] + self.levels[index] * (
            phase - self.times_s[index]
        )
        return k * self._period_integral + partial

    def integral(self, t0: float, t1: float) -> float:
        """Exact step-sum integral over ``[t0, t1)`` via the
        closed-form antiderivative (whole periods multiply out)."""
        if t1 <= t0:
            return 0.0
        return self._antiderivative(t1) - self._antiderivative(t0)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe description (segment starts, levels, period)."""
        return {
            "kind": self.kind,
            "unit": self.unit,
            "times_s": list(self.times_s),
            "levels": list(self.levels),
            "period_s": self.period_s,
        }


class SinusoidalCurve(Curve):
    """A daily sinusoid with an optional second harmonic.

    ``value(t) = base + amplitude * cos(w (t - peak_s))
    + amplitude2 * cos(2 w (t - peak2_s))`` with ``w = 2 pi /
    period_s``.  The fundamental peaks once per period at *peak_s*;
    the second harmonic adds two bumps per period (at *peak2_s* and
    half a period later), which is how demand curves get their
    morning/evening double peak.  ``base >= amplitude + amplitude2``
    keeps the curve nonnegative everywhere.
    """

    kind = "sinusoidal"

    def __init__(
        self,
        base: float,
        amplitude: float,
        period_s: float = DAY_S,
        peak_s: float = 0.0,
        amplitude2: float = 0.0,
        peak2_s: float = 0.0,
        unit: str = "",
    ) -> None:
        self.base = _require_finite("base", base)
        self.amplitude = _require_finite("amplitude", amplitude)
        self.period_s = _require_finite("period_s", period_s)
        self.peak_s = _require_finite("peak_s", peak_s)
        self.amplitude2 = _require_finite("amplitude2", amplitude2)
        self.peak2_s = _require_finite("peak2_s", peak2_s)
        self.unit = unit
        if self.period_s <= 0:
            raise ValueError(f"period_s must be > 0, got {self.period_s}")
        if self.amplitude < 0:
            raise ValueError(
                f"amplitude must be >= 0, got {self.amplitude}"
            )
        if self.amplitude2 < 0:
            raise ValueError(
                f"amplitude2 must be >= 0, got {self.amplitude2}"
            )
        if self.base < self.amplitude + self.amplitude2:
            raise ValueError(
                f"base must be >= amplitude + amplitude2 so the curve "
                f"stays nonnegative, got base {self.base} < "
                f"{self.amplitude + self.amplitude2}"
            )
        self._w = 2.0 * math.pi / self.period_s

    def value_at(self, t: float) -> float:
        """Fundamental plus second harmonic, evaluated at *t*."""
        w = self._w
        return (
            self.base
            + self.amplitude * math.cos(w * (t - self.peak_s))
            + self.amplitude2 * math.cos(2.0 * w * (t - self.peak2_s))
        )

    def _antiderivative(self, t: float) -> float:
        w = self._w
        return (
            self.base * t
            + (self.amplitude / w) * math.sin(w * (t - self.peak_s))
            + (self.amplitude2 / (2.0 * w))
            * math.sin(2.0 * w * (t - self.peak2_s))
        )

    def integral(self, t0: float, t1: float) -> float:
        """Exact sinusoid integral over ``[t0, t1)`` (sine
        antiderivative difference; no quadrature anywhere)."""
        if t1 <= t0:
            return 0.0
        return self._antiderivative(t1) - self._antiderivative(t0)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe description (harmonic parameters)."""
        return {
            "kind": self.kind,
            "unit": self.unit,
            "base": self.base,
            "amplitude": self.amplitude,
            "period_s": self.period_s,
            "peak_s": self.peak_s,
            "amplitude2": self.amplitude2,
            "peak2_s": self.peak2_s,
        }


class TraceCurve(PiecewiseCurve):
    """A recorded curve replayed from a versioned JSONL file.

    Semantically a :class:`PiecewiseCurve` whose steps came from disk;
    its identity is the SHA-256 digest of the canonical JSONL text
    (:func:`curve_digest`), which cache keys and provenance stamps
    carry — the same pattern :class:`repro.failures.trace.FailureTrace`
    uses for failure realizations.
    """

    kind = "trace"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe description: point count plus content digest
        (the full step list lives in the JSONL file, not exports)."""
        return {
            "kind": self.kind,
            "unit": self.unit,
            "points": len(self.times_s),
            "period_s": self.period_s,
            "digest": curve_digest(self),
        }


# ---------------------------------------------------------------------------
# Versioned JSONL persistence (mirrors repro.failures.trace)
# ---------------------------------------------------------------------------

#: Format marker in the header record of every curve file.
CURVE_FORMAT = "repro-grid-curve"

#: Bumped whenever the on-disk layout changes; mismatches are errors,
#: never silent misreads.
CURVE_FORMAT_VERSION = 1


class CurveFormatError(ValueError):
    """A malformed or version-skewed curve file; one-line message."""


def curve_to_jsonl(curve: TraceCurve) -> str:
    """The canonical JSONL text of *curve* (what :func:`save_curve`
    writes); stable byte-for-byte for equal curves."""
    header: Dict[str, Any] = {
        "format": CURVE_FORMAT,
        "version": CURVE_FORMAT_VERSION,
        "unit": curve.unit,
        "period_s": curve.period_s,
        "points": len(curve.times_s),
    }
    lines = [json.dumps(header, sort_keys=True, separators=(",", ":"))]
    for t, v in zip(curve.times_s, curve.levels):
        lines.append(
            json.dumps(
                {"t": t, "v": v}, sort_keys=True, separators=(",", ":")
            )
        )
    return "\n".join(lines) + "\n"


def curve_digest(curve: TraceCurve) -> str:
    """SHA-256 of the canonical JSONL text — the curve's identity for
    cache keys and provenance stamps."""
    return hashlib.sha256(curve_to_jsonl(curve).encode("utf-8")).hexdigest()


def save_curve(curve: TraceCurve, path: "os.PathLike | str") -> None:
    """Write *curve* to *path* in the versioned JSONL format."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(curve_to_jsonl(curve))


def curve_from_jsonl(text: str, source: str = "<curve>") -> TraceCurve:
    """Parse the JSONL text of a curve (inverse of
    :func:`curve_to_jsonl`).

    Raises :class:`CurveFormatError` with a one-line message on any
    malformed header, record, or version mismatch (the scenario
    validator surfaces it field-qualified); *source* names the origin
    in the message.
    """
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise CurveFormatError(f"{source}: empty curve file")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise CurveFormatError(f"{source}: header is not valid JSON: {exc}")
    if not isinstance(header, dict) or header.get("format") != CURVE_FORMAT:
        raise CurveFormatError(
            f"{source}: not a {CURVE_FORMAT} file (missing format header)"
        )
    if header.get("version") != CURVE_FORMAT_VERSION:
        raise CurveFormatError(
            f"{source}: curve format version {header.get('version')!r} "
            f"unsupported (expected {CURVE_FORMAT_VERSION})"
        )
    declared = header.get("points")
    if not isinstance(declared, int) or declared != len(lines) - 1:
        raise CurveFormatError(
            f"{source}: header declares {declared!r} points "
            f"but the file holds {len(lines) - 1} (truncated?)"
        )
    times: List[float] = []
    levels: List[float] = []
    for number, line in enumerate(lines[1:], start=2):
        try:
            record = json.loads(line)
            times.append(float(record["t"]))
            levels.append(float(record["v"]))
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise CurveFormatError(f"{source}: line {number}: bad record: {exc}")
    period = header.get("period_s")
    try:
        return TraceCurve(
            times_s=times,
            levels=levels,
            period_s=None if period is None else float(period),
            unit=str(header.get("unit", "")),
        )
    except (TypeError, ValueError) as exc:
        raise CurveFormatError(f"{source}: invalid curve: {exc}")


def load_curve(path: "os.PathLike | str") -> TraceCurve:
    """Read a curve written by :func:`save_curve`.

    Raises :class:`CurveFormatError` with a one-line message on any
    unreadable file or malformed content.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
    except OSError as exc:
        raise CurveFormatError(f"cannot read curve file: {exc}") from None
    return curve_from_jsonl(text, source=str(path))


#: Semantic aliases: a *price* curve is any :class:`Curve` in USD/kWh,
#: a *carbon* curve any :class:`Curve` in gCO2/kWh; the ``unit``
#: attribute on the instance says which role it plays.
PriceCurve = Curve
CarbonCurve = Curve
