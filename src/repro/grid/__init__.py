"""Grid-aware cost & carbon subsystem.

Prices the joules that :mod:`repro.energy` accounts against
deterministic time-varying electricity price and carbon-intensity
curves (:mod:`repro.grid.curves`), folding each execution's activity
breakdown into a :class:`~repro.grid.accountant.CostBreakdown` of USD
and gCO2 (:mod:`repro.grid.accountant`).  The grid-aware technique
selector lives in :mod:`repro.resilience.grid_aware`; scenario specs
opt in with a ``[grid]`` block (docs/ENERGY_COST.md).
"""

from repro.grid.accountant import (
    CostBreakdown,
    account_energy,
    account_execution,
)
from repro.grid.curves import (
    CURVE_FORMAT,
    CURVE_FORMAT_VERSION,
    DAY_S,
    J_PER_KWH,
    UNIT_CARBON,
    UNIT_PRICE,
    CarbonCurve,
    Curve,
    CurveFormatError,
    FlatCurve,
    PiecewiseCurve,
    PriceCurve,
    SinusoidalCurve,
    TraceCurve,
    curve_digest,
    curve_from_jsonl,
    curve_to_jsonl,
    load_curve,
    save_curve,
)

__all__ = [
    "CURVE_FORMAT",
    "CURVE_FORMAT_VERSION",
    "DAY_S",
    "J_PER_KWH",
    "UNIT_CARBON",
    "UNIT_PRICE",
    "CarbonCurve",
    "CostBreakdown",
    "Curve",
    "CurveFormatError",
    "FlatCurve",
    "PiecewiseCurve",
    "PriceCurve",
    "SinusoidalCurve",
    "TraceCurve",
    "account_energy",
    "account_execution",
    "curve_digest",
    "curve_from_jsonl",
    "curve_to_jsonl",
    "load_curve",
    "save_curve",
]
