"""The cost/carbon accountant: joules folded against grid curves.

:func:`repro.energy.model.energy_of` splits one execution's
node-seconds into work / rework / checkpoint / restart joules.  This
module prices those joules against time-varying grid curves: each
activity's energy is charged at the **exact closed-form mean** of the
curve over the execution window ``[t0, t1)`` (an integral, never a
point sample), producing a :class:`CostBreakdown` in USD and gCO2 per
activity.

The folding is deliberately *mean-field*: the engine reports aggregate
per-activity durations, not a timestamped activity log (the
failure-horizon fast path skips whole iterations precisely to avoid
producing one), so each activity's draw is spread uniformly over the
execution window and weighted by the curve's exact mean there.  That
makes accounting a pure function of :class:`~repro.core.execution
.ExecutionStats` — bit-identical across the fast and stepped paths,
any ``--jobs`` fan-out, cache replay, and service-vs-CLI execution —
while still integrating the curve in closed form rather than sampling
it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.execution import ExecutionStats
from repro.energy.model import EnergyBreakdown, PowerModel, energy_of
from repro.grid.curves import J_PER_KWH, Curve


@dataclass(frozen=True)
class CostBreakdown:
    """USD and gCO2 by activity for one execution window.

    Components are zero when the corresponding curve is absent (a
    carbon-only scenario prices no dollars, and vice versa);
    ``energy_kwh`` always carries the underlying kilowatt-hours.
    """

    work_usd: float
    rework_usd: float
    checkpoint_usd: float
    restart_usd: float
    work_g: float
    rework_g: float
    checkpoint_g: float
    restart_g: float
    energy_kwh: float

    @property
    def total_usd(self) -> float:
        """Total electricity cost, USD."""
        return (
            self.work_usd
            + self.rework_usd
            + self.checkpoint_usd
            + self.restart_usd
        )

    @property
    def total_g(self) -> float:
        """Total emitted carbon, gCO2."""
        return self.work_g + self.rework_g + self.checkpoint_g + self.restart_g


def account_energy(
    breakdown: EnergyBreakdown,
    t0: float,
    t1: float,
    price: Optional[Curve] = None,
    carbon: Optional[Curve] = None,
) -> CostBreakdown:
    """Price an :class:`EnergyBreakdown` drawn over ``[t0, t1)``.

    *price* is a USD/kWh curve, *carbon* a gCO2/kWh curve; either may
    be None (that dimension prices to zero).  The charge rate is the
    curve's exact mean over the window, so two executions with equal
    breakdowns and equal windows always price identically.
    """
    price_rate = price.mean(t0, t1) if price is not None else 0.0
    carbon_rate = carbon.mean(t0, t1) if carbon is not None else 0.0
    work_kwh = breakdown.work_j / J_PER_KWH
    rework_kwh = breakdown.rework_j / J_PER_KWH
    checkpoint_kwh = breakdown.checkpoint_j / J_PER_KWH
    restart_kwh = breakdown.restart_j / J_PER_KWH
    return CostBreakdown(
        work_usd=work_kwh * price_rate,
        rework_usd=rework_kwh * price_rate,
        checkpoint_usd=checkpoint_kwh * price_rate,
        restart_usd=restart_kwh * price_rate,
        work_g=work_kwh * carbon_rate,
        rework_g=rework_kwh * carbon_rate,
        checkpoint_g=checkpoint_kwh * carbon_rate,
        restart_g=restart_kwh * carbon_rate,
        energy_kwh=breakdown.total_j / J_PER_KWH,
    )


def account_execution(
    stats: ExecutionStats,
    power: PowerModel = PowerModel(),
    price: Optional[Curve] = None,
    carbon: Optional[Curve] = None,
    offset_s: float = 0.0,
) -> CostBreakdown:
    """Price one finished execution against the grid curves.

    *offset_s* anchors simulation time 0 on the curves' clock (a
    scenario's ``start_hour`` times 3600), so the same run priced at
    08:00 and at 20:00 sees different tariff windows.
    """
    breakdown = energy_of(stats, power)
    return account_energy(
        breakdown,
        t0=offset_s + stats.start_time,
        t1=offset_s + stats.end_time,
        price=price,
        carbon=carbon,
    )
