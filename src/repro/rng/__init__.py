"""Reproducible random substrate: named streams, distributions, and
Poisson arrival processes."""

from repro.rng.distributions import (
    DiscretePMF,
    choice,
    exponential,
    uniform,
    uniform_int,
)
from repro.rng.poisson import PoissonProcess, VariableRatePoisson
from repro.rng.streams import StreamFactory

__all__ = [
    "DiscretePMF",
    "PoissonProcess",
    "StreamFactory",
    "VariableRatePoisson",
    "choice",
    "exponential",
    "uniform",
    "uniform_int",
]
