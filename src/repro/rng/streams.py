"""Reproducible named random streams.

Each stochastic component of the simulator (failure times, failure
locations, severities, arrivals, application attributes, ...) draws from
its own independent stream so that changing how one component consumes
randomness does not perturb the others — the standard variance-reduction
discipline for simulation studies, and what lets the paper compare
resilience techniques "using the same sets of arriving applications"
(Sec. VI).

Streams are derived from a root seed with NumPy's ``SeedSequence.spawn``
keyed by stream name, so ``StreamFactory(42).stream("failures")`` is
identical across runs and platforms.
"""

from __future__ import annotations

import hashlib
import zlib
from typing import Dict, Union

import numpy as np


def _name_key(name: str) -> int:
    """Stable 32-bit key for a stream name."""
    return zlib.crc32(name.encode("utf-8")) & 0xFFFFFFFF


def derive_seed(root_seed: int, *components: Union[int, str]) -> int:
    """Deterministic 63-bit seed derived from *root_seed* and a tuple of
    identifying components (cell key, trial index, ...).

    SHA-256 based, so distinct component tuples yield distinct seeds in
    practice (no birthday collisions at experiment scale, unlike the
    CRC-32 name keys), and the value is stable across processes,
    platforms, and Python versions — the property the parallel trial
    executor relies on for serial/parallel bit-identity.
    """
    for part in components:
        if not isinstance(part, (int, str)):
            raise TypeError(
                f"seed components must be int or str, got {type(part).__name__}"
            )
    material = repr((int(root_seed),) + tuple(components))
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


class StreamFactory:
    """Factory of independent, named ``numpy.random.Generator`` streams.

    Parameters
    ----------
    seed:
        Root seed.  Two factories with the same seed produce identical
        streams for identical names.
    """

    def __init__(self, seed: int) -> None:
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an integer, got {type(seed).__name__}")
        self.seed = int(seed)
        self._cache: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for *name*, creating it on first use.

        Repeated calls with the same name return the *same* generator
        object (its state advances as it is consumed).
        """
        gen = self._cache.get(name)
        if gen is None:
            seq = np.random.SeedSequence(entropy=self.seed, spawn_key=(_name_key(name),))
            gen = np.random.default_rng(seq)
            self._cache[name] = gen
        return gen

    def fresh(self, name: str) -> np.random.Generator:
        """Return a brand-new generator for *name* with its initial
        state (unlike :meth:`stream`, never cached)."""
        seq = np.random.SeedSequence(entropy=self.seed, spawn_key=(_name_key(name),))
        return np.random.default_rng(seq)

    def spawn(self, name: str) -> "StreamFactory":
        """Derive a child factory (e.g. one per trial) keyed by *name*."""
        child_seed = (self.seed * 1_000_003 + _name_key(name)) % (2**63)
        return StreamFactory(child_seed)

    def spawn_indexed(self, index: int) -> "StreamFactory":
        """Derive a child factory keyed by a trial/pattern index."""
        if index < 0:
            raise ValueError(f"index must be >= 0, got {index}")
        return self.spawn(f"child-{index}")

    def for_trial(self, cell: str, trial: int) -> "StreamFactory":
        """Derive the child factory for one (*cell*, *trial*) pair.

        Unlike :meth:`spawn_indexed` — whose children are shared across
        cells so techniques see common random numbers — these children
        are unique per (cell, trial) pair via :func:`derive_seed`,
        giving fully independent replications when a study opts out of
        common-random-number pairing (``SingleAppConfig.stream_key``).
        """
        if trial < 0:
            raise ValueError(f"trial must be >= 0, got {trial}")
        return StreamFactory(derive_seed(self.seed, "trial", str(cell), int(trial)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StreamFactory(seed={self.seed})"
