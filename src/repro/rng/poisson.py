"""Poisson arrival processes.

Both system failures (Sec. III-E, Eq. 2) and application arrivals
(Sec. VI) are homogeneous Poisson processes.  :class:`PoissonProcess`
generates successive arrival times; the failure injector additionally
needs a *rate that changes over time* (the system failure rate is
``active_nodes / MTBF``, and the set of active nodes changes as
applications map and finish), which :class:`VariableRatePoisson`
supports via the standard memorylessness re-draw: whenever the rate
changes, the next inter-arrival is simply resampled at the new rate.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.rng.distributions import exponential


class PoissonProcess:
    """Homogeneous Poisson process with fixed *rate* (events/second)."""

    def __init__(self, rng: np.random.Generator, rate: float) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        self._rng = rng
        self.rate = rate
        self.last_arrival = 0.0

    def next_interarrival(self) -> float:
        """Draw the next inter-arrival time."""
        return exponential(self._rng, self.rate)

    def next_arrival(self) -> float:
        """Advance to and return the next absolute arrival time."""
        self.last_arrival += self.next_interarrival()
        return self.last_arrival

    def arrivals(self, count: int) -> np.ndarray:
        """Vector of the next *count* absolute arrival times."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        gaps = self._rng.exponential(1.0 / self.rate, size=count)
        times = self.last_arrival + np.cumsum(gaps)
        if count:
            self.last_arrival = float(times[-1])
        return times

    def __iter__(self) -> Iterator[float]:
        while True:
            yield self.next_arrival()


class VariableRatePoisson:
    """Poisson process whose rate may be changed between arrivals.

    By the memorylessness of the exponential distribution, the process
    conditioned on "no arrival yet" restarts afresh, so on a rate change
    the next inter-arrival is validly re-drawn at the new rate from the
    current time.  A rate of zero suspends the process (no next arrival).
    """

    def __init__(self, rng: np.random.Generator, rate: float = 0.0) -> None:
        if rate < 0:
            raise ValueError(f"rate must be >= 0, got {rate}")
        self._rng = rng
        self._rate = rate

    @property
    def rate(self) -> float:
        """Current rate, events/second."""
        return self._rate

    def set_rate(self, rate: float) -> None:
        """Change the rate (0 suspends the process)."""
        if rate < 0:
            raise ValueError(f"rate must be >= 0, got {rate}")
        self._rate = rate

    def next_interarrival(self) -> Optional[float]:
        """Inter-arrival draw at the current rate, or None if the rate
        is zero (process suspended)."""
        if self._rate == 0.0:
            return None
        return exponential(self._rng, self._rate)
