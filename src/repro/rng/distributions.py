"""Random-variate distributions used by the models.

Thin, explicitly-parameterized wrappers over ``numpy.random.Generator``
draws, plus a :class:`DiscretePMF` used for failure severities
(Sec. III-E: "the resulting discrete set of ratios for each level is
used to create a probability mass function").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


def exponential(rng: np.random.Generator, rate: float) -> float:
    """One draw from Exp(rate); mean 1/rate.

    Used for failure inter-arrival times (Sec. III-E) and application
    inter-arrival times (Sec. VI).
    """
    if rate <= 0:
        raise ValueError(f"rate must be > 0, got {rate}")
    return float(rng.exponential(1.0 / rate))


def uniform(rng: np.random.Generator, low: float, high: float) -> float:
    """One draw from U(low, high)."""
    if high < low:
        raise ValueError(f"need low <= high, got ({low}, {high})")
    return float(rng.uniform(low, high))


def uniform_int(rng: np.random.Generator, low: int, high: int) -> int:
    """One draw from the integers {low, ..., high} (inclusive)."""
    if high < low:
        raise ValueError(f"need low <= high, got ({low}, {high})")
    return int(rng.integers(low, high + 1))


def choice(rng: np.random.Generator, options: Sequence) -> object:
    """Uniformly pick one element of *options*."""
    if len(options) == 0:
        raise ValueError("cannot choose from an empty sequence")
    return options[int(rng.integers(0, len(options)))]


@dataclass(frozen=True)
class DiscretePMF:
    """A discrete probability mass function over ``len(probabilities)``
    categories (0-indexed).

    Probabilities are normalized at construction; they must be
    non-negative and not all zero.
    """

    probabilities: tuple[float, ...]

    def __init__(self, probabilities: Sequence[float]) -> None:
        probs = np.asarray(list(probabilities), dtype=float)
        if probs.ndim != 1 or probs.size == 0:
            raise ValueError("probabilities must be a non-empty 1-D sequence")
        if np.any(probs < 0):
            raise ValueError(f"probabilities must be >= 0, got {probs}")
        total = probs.sum()
        if total <= 0:
            raise ValueError("probabilities must not sum to zero")
        object.__setattr__(self, "probabilities", tuple(probs / total))

    def __len__(self) -> int:
        return len(self.probabilities)

    def sample(self, rng: np.random.Generator) -> int:
        """Draw a category index."""
        return int(rng.choice(len(self.probabilities), p=self.probabilities))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw *n* category indices at once (vectorized)."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        return rng.choice(len(self.probabilities), size=n, p=self.probabilities)

    def probability(self, category: int) -> float:
        """P(X = category)."""
        return self.probabilities[category]

    def tail(self, category: int) -> float:
        """P(X >= category)."""
        return float(sum(self.probabilities[category:]))
