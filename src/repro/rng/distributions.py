"""Random-variate distributions used by the models.

Thin, explicitly-parameterized wrappers over ``numpy.random.Generator``
draws, plus a :class:`DiscretePMF` used for failure severities
(Sec. III-E: "the resulting discrete set of ratios for each level is
used to create a probability mass function").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


def exponential(rng: np.random.Generator, rate: float) -> float:
    """One draw from Exp(rate); mean 1/rate.

    Used for failure inter-arrival times (Sec. III-E) and application
    inter-arrival times (Sec. VI).
    """
    if rate <= 0:
        raise ValueError(f"rate must be > 0, got {rate}")
    return float(rng.exponential(1.0 / rate))


def weibull(rng: np.random.Generator, shape: float, scale: float) -> float:
    """One draw from Weibull(shape, scale); mean ``scale * Γ(1 + 1/shape)``.

    ``shape < 1`` gives a decreasing hazard (infant mortality),
    ``shape > 1`` an increasing hazard (aging hardware), and
    ``shape == 1`` recovers Exp(1/scale) exactly — NumPy implements the
    standard Weibull as ``standard_exponential ** (1/shape)``, so the
    shape-1 draw consumes the same underlying variate as
    :func:`exponential` and is bit-identical to it.
    """
    if shape <= 0:
        raise ValueError(f"shape must be > 0, got {shape}")
    if scale <= 0:
        raise ValueError(f"scale must be > 0, got {scale}")
    return float(scale * rng.weibull(shape))


def weibull_scale_for_mean(shape: float, mean: float) -> float:
    """The Weibull scale giving the requested *mean* at *shape*."""
    if shape <= 0:
        raise ValueError(f"shape must be > 0, got {shape}")
    if mean <= 0:
        raise ValueError(f"mean must be > 0, got {mean}")
    return mean / math.gamma(1.0 + 1.0 / shape)


def lognormal(rng: np.random.Generator, mu: float, sigma: float) -> float:
    """One draw from Lognormal(mu, sigma); mean ``exp(mu + sigma²/2)``.

    Heavy right tail for large *sigma*: long quiet stretches punctuated
    by clustered failures, a common empirical fit for HPC interarrival
    logs that Poisson underdisperses.
    """
    if sigma <= 0:
        raise ValueError(f"sigma must be > 0, got {sigma}")
    return float(rng.lognormal(mean=mu, sigma=sigma))


def lognormal_mu_for_mean(mean: float, sigma: float) -> float:
    """The lognormal location giving the requested *mean* at *sigma*."""
    if mean <= 0:
        raise ValueError(f"mean must be > 0, got {mean}")
    if sigma <= 0:
        raise ValueError(f"sigma must be > 0, got {sigma}")
    return math.log(mean) - 0.5 * sigma * sigma


def uniform(rng: np.random.Generator, low: float, high: float) -> float:
    """One draw from U(low, high)."""
    if high < low:
        raise ValueError(f"need low <= high, got ({low}, {high})")
    return float(rng.uniform(low, high))


def uniform_int(rng: np.random.Generator, low: int, high: int) -> int:
    """One draw from the integers {low, ..., high} (inclusive)."""
    if high < low:
        raise ValueError(f"need low <= high, got ({low}, {high})")
    return int(rng.integers(low, high + 1))


def choice(rng: np.random.Generator, options: Sequence) -> object:
    """Uniformly pick one element of *options*."""
    if len(options) == 0:
        raise ValueError("cannot choose from an empty sequence")
    return options[int(rng.integers(0, len(options)))]


@dataclass(frozen=True)
class DiscretePMF:
    """A discrete probability mass function over ``len(probabilities)``
    categories (0-indexed).

    Probabilities are normalized at construction; they must be
    non-negative and not all zero.
    """

    probabilities: tuple[float, ...]

    def __init__(self, probabilities: Sequence[float]) -> None:
        probs = np.asarray(list(probabilities), dtype=float)
        if probs.ndim != 1 or probs.size == 0:
            raise ValueError("probabilities must be a non-empty 1-D sequence")
        if np.any(probs < 0):
            raise ValueError(f"probabilities must be >= 0, got {probs}")
        total = probs.sum()
        if total <= 0:
            raise ValueError("probabilities must not sum to zero")
        object.__setattr__(self, "probabilities", tuple(probs / total))

    def __len__(self) -> int:
        return len(self.probabilities)

    def sample(self, rng: np.random.Generator) -> int:
        """Draw a category index."""
        return int(rng.choice(len(self.probabilities), p=self.probabilities))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw *n* category indices at once (vectorized)."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        return rng.choice(len(self.probabilities), size=n, p=self.probabilities)

    def probability(self, category: int) -> float:
        """P(X = category)."""
        return self.probabilities[category]

    def tail(self, category: int) -> float:
        """P(X >= category)."""
        return float(sum(self.probabilities[category:]))
