"""Default model parameters taken verbatim from the paper.

Every value below is quoted from a specific section of Dauwe et al.
(IPDPSW 2017); parameters the paper leaves implicit are defined in
``DESIGN.md`` under *Substitutions* and are configurable everywhere they
are used — the module-level values here are only defaults.
"""

from __future__ import annotations

from repro.units import MICROSECOND, MINUTE, YEAR, hours

# --------------------------------------------------------------------------
# Simulated exascale system (Sec. III-C), inspired by Sunway TaihuLight.
# --------------------------------------------------------------------------

#: Number of nodes in the simulated exascale system.
EXASCALE_NODES = 120_000

#: CPU cores per node (4x the TaihuLight's 260-ish cores, rounded as in
#: the paper: "a total of 1028 cores per node").
CORES_PER_NODE = 1028

#: Compute throughput per node, TFLOP/s ("approximately 12 TFLOPs").
TFLOPS_PER_NODE = 12.0

#: RAM per node in GB (4x TaihuLight's 32 GB).
MEMORY_PER_NODE_GB = 128.0

#: Aggregate memory bandwidth B_M per node, GB/s (hybrid-memory-cube
#: assumption, Sec. III-C).
MEMORY_BANDWIDTH_GBS = 320.0

# --------------------------------------------------------------------------
# Communication model (Sec. III-F), "NDR InfiniBand".
# --------------------------------------------------------------------------

#: Network latency L in seconds.
NETWORK_LATENCY_S = 0.5 * MICROSECOND

#: Network bandwidth B_N in GB/s.
NETWORK_BANDWIDTH_GBS = 600.0

#: Maximum simultaneous connections per switch, N_S.
SWITCH_CONNECTIONS = 12

# --------------------------------------------------------------------------
# Application model (Sec. III-B).
# --------------------------------------------------------------------------

#: Length of one application time step in seconds ("we assume time steps
#: are one minute in length").
TIME_STEP_S = 1.0 * MINUTE

#: Bounds on application length in time steps (six hours to two days).
MIN_TIME_STEPS = 360
MAX_TIME_STEPS = 2880

#: Memory-per-node choices for the synthetic application types, GB.
APP_MEMORY_CHOICES_GB = (32.0, 64.0)

#: Communication-intensity choices T_C for the synthetic types.
APP_COMM_CHOICES = (0.0, 0.25, 0.5, 0.75)

# --------------------------------------------------------------------------
# Failure model (Sec. III-E and Sec. V).
# --------------------------------------------------------------------------

#: Default per-node mean time between failures, seconds (Sec. V uses a
#: ten-year MTBF; Fig. 3 re-runs with 2.5 years).
DEFAULT_NODE_MTBF_S = 10.0 * YEAR
LOW_NODE_MTBF_S = 2.5 * YEAR

#: Default failure-severity probability mass function for the three
#: checkpoint levels of the multilevel technique.  The paper takes these
#: ratios from BlueGene/L failure logs via Moody et al. [3]; the raw
#: table is not reproduced in the paper, so these defaults encode the
#: literature's qualitative finding that most failures are recoverable
#: from node-local or partner state, calibrated so the Fig. 2 crossover
#: between Multilevel and Parallel Recovery lands at ~25% of the system
#: as the paper reports (see DESIGN.md, substitution #1).
DEFAULT_SEVERITY_PMF = (0.65, 0.20, 0.15)

# --------------------------------------------------------------------------
# Resilience techniques (Sec. IV).
# --------------------------------------------------------------------------

#: Message-logging slowdown slope: mu = 1 + T_C / MESSAGE_LOGGING_DIVISOR
#: (Sec. IV-D gives mu = 1 + T_C/10).
MESSAGE_LOGGING_DIVISOR = 10.0

#: Recovery parallelism for the Parallel Recovery technique: lost work is
#: recomputed this many times faster by spreading the failed node's work
#: across helpers (Meneses et al. [2]; see DESIGN.md substitution #2).
DEFAULT_RECOVERY_PARALLELISM = 4.0

#: Degrees of redundancy evaluated in Figs. 1-3 ("both forms of
#: redundancy"): partial (r = 1.5) and full dual (r = 2.0).
PARTIAL_REDUNDANCY_DEGREE = 1.5
FULL_REDUNDANCY_DEGREE = 2.0

# --------------------------------------------------------------------------
# Section V experiment parameters.
# --------------------------------------------------------------------------

#: Baseline execution time used for the scaling study, seconds
#: ("T_B = 1440 minutes, or one day of execution").
SCALING_STUDY_BASELINE_S = 1440 * MINUTE

#: System fractions examined in Figs. 1-3 (1% ... 100% of the machine).
SCALING_STUDY_FRACTIONS = (0.01, 0.02, 0.03, 0.06, 0.12, 0.25, 0.50, 1.00)

#: Trials per bar in Figs. 1-3.
SCALING_STUDY_TRIALS = 200

# --------------------------------------------------------------------------
# Section VI/VII datacenter study parameters.
# --------------------------------------------------------------------------

#: Number of applications per arrival pattern.
PATTERN_ARRIVALS = 100

#: Number of arrival patterns averaged per bar in Figs. 4-5.
PATTERN_COUNT = 50

#: Mean inter-arrival time of the arrival Poisson process, seconds.
PATTERN_MEAN_INTERARRIVAL_S = hours(2.0)

#: Baseline execution time choices for arriving applications, seconds.
PATTERN_BASELINE_CHOICES_S = (hours(6), hours(12), hours(24), hours(48))

#: System fractions an arriving application may request ("approximately
#: one, two, three, six, twelve, twenty-five, or fifty percent").
PATTERN_FRACTION_CHOICES = (0.01, 0.02, 0.03, 0.06, 0.12, 0.25, 0.50)

#: Deadline slack multiplier bounds U(1.2, 2.0) of Eq. 1.
DEADLINE_U_LOW = 1.2
DEADLINE_U_HIGH = 2.0
