"""NAS BT communication-fraction model (after reference [6]).

The paper's synthetic types are "inspired by an analysis of today's
scientific benchmark suites operating at scale" — specifically Van der
Wijngaart et al.'s exascale extrapolation of the NAS Block-Tridiagonal
benchmark, which found that "at extreme scales communication began to
dominate between 22%, 50%, and 80% of the application's execution time
depending on which of the three input parameter sets was used", while
the Embarrassingly Parallel benchmark stays at ~0%.

This module provides the scaling model behind those numbers so that
users can *derive* a Table I communication intensity from a process
count instead of picking one by hand.  BT is a 3-D stencil/ADI solver
under weak scaling: per-process computation is constant while boundary
exchange per process grows with the process count through the
surface-to-volume term of the sqrt(P)-factor multipartitioning, giving

    comm_time(P) / comp_time = (P / P_ref)^(1/6) * r_ref

where ``r_ref`` is the communication-to-computation ratio observed at
the reference scale ``P_ref``.  (The 1/6 exponent follows from BT's
multipartitioning: messages per step scale ~sqrt(P) across P
processes with per-message volume ~ N^2 / P^(5/6) at fixed per-process
memory.)  The three input parameter sets differ only in ``r_ref``; we
calibrate each so the model hits [6]'s quoted asymptotic fractions at
the exascale process count the paper uses (123 million cores).

This is a synthetic stand-in calibrated to [6]'s published qualitative
numbers (the full regression data is not reproduced in either paper) —
see DESIGN.md's substitution notes.
"""

from __future__ import annotations

import enum
from typing import Dict

#: The exascale application size the paper quotes (Sec. V): an
#: application using all 123 million cores.
EXASCALE_CORES = 123_000_000

#: Scaling exponent of the communication-to-computation ratio.
SCALING_EXPONENT = 1.0 / 6.0


class BTParameterSet(enum.Enum):
    """The three BT input parameter sets analyzed in [6], tagged by the
    communication share each reaches at exascale."""

    SET_1 = 0.22
    SET_2 = 0.50
    SET_3 = 0.80

    @property
    def exascale_fraction(self) -> float:
        """Communication fraction this set reaches at exascale [6]."""
        return self.value


def _ratio_ref(param_set: BTParameterSet) -> float:
    """Communication/computation ratio at the exascale reference,
    derived from the quoted communication fraction f = r / (1 + r)."""
    fraction = param_set.exascale_fraction
    return fraction / (1.0 - fraction)


def bt_comm_ratio(cores: int, param_set: BTParameterSet) -> float:
    """Communication-to-computation time ratio of BT at *cores*."""
    if cores <= 0:
        raise ValueError(f"cores must be > 0, got {cores}")
    scale = (cores / EXASCALE_CORES) ** SCALING_EXPONENT
    return _ratio_ref(param_set) * scale


def bt_comm_fraction(cores: int, param_set: BTParameterSet) -> float:
    """T_C for BT at *cores*: the fraction of each time step spent
    communicating, in [0, 1)."""
    ratio = bt_comm_ratio(cores, param_set)
    return ratio / (1.0 + ratio)


def ep_comm_fraction(cores: int) -> float:
    """T_C for the Embarrassingly Parallel benchmark: ~0 at any scale
    ("almost no communication", Sec. III-B)."""
    if cores <= 0:
        raise ValueError(f"cores must be > 0, got {cores}")
    return 0.0


def nearest_table1_intensity(comm_fraction: float) -> float:
    """Snap a modeled T_C onto the Table I grid {0, .25, .5, .75}."""
    if not 0.0 <= comm_fraction < 1.0:
        raise ValueError(f"comm_fraction must be in [0, 1), got {comm_fraction}")
    grid = (0.0, 0.25, 0.5, 0.75)
    return min(grid, key=lambda g: abs(g - comm_fraction))


def table1_type_for(
    cores: int, param_set: BTParameterSet, memory_per_node_gb: float
) -> str:
    """The Table I type name best matching BT at *cores* under
    *param_set* with the given per-node memory footprint."""
    if memory_per_node_gb not in (32.0, 64.0):
        raise ValueError(
            f"memory_per_node_gb must be 32 or 64, got {memory_per_node_gb}"
        )
    intensity = nearest_table1_intensity(bt_comm_fraction(cores, param_set))
    letter = {0.0: "A", 0.25: "B", 0.5: "C", 0.75: "D"}[intensity]
    return f"{letter}{int(memory_per_node_gb)}"


def scaling_profile(
    param_set: BTParameterSet, core_counts: "list[int]"
) -> Dict[int, float]:
    """T_C at each core count — the [6]-style scaling curve."""
    return {cores: bt_comm_fraction(cores, param_set) for cores in core_counts}


def render_scaling_profile(core_counts: "list[int]") -> str:
    """Text table of T_C vs. scale for all three parameter sets."""
    lines = [
        "BT communication fraction vs. scale (model after [6])",
        f"{'cores':>14} " + "".join(f"{s.name:>10}" for s in BTParameterSet),
    ]
    for cores in core_counts:
        row = f"{cores:>14,d} "
        for param_set in BTParameterSet:
            row += f"{bt_comm_fraction(cores, param_set):>10.3f}"
        lines.append(row)
    return "\n".join(lines)
