"""Deadline assignment (Sec. III-C, Eq. 1).

Each application arriving to the datacenter receives a deadline

    T_D = T_A + U(1.2, 2.0) * T_B

i.e. its arrival time plus its baseline execution time inflated by a
uniformly random slack factor.
"""

from __future__ import annotations

import numpy as np

from repro.constants import DEADLINE_U_HIGH, DEADLINE_U_LOW
from repro.rng.distributions import uniform
from repro.workload.application import Application


def sample_deadline(
    rng: np.random.Generator,
    arrival_time: float,
    baseline_time: float,
    low: float = DEADLINE_U_LOW,
    high: float = DEADLINE_U_HIGH,
) -> float:
    """Draw a deadline per Eq. 1."""
    if arrival_time < 0:
        raise ValueError(f"arrival_time must be >= 0, got {arrival_time}")
    if baseline_time <= 0:
        raise ValueError(f"baseline_time must be > 0, got {baseline_time}")
    if not 0 < low <= high:
        raise ValueError(f"need 0 < low <= high, got ({low}, {high})")
    return arrival_time + uniform(rng, low, high) * baseline_time


def with_deadline(
    rng: np.random.Generator,
    app: Application,
    low: float = DEADLINE_U_LOW,
    high: float = DEADLINE_U_HIGH,
) -> Application:
    """Copy of *app* with an Eq. 1 deadline drawn for it."""
    deadline = sample_deadline(rng, app.arrival_time, app.baseline_time, low, high)
    return app.with_arrival(app.arrival_time, deadline)
