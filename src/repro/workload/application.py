"""The application model (Sec. III-B).

A synthetic application is a sequence of ``T_S`` identical one-minute
time steps.  Within each step a fraction ``T_C`` is communication and
``T_W = 1 - T_C`` is computation, so the delay-free ("baseline")
execution time is ``T_B = T_S`` minutes regardless of application size
(weak scaling: per-node computation, communication, and memory stay
constant as the node count grows).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.constants import TIME_STEP_S


@dataclass(frozen=True)
class Application:
    """An executable (simulated) application instance.

    Attributes
    ----------
    app_id:
        Unique identifier within a simulation.
    type_name:
        The Table I type this instance was built from (e.g. ``"A32"``).
    time_steps:
        T_S — number of one-minute time steps.
    comm_fraction:
        T_C — fraction of each step spent communicating, in [0, 1).
    memory_per_node_gb:
        N_m — memory footprint per node, GB.
    nodes:
        N_a — number of system nodes the application executes on.
    arrival_time:
        T_A — when the application arrives to the system, seconds
        (0 for the Sec. V single-application studies).
    deadline:
        T_D — absolute completion deadline, seconds (None when the study
        has no deadlines).
    """

    app_id: int
    type_name: str
    time_steps: int
    comm_fraction: float
    memory_per_node_gb: float
    nodes: int
    arrival_time: float = 0.0
    deadline: Optional[float] = field(default=None)

    def __post_init__(self) -> None:
        if self.time_steps <= 0:
            raise ValueError(f"time_steps must be > 0, got {self.time_steps}")
        if not 0.0 <= self.comm_fraction < 1.0:
            raise ValueError(
                f"comm_fraction must be in [0, 1), got {self.comm_fraction}"
            )
        if self.memory_per_node_gb <= 0:
            raise ValueError(
                f"memory_per_node_gb must be > 0, got {self.memory_per_node_gb}"
            )
        if self.nodes <= 0:
            raise ValueError(f"nodes must be > 0, got {self.nodes}")
        if self.arrival_time < 0:
            raise ValueError(f"arrival_time must be >= 0, got {self.arrival_time}")
        if self.deadline is not None and self.deadline < self.arrival_time:
            raise ValueError("deadline must be >= arrival_time")

    # -- derived quantities ---------------------------------------------------

    @property
    def work_fraction(self) -> float:
        """T_W = 1 - T_C."""
        return 1.0 - self.comm_fraction

    @property
    def baseline_time(self) -> float:
        """T_B — delay-free execution time, seconds (= T_S minutes,
        since T_W + T_C = one minute per step)."""
        return self.time_steps * TIME_STEP_S

    @property
    def total_memory_gb(self) -> float:
        """Aggregate checkpoint state, GB."""
        return self.memory_per_node_gb * self.nodes

    @property
    def slack(self) -> Optional[float]:
        """Deadline minus (arrival + baseline): the scheduling headroom
        used by the slack-based resource manager (Sec. III-D3)."""
        if self.deadline is None:
            return None
        return self.deadline - (self.arrival_time + self.baseline_time)

    def scaled_to(self, nodes: int) -> "Application":
        """Weak-scaled copy on a different node count (Sec. III-B: all
        per-node attributes unchanged)."""
        return replace(self, nodes=nodes)

    def with_arrival(
        self, arrival_time: float, deadline: Optional[float] = None
    ) -> "Application":
        """Copy with datacenter arrival metadata."""
        return replace(self, arrival_time=arrival_time, deadline=deadline)
