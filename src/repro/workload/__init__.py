"""Synthetic extreme-scale workloads: Table I types, deadlines, and
datacenter arrival patterns."""

from repro.workload.application import Application
from repro.workload.arrivals import sample_arrival_times
from repro.workload.deadlines import sample_deadline, with_deadline
from repro.workload.nas_bt import (
    BTParameterSet,
    bt_comm_fraction,
    ep_comm_fraction,
    table1_type_for,
)
from repro.workload.patterns import (
    ArrivalPattern,
    PatternBias,
    PatternGenerator,
)
from repro.workload.synthetic import (
    APP_TYPES,
    ApplicationType,
    get_type,
    make_application,
    paper_time_step_range,
)

__all__ = [
    "APP_TYPES",
    "Application",
    "ApplicationType",
    "ArrivalPattern",
    "BTParameterSet",
    "PatternBias",
    "PatternGenerator",
    "bt_comm_fraction",
    "ep_comm_fraction",
    "get_type",
    "make_application",
    "paper_time_step_range",
    "sample_arrival_times",
    "table1_type_for",
    "sample_deadline",
    "with_deadline",
]
