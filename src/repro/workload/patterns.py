"""Arrival-pattern generation for the Sec. VI/VII datacenter studies.

An *arrival pattern* is (a) a set of applications that fill the machine
at time zero ("each simulation begins by filling the entire exascale
system with applications, forcing the system to begin operation at full
utilization") plus (b) 100 applications arriving by a Poisson process
with two-hour mean inter-arrival.  Every arriving application draws:

- a Table I type, uniformly at random;
- a baseline execution time from {6, 12, 24, 48} hours;
- a size from {1, 2, 3, 6, 12, 25, 50} percent of the machine;
- an Eq. 1 deadline.

Sec. VII additionally biases patterns toward high-memory applications
(N_m = 64 GB), high-communication applications (T_C > 0.25), or large
applications (12/25/50 percent of the machine).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import constants
from repro.constants import TIME_STEP_S
from repro.rng.distributions import choice
from repro.rng.streams import StreamFactory
from repro.workload.application import Application
from repro.workload.arrivals import sample_arrival_times
from repro.workload.deadlines import sample_deadline
from repro.workload.synthetic import APP_TYPES, ApplicationType, make_application


class PatternBias(enum.Enum):
    """Arrival-pattern families of Sec. VII (UNBIASED is Sec. VI)."""

    UNBIASED = "unbiased"
    HIGH_MEMORY = "high_memory"
    HIGH_COMMUNICATION = "high_communication"
    LARGE = "large"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class ArrivalPattern:
    """One generated workload for the datacenter simulator."""

    index: int
    bias: PatternBias
    fill_apps: Tuple[Application, ...]
    arriving_apps: Tuple[Application, ...]

    @property
    def all_apps(self) -> Tuple[Application, ...]:
        """Fill applications followed by the arriving applications."""
        return self.fill_apps + self.arriving_apps

    @property
    def total_arrivals(self) -> int:
        """Number of arriving (non-fill) applications."""
        return len(self.arriving_apps)


def _eligible_types(bias: PatternBias) -> List[ApplicationType]:
    types = list(APP_TYPES.values())
    if bias is PatternBias.HIGH_MEMORY:
        types = [t for t in types if t.high_memory]
    elif bias is PatternBias.HIGH_COMMUNICATION:
        types = [t for t in types if t.high_communication]
    return types


def _eligible_fractions(bias: PatternBias) -> Sequence[float]:
    if bias is PatternBias.LARGE:
        return tuple(
            f for f in constants.PATTERN_FRACTION_CHOICES if f >= 0.12
        )
    return constants.PATTERN_FRACTION_CHOICES


class PatternGenerator:
    """Reproducible arrival-pattern factory.

    Parameters
    ----------
    streams:
        Root stream factory; pattern *i* uses the child factory
        ``streams.spawn(f"pattern-{i}-{bias}")`` so that each pattern is
        an independent, reproducible draw and — crucially for the paper's
        methodology — *the same* pattern is replayed for every
        (resilience x resource-management) combination.
    system_nodes:
        Machine size the fractions refer to.
    """

    def __init__(self, streams: StreamFactory, system_nodes: int) -> None:
        if system_nodes <= 0:
            raise ValueError(f"system_nodes must be > 0, got {system_nodes}")
        self._streams = streams
        self.system_nodes = system_nodes

    def generate(
        self,
        index: int,
        bias: PatternBias = PatternBias.UNBIASED,
        arrivals: int = constants.PATTERN_ARRIVALS,
        mean_interarrival_s: float = constants.PATTERN_MEAN_INTERARRIVAL_S,
        baseline_choices_s: Optional[Sequence[float]] = None,
    ) -> ArrivalPattern:
        """Generate arrival pattern *index* for the given *bias*."""
        child = self._streams.spawn(f"pattern-{index}-{bias.value}")
        rng = child.stream("pattern")
        types = _eligible_types(bias)
        fractions = _eligible_fractions(bias)
        baselines = (
            tuple(baseline_choices_s)
            if baseline_choices_s is not None
            else constants.PATTERN_BASELINE_CHOICES_S
        )

        next_id = 0
        fill: List[Application] = []
        remaining = self.system_nodes
        min_fraction = min(fractions)
        # Fill the machine at t = 0 with randomly drawn applications whose
        # sizes still fit, until less than the smallest size class remains.
        while remaining >= max(1, round(min_fraction * self.system_nodes)):
            fitting = [
                f for f in fractions if round(f * self.system_nodes) <= remaining
            ]
            if not fitting:
                break
            app = self._draw_app(rng, next_id, 0.0, types, fitting, baselines)
            fill.append(app)
            remaining -= app.nodes
            next_id += 1

        times = sample_arrival_times(rng, arrivals, mean_interarrival_s)
        arriving: List[Application] = []
        for arrival_time in times:
            app = self._draw_app(
                rng, next_id, float(arrival_time), types, fractions, baselines
            )
            arriving.append(app)
            next_id += 1

        return ArrivalPattern(
            index=index,
            bias=bias,
            fill_apps=tuple(fill),
            arriving_apps=tuple(arriving),
        )

    def generate_many(
        self,
        count: int = constants.PATTERN_COUNT,
        bias: PatternBias = PatternBias.UNBIASED,
        **kwargs,
    ) -> List[ArrivalPattern]:
        """The paper's "fifty such arrival patterns were created"."""
        return [self.generate(i, bias, **kwargs) for i in range(count)]

    # -- internal -----------------------------------------------------------

    def _draw_app(
        self,
        rng: np.random.Generator,
        app_id: int,
        arrival_time: float,
        types: Sequence[ApplicationType],
        fractions: Sequence[float],
        baselines: Sequence[float],
    ) -> Application:
        app_type = choice(rng, list(types))
        fraction = float(choice(rng, list(fractions)))
        baseline_s = float(choice(rng, list(baselines)))
        time_steps = max(1, round(baseline_s / TIME_STEP_S))
        nodes = max(1, round(fraction * self.system_nodes))
        deadline = sample_deadline(rng, arrival_time, baseline_s)
        return make_application(
            app_type,
            nodes=nodes,
            time_steps=time_steps,
            app_id=app_id,
            arrival_time=arrival_time,
            deadline=deadline,
        )
