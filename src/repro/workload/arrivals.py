"""Application arrival processes for the datacenter studies (Sec. VI).

Applications "arrive to the system randomly according to a Poisson
process with a mean arrival time of two hours until a total of 100
applications have arrived".
"""

from __future__ import annotations

import numpy as np

from repro.constants import PATTERN_ARRIVALS, PATTERN_MEAN_INTERARRIVAL_S
from repro.rng.poisson import PoissonProcess


def sample_arrival_times(
    rng: np.random.Generator,
    count: int = PATTERN_ARRIVALS,
    mean_interarrival_s: float = PATTERN_MEAN_INTERARRIVAL_S,
) -> np.ndarray:
    """Absolute arrival times (seconds) of *count* applications."""
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if mean_interarrival_s <= 0:
        raise ValueError(
            f"mean_interarrival_s must be > 0, got {mean_interarrival_s}"
        )
    process = PoissonProcess(rng, rate=1.0 / mean_interarrival_s)
    return process.arrivals(count)
