"""The Table I synthetic benchmark suite.

Eight application types spanning four communication intensities
(T_C = 0, 0.25, 0.5, 0.75 — from "EP-like" to the heavily
communication-bound regimes observed for the NAS BT benchmark at scale)
and two per-node memory footprints (32 GB and 64 GB)::

                          memory per node
    communication          32 GB   64 GB
    0%   (T_C = 0.00)       A32     A64
    25%  (T_C = 0.25)       B32     B64
    50%  (T_C = 0.50)       C32     C64
    75%  (T_C = 0.75)       D32     D64
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.constants import MAX_TIME_STEPS, MIN_TIME_STEPS
from repro.workload.application import Application


@dataclass(frozen=True)
class ApplicationType:
    """One of the eight Table I synthetic types."""

    name: str
    comm_fraction: float
    memory_per_node_gb: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.comm_fraction < 1.0:
            raise ValueError(
                f"comm_fraction must be in [0, 1), got {self.comm_fraction}"
            )
        if self.memory_per_node_gb <= 0:
            raise ValueError(
                f"memory_per_node_gb must be > 0, got {self.memory_per_node_gb}"
            )

    @property
    def work_fraction(self) -> float:
        """T_W = 1 - T_C."""
        return 1.0 - self.comm_fraction

    @property
    def high_memory(self) -> bool:
        """Whether this is a 64 GB-per-node type (Sec. VII bias)."""
        return self.memory_per_node_gb >= 64.0

    @property
    def high_communication(self) -> bool:
        """Whether T_C > 0.25 (Sec. VII bias)."""
        return self.comm_fraction > 0.25


def _build_types() -> Dict[str, ApplicationType]:
    letters = {"A": 0.0, "B": 0.25, "C": 0.5, "D": 0.75}
    table: Dict[str, ApplicationType] = {}
    for letter, comm in letters.items():
        for mem in (32.0, 64.0):
            name = f"{letter}{int(mem)}"
            table[name] = ApplicationType(name, comm, mem)
    return table


#: The Table I matrix, keyed by type name ("A32" ... "D64").
APP_TYPES: Mapping[str, ApplicationType] = _build_types()


def get_type(name: str) -> ApplicationType:
    """Look up a Table I type by name (case-insensitive)."""
    key = name.upper()
    if key not in APP_TYPES:
        raise KeyError(
            f"unknown application type {name!r}; expected one of {sorted(APP_TYPES)}"
        )
    return APP_TYPES[key]


def make_application(
    app_type: "str | ApplicationType",
    nodes: int,
    time_steps: int = 1440,
    app_id: int = 0,
    arrival_time: float = 0.0,
    deadline: Optional[float] = None,
) -> Application:
    """Instantiate a Table I type on *nodes* nodes.

    ``time_steps`` defaults to 1440 (one day), the Sec. V setting; the
    datacenter studies draw it from {360, 720, 1440, 2880}.  Values
    outside the paper's [360, 2880] range are allowed (tests use small
    ones) but the paper's studies stay within it.
    """
    if isinstance(app_type, str):
        app_type = get_type(app_type)
    return Application(
        app_id=app_id,
        type_name=app_type.name,
        time_steps=time_steps,
        comm_fraction=app_type.comm_fraction,
        memory_per_node_gb=app_type.memory_per_node_gb,
        nodes=nodes,
        arrival_time=arrival_time,
        deadline=deadline,
    )


def paper_time_step_range() -> tuple[int, int]:
    """The paper's [360, 2880] time-step bounds (six hours-two days)."""
    return (MIN_TIME_STEPS, MAX_TIME_STEPS)
