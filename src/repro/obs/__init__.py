"""Unified instrumentation bus: typed domain events with pluggable
metric/trace/export sinks.

Every layer of the simulator publishes typed, frozen dataclass events
through one :class:`EventBus` — the kernel forwards executed events to
kernel taps, the resilient-execution engine emits its lifecycle
(failures, checkpoints, restarts, activity spans), and the datacenter
mapping loop emits job decisions.  Sinks subscribe at a single point
instead of each feature growing its own ad-hoc counters.

See ``docs/OBSERVABILITY.md`` for the event taxonomy, the sink API,
and how to write a custom sink.
"""

from repro.obs.bus import EventBus
from repro.obs.counters import (
    GLOBAL_BUS,
    SimulationCounters,
    counter_value,
    global_bus,
)
from repro.obs.events import (
    ALL_EVENT_TYPES,
    ActivitySpan,
    CheckpointFailed,
    CheckpointTaken,
    DomainEvent,
    ExecutionCompleted,
    ExecutionStarted,
    FailureInjected,
    JobArrived,
    JobCompleted,
    JobDropped,
    JobMapped,
    RecoveryCompleted,
    ReplicaAbsorbed,
    RestartStarted,
    TrialFinished,
    TrialStarted,
)
from repro.obs.sinks import (
    JsonlExportSink,
    LiveEventSink,
    MetricsSink,
    RecordingSink,
    Sink,
    TimelineSink,
    TraceSink,
    event_record,
    event_to_jsonl,
)

__all__ = [
    "ALL_EVENT_TYPES",
    "ActivitySpan",
    "CheckpointFailed",
    "CheckpointTaken",
    "DomainEvent",
    "EventBus",
    "ExecutionCompleted",
    "ExecutionStarted",
    "FailureInjected",
    "GLOBAL_BUS",
    "JobArrived",
    "JobCompleted",
    "JobDropped",
    "JobMapped",
    "JsonlExportSink",
    "LiveEventSink",
    "MetricsSink",
    "RecordingSink",
    "RecoveryCompleted",
    "ReplicaAbsorbed",
    "RestartStarted",
    "SimulationCounters",
    "Sink",
    "TimelineSink",
    "TraceSink",
    "TrialFinished",
    "TrialStarted",
    "counter_value",
    "event_record",
    "event_to_jsonl",
    "global_bus",
]
