"""Pluggable sinks for the instrumentation bus.

A sink is anything with an ``attach(bus)`` method that registers its
handlers on an :class:`repro.obs.bus.EventBus`.  Sinks are passive:
they observe the event stream and never feed back into the simulation,
so attaching any combination of them (including none) produces
bit-identical simulation results.

Shipped sinks:

- :class:`TraceSink` — the :class:`repro.sim.tracing.TraceRecorder`
  rebased on the bus: records every executed kernel event, with the
  same filtering/capacity/query API.
- :class:`MetricsSink` — event counters plus time-in-activity totals
  per technique and per application.
- :class:`TimelineSink` — collects ``(start, end, activity)`` spans
  consumable by :func:`repro.core.timeline.render_timeline`.
- :class:`JsonlExportSink` — serialises every domain event to JSON
  Lines for machine-readable trace dumps (the CLI's ``--trace-out``).

A sink may be attached to many buses over its lifetime (e.g. one sink
accumulating across every trial of an experiment cell).

Writing a custom sink::

    class DropLogger(Sink):
        def __init__(self):
            self.drops = []
        def attach(self, bus):
            bus.subscribe(JobDropped, self.drops.append)
"""

from __future__ import annotations

import json
from typing import Any, Dict, Hashable, List, Optional, TextIO, Tuple

from repro.obs.bus import EventBus
from repro.obs.events import ActivitySpan, DomainEvent
from repro.sim.events import EventKind
from repro.sim.tracing import TraceRecorder


class Sink:
    """Base class for bus sinks (duck-typed; subclassing is optional)."""

    def attach(self, bus: EventBus) -> None:
        """Register this sink's handlers on *bus*."""
        raise NotImplementedError


class RecordingSink(Sink):
    """Collects every domain event in publication order (testing aid)."""

    def __init__(self) -> None:
        self.events: List[DomainEvent] = []

    def attach(self, bus: EventBus) -> None:
        """Record every event published on *bus*, in order."""
        bus.subscribe_all(self.events.append)

    def of_type(self, *event_types: type) -> List[DomainEvent]:
        """The recorded events that are instances of *event_types*."""
        return [e for e in self.events if isinstance(e, event_types)]


class TraceSink(TraceRecorder, Sink):
    """The classic event trace, fed by the bus's kernel-tap channel.

    API-compatible with :class:`repro.sim.tracing.TraceRecorder`
    (``filter``/``counts``/``dump``/indexing/…); construct with the
    same ``kinds``/``capacity`` arguments and attach to a simulator::

        sink = TraceSink(capacity=10_000)
        sim = Simulator()
        sink.attach(sim.bus)
    """

    def attach(self, bus: EventBus) -> None:
        """Register as a kernel tap: one entry per executed sim event."""
        bus.add_kernel_tap(self.record)


class TimelineSink(Sink):
    """Collects engine activity spans for timeline rendering.

    ``spans`` grows in publication order as ``(start, end, activity)``
    tuples — exactly the input of
    :func:`repro.core.timeline.render_timeline`.  With ``app_id`` set,
    only that application's spans are kept (needed when many jobs
    share one datacenter bus).
    """

    def __init__(self, app_id: Optional[Hashable] = None) -> None:
        self.app_id = app_id
        self.spans: List[Tuple[float, float, str]] = []

    def attach(self, bus: EventBus) -> None:
        """Collect activity spans (all apps, or just ``app_id``)."""
        if self.app_id is None:
            bus.subscribe(ActivitySpan, self._on_span)
        else:
            bus.subscribe_key(ActivitySpan, self.app_id, self._on_span)

    def _on_span(self, event: ActivitySpan) -> None:
        self.spans.append((event.start, event.end, event.activity))


class MetricsSink(Sink):
    """Counters and time-in-activity histograms over the event stream.

    - ``counts`` — events seen, keyed by event class name;
    - ``counts_by_technique`` — the same, split per technique (for
      events that carry one);
    - ``activity_s_by_technique`` / ``activity_s_by_app`` — wall
      seconds per engine activity (work/recovery/checkpoint/restart/
      wait), keyed by technique or application id.

    One sink may accumulate across many runs (attach it to each bus).
    """

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}
        self.counts_by_technique: Dict[str, Dict[str, int]] = {}
        self.activity_s_by_technique: Dict[str, Dict[str, float]] = {}
        self.activity_s_by_app: Dict[Hashable, Dict[str, float]] = {}

    def attach(self, bus: EventBus) -> None:
        """Count every event published on *bus*."""
        bus.subscribe_all(self._on_event)

    def _on_event(self, event: DomainEvent) -> None:
        name = type(event).__name__
        self.counts[name] = self.counts.get(name, 0) + 1
        technique = getattr(event, "technique", None)
        if technique is not None:
            per = self.counts_by_technique.setdefault(technique, {})
            per[name] = per.get(name, 0) + 1
        if isinstance(event, ActivitySpan):
            wall = event.end - event.start
            if technique is not None:
                hist = self.activity_s_by_technique.setdefault(technique, {})
                hist[event.activity] = hist.get(event.activity, 0.0) + wall
            hist = self.activity_s_by_app.setdefault(event.app_id, {})
            hist[event.activity] = hist.get(event.activity, 0.0) + wall

    def count(self, event_type: type) -> int:
        """Events of *event_type* seen so far."""
        return self.counts.get(event_type.__name__, 0)

    def activity_seconds(self, technique: str, activity: str) -> float:
        """Total seconds one technique spent in one activity."""
        return self.activity_s_by_technique.get(technique, {}).get(activity, 0.0)

    def to_dict(self) -> Dict[str, Any]:
        """Deterministic plain-data form (the CLI's ``--metrics-out``)."""

        def sorted_nested(d: Dict) -> Dict:
            return {
                str(k): dict(sorted(v.items())) for k, v in sorted(d.items())
            }

        return {
            "counts": dict(sorted(self.counts.items())),
            "counts_by_technique": sorted_nested(self.counts_by_technique),
            "activity_s_by_technique": sorted_nested(
                self.activity_s_by_technique
            ),
            "activity_s_by_app": sorted_nested(self.activity_s_by_app),
        }

    def merge(self, other: Dict[str, Any]) -> None:
        """Fold a :meth:`to_dict` payload into this sink (the parallel
        executor merges per-cell metrics back in cell order)."""

        def merge_counts(mine: Dict, theirs: Dict) -> None:
            for key, value in theirs.items():
                mine[key] = mine.get(key, 0 if isinstance(value, int) else 0.0) + value

        merge_counts(self.counts, other.get("counts", {}))
        for outer_name, mine in (
            ("counts_by_technique", self.counts_by_technique),
            ("activity_s_by_technique", self.activity_s_by_technique),
            ("activity_s_by_app", self.activity_s_by_app),
        ):
            for key, inner in other.get(outer_name, {}).items():
                merge_counts(mine.setdefault(key, {}), inner)


def _json_default(value: Any) -> Any:
    """Serialise the few non-JSON types events carry."""
    if isinstance(value, EventKind):
        return value.value
    return str(value)


def event_to_jsonl(event: DomainEvent) -> str:
    """One deterministic JSON line for *event* (sorted keys; simulated
    times only, so identical runs export identical bytes)."""
    return json.dumps(
        event.to_record(), sort_keys=True, default=_json_default,
        separators=(",", ":"),
    )


def event_record(event: DomainEvent) -> Dict[str, Any]:
    """A JSON-safe plain-data record of *event* (the :meth:`DomainEvent
    .to_record` form with the few non-JSON field types normalised) —
    what the telemetry feed ships over the wire."""
    record = event.to_record()
    return {
        key: (
            value
            if value is None or isinstance(value, (bool, int, float, str))
            else _json_default(value)
        )
        for key, value in record.items()
    }


class LiveEventSink(Sink):
    """Feeds every domain event of a running simulation to a callable.

    The telemetry layer activates one of these around a watched job's
    execution (:mod:`repro.obs.live`): *emit* receives ``(kind,
    record)`` where ``kind`` is the event class name prefixed with
    ``sim.`` and ``record`` is the JSON-safe :func:`event_record` form.
    *emit* must never raise and never block — the hub's ring append
    and the agent-side forwarder's bounded ``offer`` both satisfy that
    — because it runs inline on the simulation thread.

    *skip* names event classes to drop before serialisation.  The
    telemetry layer uses it to keep per-segment ``ActivitySpan`` and
    per-interval ``CheckpointTaken`` chatter (tens of thousands of
    events per trial) out of the live feed while still shipping every
    lifecycle, failure, restart, and recovery event.
    """

    def __init__(self, emit: Any, skip: Tuple[str, ...] = ()) -> None:
        self.emit = emit
        self.skip = frozenset(skip)

    def attach(self, bus: EventBus) -> None:
        """Forward every event published on *bus* to ``emit``."""
        bus.subscribe_all(self._on_event)

    def _on_event(self, event: DomainEvent) -> None:
        name = type(event).__name__
        if name in self.skip:
            return
        self.emit(f"sim.{name}", event_record(event))


class JsonlExportSink(Sink):
    """Serialises every domain event as one JSON line.

    Lines accumulate in ``lines`` (publication order); call
    :meth:`write` to dump them to a stream, or read them back with any
    JSONL consumer.  Determinism: records contain only simulated times
    and event fields, so serial, parallel, and cached-then-replayed
    runs of the same study export byte-identical streams.
    """

    def __init__(self) -> None:
        self.lines: List[str] = []

    def attach(self, bus: EventBus) -> None:
        """Serialize every event published on *bus* to a JSONL line."""
        bus.subscribe_all(self._on_event)

    def _on_event(self, event: DomainEvent) -> None:
        self.lines.append(event_to_jsonl(event))

    def write(self, stream: TextIO) -> int:
        """Write all lines to *stream*; returns the number written."""
        for line in self.lines:
            stream.write(line)
            stream.write("\n")
        return len(self.lines)
