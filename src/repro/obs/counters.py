"""Process-global simulation counters, fed by the instrumentation bus.

Replaces the fork-unsafe ``_SIM_CALLS`` module globals that
``core/single_app.py`` and ``core/datacenter.py`` used to keep: the
entry points publish :class:`repro.obs.events.TrialStarted` /
:class:`~repro.obs.events.TrialFinished` on the process-global bus and
a :class:`SimulationCounters` sink counts them per scope.

Fork-safety comes from explicit merging rather than shared memory: the
parallel executor snapshots the counters around each worker cell
(:func:`snapshot` / :func:`delta_since`) and folds the per-cell deltas
back into the parent with :func:`merge` — so after a parallel study the
parent's counters reflect every simulation run on its behalf, and a
warm-cache rerun provably performs zero simulation calls.
"""

from __future__ import annotations

from typing import Dict

from repro.obs.bus import EventBus
from repro.obs.events import TrialFinished, TrialStarted


class SimulationCounters:
    """Counts simulations started/finished per scope."""

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}

    def attach(self, bus: EventBus) -> None:
        """Count trial start/finish events published on *bus*."""
        bus.subscribe(TrialStarted, self._on_started)
        bus.subscribe(TrialFinished, self._on_finished)

    def _on_started(self, event: TrialStarted) -> None:
        key = f"{event.scope}.simulations"
        self.counts[key] = self.counts.get(key, 0) + 1

    def _on_finished(self, event: TrialFinished) -> None:
        key = f"{event.scope}.completed"
        self.counts[key] = self.counts.get(key, 0) + 1

    def value(self, key: str) -> int:
        """Current count for *key* (0 when never incremented)."""
        return self.counts.get(key, 0)


#: The process-global bus.  Simulation entry points publish trial
#: markers here; anything process-wide (counters, live progress UIs)
#: subscribes here.  Per-simulation domain events go to the simulator's
#: own bus instead.
GLOBAL_BUS = EventBus()

#: The always-on counter sink (reading counters must not require any
#: setup — ``simulation_call_count`` has to work out of the box).
COUNTERS = SimulationCounters()
COUNTERS.attach(GLOBAL_BUS)


def global_bus() -> EventBus:
    """The process-global instrumentation bus."""
    return GLOBAL_BUS


def counter_value(key: str) -> int:
    """Current process-global count for *key*."""
    return COUNTERS.value(key)


def snapshot() -> Dict[str, int]:
    """Copy of all counters (pair with :func:`delta_since`)."""
    return dict(COUNTERS.counts)


def delta_since(before: Dict[str, int]) -> Dict[str, int]:
    """Counter increments since *before* (a :func:`snapshot`)."""
    return {
        key: value - before.get(key, 0)
        for key, value in COUNTERS.counts.items()
        if value - before.get(key, 0)
    }


def merge(delta: Dict[str, int]) -> None:
    """Fold worker-side counter increments into this process."""
    for key, value in delta.items():
        COUNTERS.counts[key] = COUNTERS.counts.get(key, 0) + value


def increment(key: str, n: int = 1) -> None:
    """Bump a named process-global counter by *n*.

    Layers without a domain event of their own (e.g. the job service's
    accepted/completed/failed tallies) count through here so every
    process-wide number lives in the one counter store that
    :func:`snapshot`, :func:`delta_since`, and :func:`merge` already
    make fork-safe.
    """
    COUNTERS.counts[key] = COUNTERS.counts.get(key, 0) + n
