"""Thread-local live-sink activation for in-flight simulations.

The telemetry subsystem (:mod:`repro.telemetry`) needs the domain
events of a *running* job — failure injections, checkpoints, restarts
— while the simulation is still in flight.  Those events exist only on
each simulation's own :class:`repro.obs.bus.EventBus`, and attaching
any handler to a bus flips its ``observed`` flag, which makes the
execution engine fall back from the failure-horizon fast path to the
stepped path (byte-identical, just slower).  Blanket instrumentation
would therefore tax every simulation in the process.

This module threads the needle: a worker activates live sinks *for the
current thread only* around one job's execution, and the simulation
entry points (:func:`repro.core.single_app.simulate_application`,
:func:`repro.core.datacenter.run_datacenter`) attach whatever
:func:`current_sinks` returns to each new simulation bus.  When
nothing is activated — the overwhelmingly common case — the lookup is
one thread-local attribute read and the bus stays unobserved, so
unwatched trials keep the fast path.

Activation is thread-local by design: the service's executor threads
run one job each, so activating around :meth:`repro.service.jobs
.JobSpec.execute` scopes the sinks to exactly that job's trials.
(Forked ``jobs>1`` worker processes do not inherit the activation;
live simulation events stream only for ``jobs=1`` runs, which is the
service default — lifecycle events are unaffected.)
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, Tuple

_TLS = threading.local()


def current_sinks() -> Tuple:
    """The sinks activated for the calling thread (usually empty)."""
    return getattr(_TLS, "sinks", ())


@contextmanager
def activated(*sinks) -> Iterator[None]:
    """Attach *sinks* to every simulation this thread starts while the
    context is open.  ``None`` entries are ignored; nesting stacks."""
    previous = current_sinks()
    _TLS.sinks = previous + tuple(s for s in sinks if s is not None)
    try:
        yield
    finally:
        _TLS.sinks = previous


def attach_current(bus) -> None:
    """Attach the calling thread's activated sinks (if any) to *bus*.

    Called by the simulation entry points on each fresh bus; a no-op
    (one thread-local read) when nothing is activated, so it never
    flips ``bus.observed`` for unwatched simulations.
    """
    sinks = current_sinks()
    if sinks:
        for sink in sinks:
            sink.attach(bus)
