"""The instrumentation bus: typed pub/sub for domain events.

One :class:`EventBus` carries two channels:

- **Domain events** — frozen dataclasses from :mod:`repro.obs.events`,
  published by the execution engine, the failure-delivery points, and
  the datacenter mapping loop.  Handlers subscribe by event type
  (optionally filtered to one ``app_id``) or to every event.
- **Kernel taps** — the raw ``(time, kind, payload)`` stream of every
  event the simulation kernel executes.  This is the hot path: taps
  are a plain list the kernel checks inline, so an empty bus costs one
  attribute access and a truthiness test per executed event.

Publishing is strictly one-way: handlers observe, they never mutate
simulation state, so any sink configuration produces bit-identical
simulation results.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, List, Tuple

from repro.sim.events import EventKind

#: Domain-event handler.
Handler = Callable[[Any], None]
#: Kernel tap: ``(time, kind, payload)`` of one executed kernel event.
KernelTap = Callable[[float, EventKind, Any], None]


class EventBus:
    """Lightweight synchronous pub/sub for simulation instrumentation."""

    __slots__ = ("kernel_taps", "_all", "_by_type", "_keyed", "_active")

    def __init__(self) -> None:
        #: Kernel-event taps, exposed as a plain attribute so the
        #: kernel hot loop can check emptiness without a method call.
        self.kernel_taps: List[KernelTap] = []
        self._all: List[Handler] = []
        self._by_type: Dict[type, List[Handler]] = {}
        self._keyed: Dict[Tuple[type, Hashable], List[Handler]] = {}
        self._active = False

    # -- subscription ------------------------------------------------------

    def subscribe(self, event_type: type, handler: Handler) -> None:
        """Call *handler* for every published event of *event_type*."""
        self._by_type.setdefault(event_type, []).append(handler)
        self._active = True

    def subscribe_key(
        self, event_type: type, key: Hashable, handler: Handler
    ) -> None:
        """Call *handler* for *event_type* events whose ``app_id`` is
        *key* (constant-time dispatch however many apps share the bus)."""
        self._keyed.setdefault((event_type, key), []).append(handler)
        self._active = True

    def subscribe_all(self, handler: Handler) -> None:
        """Call *handler* for every published domain event."""
        self._all.append(handler)
        self._active = True

    def add_kernel_tap(self, tap: KernelTap) -> None:
        """Receive every executed kernel event as ``(time, kind,
        payload)`` — the :class:`repro.obs.sinks.TraceSink` channel."""
        self.kernel_taps.append(tap)

    @property
    def has_subscribers(self) -> bool:
        """True when any domain-event handler is registered."""
        return self._active

    @property
    def observed(self) -> bool:
        """True when anything at all watches this bus — domain-event
        handlers or kernel taps.  The execution engine's failure-horizon
        fast path checks this and falls back to the stepped path, so
        observers always see the full per-boundary event stream."""
        return self._active or bool(self.kernel_taps)

    def subscriber_count(self) -> int:
        """Number of registered domain-event handlers (all channels)."""
        return (
            len(self._all)
            + sum(len(v) for v in self._by_type.values())
            + sum(len(v) for v in self._keyed.values())
        )

    # -- publication -------------------------------------------------------

    def publish(self, event: Any) -> None:
        """Dispatch *event* to matching handlers (no-op when none)."""
        if not self._active:
            return
        for handler in self._all:
            handler(event)
        event_type = type(event)
        handlers = self._by_type.get(event_type)
        if handlers is not None:
            for handler in handlers:
                handler(event)
        if self._keyed:
            key = getattr(event, "app_id", None)
            if key is not None:
                handlers = self._keyed.get((event_type, key))
                if handlers is not None:
                    for handler in handlers:
                        handler(event)
