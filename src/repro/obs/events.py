"""Typed domain events for the instrumentation bus.

Every observable decision in the simulator — a failure striking an
application, a checkpoint committing, the datacenter mapping loop
starting or dropping a job — is published as one of these frozen
dataclasses on an :class:`repro.obs.bus.EventBus`.  Sinks subscribe by
event *type* (optionally filtered by ``app_id``) and never feed back
into the simulation: instrumentation is passive, so any sink
configuration (including none) produces bit-identical results.

Conventions
-----------
- ``time`` is the simulated time of the event in seconds (never wall
  time, so exported event streams are deterministic).
- ``app_id`` identifies the application the event concerns; events
  without an application scope (none currently) would use ``None``.
- Events are immutable; publishing the same object to several buses is
  safe.

The taxonomy extends Sec. III-A of the paper (arrival, mapping,
computation, failure, checkpoint, restart, recovery) with the
datacenter job lifecycle and experiment-harness trial markers.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, Optional, Tuple


@dataclass(frozen=True)
class DomainEvent:
    """Base class: every domain event has a simulated time."""

    time: float

    def to_record(self) -> Dict[str, Any]:
        """Plain-data form used by export sinks (JSON-serialisable)."""
        record: Dict[str, Any] = {"event": type(self).__name__}
        for f in fields(self):
            value = getattr(self, f.name)
            record[f.name] = value
        return record


# ---------------------------------------------------------------------------
# Execution-engine events (one resilient application execution)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExecutionStarted(DomainEvent):
    """An application began executing under a resilience plan."""

    app_id: int
    technique: str


@dataclass(frozen=True)
class ExecutionCompleted(DomainEvent):
    """An application committed all of its effective work."""

    app_id: int
    technique: str


@dataclass(frozen=True)
class FailureInjected(DomainEvent):
    """A failure was delivered to a live application process.

    Published by :class:`~repro.core.execution.ResilientExecution` at
    every point an interrupt can land (the main handler plus the two
    mid-restart catch sites), so the event count equals the failures
    the execution actually observed — including failures that strike
    mid-restart — regardless of which driver delivered them.
    """

    app_id: int
    node_id: int
    severity: int
    width: int = 1


@dataclass(frozen=True)
class ReplicaAbsorbed(DomainEvent):
    """Redundancy absorbed a failure without interrupting execution."""

    app_id: int
    technique: str
    #: Virtual nodes currently degraded to a single replica.
    degraded_virtual_nodes: int


@dataclass(frozen=True)
class RestartStarted(DomainEvent):
    """A restart attempt began.

    ``retry`` is False for the first attempt after a failure and True
    when a further failure interrupted an in-progress restart (the
    engine restarts the restart from the worst severity seen).
    """

    app_id: int
    technique: str
    severity: int
    level_index: int
    retry: bool = False


@dataclass(frozen=True)
class RecoveryCompleted(DomainEvent):
    """A restart finished: state restored, execution resumes."""

    app_id: int
    technique: str
    level_index: int
    #: Work position (effective-work seconds) restored from the level.
    position: float


@dataclass(frozen=True)
class CheckpointTaken(DomainEvent):
    """A checkpoint committed at one hierarchy level."""

    app_id: int
    technique: str
    level_index: int
    #: Work position (effective-work seconds) the checkpoint captured.
    position: float


@dataclass(frozen=True)
class CheckpointFailed(DomainEvent):
    """A checkpoint was abandoned (failure mid-checkpoint, or a
    semi-blocking commit voided before its cost elapsed)."""

    app_id: int
    technique: str
    level_index: int


@dataclass(frozen=True)
class ActivitySpan(DomainEvent):
    """A contiguous span of wall time spent in one engine activity.

    ``activity`` is one of ``work``, ``recovery``, ``checkpoint``,
    ``restart``, ``wait`` (the :mod:`repro.core.timeline` row set).
    ``time`` equals ``end``; spans are published as they close.
    """

    app_id: int
    technique: str
    activity: str
    start: float
    end: float

    @property
    def wall_s(self) -> float:
        """Seconds covered by the span."""
        return self.end - self.start


# ---------------------------------------------------------------------------
# Datacenter job-lifecycle events (Sec. VI/VII)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class JobArrived(DomainEvent):
    """An application entered the pending queue."""

    app_id: int
    nodes: int
    is_fill: bool = False


@dataclass(frozen=True)
class JobMapped(DomainEvent):
    """The resource manager started an application."""

    app_id: int
    nodes: int
    technique: str
    is_fill: bool = False


@dataclass(frozen=True)
class JobDropped(DomainEvent):
    """An application counted toward the dropped percentage.

    ``reason`` is ``"scheduler"`` (removed at a mapping event, by the
    system deadline rule or a dropping policy), ``"horizon"``
    (unresolved when the simulation horizon closed), or
    ``"deadline_miss"`` (completed, but after its deadline).  The
    per-run count of these events for non-fill jobs equals the
    numerator of the Figs. 4-5 dropped percentage.
    """

    app_id: int
    reason: str
    is_fill: bool = False


@dataclass(frozen=True)
class JobCompleted(DomainEvent):
    """An application ran to completion (deadline met or not)."""

    app_id: int
    met_deadline: bool
    is_fill: bool = False


# ---------------------------------------------------------------------------
# Experiment-harness events
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TrialStarted(DomainEvent):
    """One simulation began (``scope``: ``single_app``/``datacenter``).

    Published on the process-global bus (where counters subscribe —
    the parallel executor merges worker counts back per cell) and on
    the simulation's own bus so export sinks see trial boundaries.
    ``time`` is always 0.0: trials start at simulated time zero and
    wall times would break stream determinism.
    """

    scope: str
    app_id: Optional[int] = None
    technique: Optional[str] = None
    trial: Optional[int] = None


@dataclass(frozen=True)
class TrialFinished(DomainEvent):
    """One simulation ended; ``time`` is the final simulated time."""

    scope: str
    app_id: Optional[int] = None
    technique: Optional[str] = None
    trial: Optional[int] = None
    completed: bool = True


#: Every public event type, for sinks that subscribe to the full set.
ALL_EVENT_TYPES: Tuple[type, ...] = (
    ExecutionStarted,
    ExecutionCompleted,
    FailureInjected,
    ReplicaAbsorbed,
    RestartStarted,
    RecoveryCompleted,
    CheckpointTaken,
    CheckpointFailed,
    ActivitySpan,
    JobArrived,
    JobMapped,
    JobDropped,
    JobCompleted,
    TrialStarted,
    TrialFinished,
)
